//! Thread-count independence of the parallel experiment runner: the
//! `FLEP_JSON` document an experiment emits must be byte-identical
//! whether the cells ran sequentially (`FLEP_THREADS=1`, the reference
//! path) or fanned out across eight workers. This is the contract that
//! lets the figure binaries use every core by default without anyone
//! auditing the output for scheduling nondeterminism.
//!
//! The thread counts are pinned programmatically with
//! [`runner::with_threads`] rather than via the environment, so this
//! test cannot race other tests over process-global env state.

use flep_core::prelude::*;
use flep_sim_core::json::ToJson;

/// Renders the exact document `FLEP_JSON` would write for an experiment,
/// mirroring `flep_bench::emit_json`.
fn json_doc(name: &str, rows: &dyn ToJson) -> String {
    flep_sim_core::json::JsonValue::object([
        ("experiment", name.to_json()),
        ("rows", rows.to_json()),
    ])
    .render()
}

fn fig08_doc(threads: usize) -> String {
    runner::with_threads(threads, || {
        json_doc(
            "fig08_hpf_speedups",
            &experiments::fig08_hpf_speedups(&GpuConfig::k40(), ExpConfig::quick(3)),
        )
    })
}

fn fig13_doc(threads: usize) -> String {
    runner::with_threads(threads, || {
        json_doc(
            "fig13_ffs_share",
            &experiments::fig13_14_ffs(&GpuConfig::k40(), ExpConfig::quick(3)),
        )
    })
}

#[test]
fn fig08_json_is_identical_at_one_and_eight_threads() {
    let sequential = fig08_doc(1);
    let parallel = fig08_doc(8);
    assert!(!sequential.is_empty());
    assert_eq!(
        sequential, parallel,
        "fig08 FLEP_JSON output must not depend on FLEP_THREADS"
    );
}

#[test]
fn fig13_json_is_identical_at_one_and_eight_threads() {
    let sequential = fig13_doc(1);
    let parallel = fig13_doc(8);
    assert!(!sequential.is_empty());
    assert_eq!(
        sequential, parallel,
        "fig13 FLEP_JSON output must not depend on FLEP_THREADS"
    );
}
