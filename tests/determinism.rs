//! Workspace-level determinism tests: the whole stack — device model,
//! runtime scheduler, experiment harness — must produce byte-identical
//! output for a given seed, and actually respond to the seed (different
//! seeds produce different noise streams). This is what makes every
//! number in the README reproducible and every test failure replayable.

use flep_core::prelude::*;
use flep_gpu_sim::{GridShape, LaunchDesc, PreemptSignal, Scenario, TaskCost};
use flep_sim_core::json::ToJson;
use flep_sim_core::SimTime;

/// Renders the device-level event trace of a noisy preemption scenario as
/// one string: every launch/signal/restore event with its timestamp.
fn scenario_trace(seed: u64) -> String {
    let mut sc = Scenario::new(GpuConfig::k40());
    sc.enable_trace();
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "victim",
            GridShape::Persistent {
                total_tasks: 3_000,
                amortize: 10,
            },
            TaskCost {
                base: SimTime::from_us(12),
                rel_noise: 0.2,
            },
        )
        .with_tag(1)
        .with_seed(seed),
    );
    sc.launch_at(
        SimTime::from_us(500),
        LaunchDesc::new(
            "preemptor",
            GridShape::Original { ctas: 120 },
            TaskCost {
                base: SimTime::from_us(8),
                rel_noise: 0.1,
            },
        )
        .with_tag(2)
        .with_seed(seed ^ 0xABCD),
    );
    sc.signal_at(SimTime::from_us(450), 1, PreemptSignal::YieldSms(15));
    let result = sc.run();
    let mut out = String::new();
    for ev in result.device.trace().events() {
        out.push_str(&format!("{} {} tag={}\n", ev.at, ev.label, ev.tag));
    }
    out.push_str(&format!("end={}\n", result.end_time));
    out
}

/// Renders a full co-run — job records, busy spans, end time — as a string.
fn corun_rendering(seed: u64) -> String {
    let lo = KernelProfile::of(&Benchmark::get(BenchmarkId::Spmv), InputClass::Small);
    let hi = KernelProfile::of(&Benchmark::get(BenchmarkId::Nn), InputClass::Trivial);
    let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .with_span_trace() // the rendering below includes every span
        .job(
            JobSpec::new(lo, SimTime::ZERO)
                .with_priority(1)
                .with_seed(seed),
        )
        .job(
            JobSpec::new(hi, SimTime::from_us(200))
                .with_priority(5)
                .with_seed(seed.wrapping_mul(3)),
        )
        .run();
    let mut out = format!("{:?}\nend={}\n", result.jobs, result.end_time);
    for s in &result.busy_spans {
        out.push_str(&format!("{} {} {}\n", s.start, s.end, s.owner));
    }
    out
}

/// Renders an experiment's structured rows through the JSON emitter — the
/// exact bytes `FLEP_JSON` would write to disk.
fn experiment_json(seed: u64) -> String {
    experiments::fig07_prediction_errors(ExpConfig::quick(seed))
        .to_json()
        .render()
}

/// Replicates the exact bytes `flep_bench::emit_json` writes for a figure:
/// the rows wrapped in a self-describing document, rendered, plus the
/// trailing newline `std::fs::write` receives.
fn figure_doc(name: &str, rows: &dyn ToJson) -> String {
    flep_sim_core::json::JsonValue::object([
        ("experiment", name.to_json()),
        ("rows", rows.to_json()),
    ])
    .render()
        + "\n"
}

/// The `ExpConfig` the pinned figure goldens under `tests/golden/` were
/// generated with (`FLEP_SEED=3 FLEP_REPEATS=1`).
fn golden_exp() -> ExpConfig {
    ExpConfig {
        seed: 3,
        repeats: 1,
    }
}

/// Drives a preemption scenario under a *seeded fault plan*: the victim is
/// guaranteed to wedge a CTA at its first preemption exit, doorbells may
/// drop, and notifications may be delayed. The script then walks the
/// escalation ladder by hand — flag write, forced drain, kill — and the
/// rendering pins every trace event *and* every fault-log entry. This is
/// the faults-enabled counterpart of [`preempt_restore_trace`]: it freezes
/// the fault RNG stream's draw order, so any change to when or how the
/// injector consumes randomness shows up as a diff.
fn faulted_scenario_trace() -> String {
    use flep_gpu_sim::FaultConfig;

    let mut sc = Scenario::new(GpuConfig::k40());
    sc.enable_trace();
    sc.with_faults(
        FaultConfig::quiet(11)
            .with_stuck_exit(1.0)
            .with_signal_drop(0.3)
            .with_note_delay(0.5, SimTime::from_us(40)),
    );
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "victim",
            GridShape::Persistent {
                total_tasks: 40_000,
                amortize: 10,
            },
            TaskCost {
                base: SimTime::from_us(12),
                rel_noise: 0.2,
            },
        )
        .with_tag(1)
        .with_seed(5),
    );
    sc.signal_at(SimTime::from_us(400), 1, PreemptSignal::YieldSms(15));
    sc.force_drain_at(SimTime::from_us(1_200), 1);
    sc.launch_at(
        SimTime::from_us(500),
        LaunchDesc::new(
            "preemptor",
            GridShape::Original { ctas: 60 },
            TaskCost {
                base: SimTime::from_us(8),
                rel_noise: 0.1,
            },
        )
        .with_tag(2)
        .with_seed(6),
    );
    sc.kill_at(SimTime::from_ms(4), 1);
    let result = sc.run();
    let mut out = String::new();
    for ev in result.device.trace().events() {
        out.push_str(&format!("{} {} tag={}\n", ev.at, ev.label, ev.tag));
    }
    for f in result.device.fault_log() {
        out.push_str(&format!("fault {} {} tag={}\n", f.at, f.kind, f.tag));
    }
    out.push_str(&format!("end={}\n", result.end_time));
    out
}

/// Drives a noisy persistent kernel through a spatial preemption, a
/// restore, and a final temporal preemption directly against the device API
/// (`Scenario` has no restore action), rendering the full device trace plus
/// a summary of the CTA-residency record. Pinned as a golden: the trace
/// timestamps encode every RNG draw, contention factor, and placement
/// decision along the way, so any change to the device's dispatch order or
/// state layout that is not bit-identical shows up here.
fn preempt_restore_trace() -> String {
    use flep_gpu_sim::{CollectorHarness, GpuDevice, GpuEvent, GridId};
    use flep_sim_core::{Scheduler, Simulation, World};

    enum REv {
        Gpu(GpuEvent),
        Launch,
        Signal(PreemptSignal),
        Restore,
    }
    struct RWorld {
        device: GpuDevice,
        grid: Option<GridId>,
    }
    impl World for RWorld {
        type Event = REv;
        fn handle(&mut self, now: SimTime, ev: REv, sched: &mut Scheduler<'_, REv>) {
            let mut h = CollectorHarness::new();
            match ev {
                REv::Gpu(g) => self.device.handle(now, g, &mut h),
                REv::Launch => {
                    let desc = LaunchDesc::new(
                        "noisy",
                        GridShape::Persistent {
                            total_tasks: 40_000,
                            amortize: 8,
                        },
                        TaskCost {
                            base: SimTime::from_us(10),
                            rel_noise: 0.25,
                        },
                    )
                    .with_tag(1)
                    .with_seed(99)
                    .with_mem_intensity(1.1);
                    self.grid = Some(self.device.launch(now, desc, &mut h).unwrap());
                }
                REv::Signal(sig) => self.device.signal(now, self.grid.unwrap(), sig),
                REv::Restore => self.device.restore_grid(now, self.grid.unwrap(), &mut h),
            }
            for (at, gev) in h.gpu_events {
                sched.schedule_at(at, REv::Gpu(gev));
            }
        }
    }

    let mut device = GpuDevice::new(GpuConfig::k40());
    device.enable_trace();
    let mut sim = Simulation::new(RWorld { device, grid: None });
    sim.schedule_at(SimTime::ZERO, REv::Launch);
    sim.schedule_at(
        SimTime::from_us(300),
        REv::Signal(PreemptSignal::YieldSms(6)),
    );
    sim.schedule_at(SimTime::from_us(900), REv::Restore);
    sim.schedule_at(
        SimTime::from_us(1_500),
        REv::Signal(PreemptSignal::YieldSms(15)),
    );
    let end = sim.run();
    let world = sim.into_world();
    let mut out = String::new();
    for ev in world.device.trace().events() {
        out.push_str(&format!("{} {} tag={}\n", ev.at, ev.label, ev.tag));
    }
    let spans = world.device.busy_spans();
    let span_time: SimTime = spans.iter().map(flep_sim_core::Span::duration).sum();
    out.push_str(&format!(
        "end={} tasks={} spans={} span_time={}\n",
        end,
        world.device.grid_tasks_done(world.grid.unwrap()).unwrap(),
        spans.len(),
        span_time,
    ));
    out
}

/// The pre-PR-4 rendering of [`preempt_restore_trace`], pinned so the
/// world-state-layout work (dense grid table, incremental contention
/// accounting, indexed placement) provably changes no observable behavior.
const PREEMPT_RESTORE_GOLDEN: &str = "0ns launch tag=1\n\
     8.000us dispatch_start tag=1\n\
     300.000us signal tag=1\n\
     900.000us restore tag=1\n\
     1.500ms signal tag=1\n\
     1.589ms preempt tag=1\n\
     end=1.589ms tasks=15360 spans=168 span_time=157.804ms\n";

#[test]
fn preempt_restore_trace_matches_pinned_golden() {
    assert_eq!(preempt_restore_trace(), PREEMPT_RESTORE_GOLDEN);
}

/// The rendering of [`faulted_scenario_trace`], pinned with its fixed
/// fault seed. Covers both halves of the determinism contract: the fault
/// injector replays identically for a given seed, and escalation actions
/// (forced drain, kill) land at reproducible instants.
const FAULTED_SCENARIO_GOLDEN: &str = "0ns launch tag=1\n\
     8.000us dispatch_start tag=1\n\
     8.000us note_delayed tag=1\n\
     400.000us signal tag=1\n\
     402.032us cta_wedged tag=1\n\
     500.000us launch tag=2\n\
     508.000us dispatch_start tag=2\n\
     508.000us note_delayed tag=2\n\
     517.908us complete tag=2\n\
     517.908us note_delayed tag=2\n\
     1.200ms force_drain tag=1\n\
     4.000ms kill tag=1\n\
     fault 0ns wedged_exit tag=1\n\
     fault 8.000us note_delayed+40.000us tag=1\n\
     fault 402.032us cta_wedged tag=1\n\
     fault 508.000us note_delayed+40.000us tag=2\n\
     fault 517.908us note_delayed+40.000us tag=2\n\
     end=4.000ms\n";

#[test]
fn faulted_scenario_trace_matches_pinned_golden() {
    assert_eq!(faulted_scenario_trace(), FAULTED_SCENARIO_GOLDEN);
}

// With faults disabled, the fault layer must be invisible: the figure
// documents `FLEP_JSON` writes are pinned byte-for-byte against
// `tests/golden/`, generated before the fault-injection layer landed
// (`FLEP_SEED=3 FLEP_REPEATS=1 FLEP_THREADS=1`). If one of these fails,
// something perturbed the fault-free event order or RNG draw sequence —
// regenerate the goldens only if that perturbation is intentional.

#[test]
fn fig08_json_is_byte_identical_to_pre_fault_golden() {
    let rows = experiments::fig08_hpf_speedups(&GpuConfig::k40(), golden_exp());
    assert_eq!(
        figure_doc("fig08_hpf_speedups", &rows),
        include_str!("golden/fig08_hpf_speedups.json"),
    );
}

#[test]
fn fig09_json_is_byte_identical_to_pre_fault_golden() {
    let curves = experiments::fig09_delay_sweep(&GpuConfig::k40(), golden_exp());
    assert_eq!(
        figure_doc("fig09_delay_sweep", &curves),
        include_str!("golden/fig09_delay_sweep.json"),
    );
}

#[test]
fn fig13_json_is_byte_identical_to_pre_fault_golden() {
    let out = experiments::fig13_14_ffs(&GpuConfig::k40(), golden_exp());
    assert_eq!(
        figure_doc("fig13_ffs_share", &out),
        include_str!("golden/fig13_ffs_share.json"),
    );
}

#[test]
fn scenario_event_trace_is_seed_deterministic() {
    let a = scenario_trace(7);
    let b = scenario_trace(7);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must give a byte-identical event trace");
}

#[test]
fn scenario_event_trace_depends_on_seed() {
    // Event *ordering* may coincide, but completion times under 20% task
    // noise cannot: different seeds must change the trace.
    assert_ne!(
        scenario_trace(7),
        scenario_trace(8),
        "different seeds must give different noise streams"
    );
}

#[test]
fn corun_is_byte_identical_across_runs() {
    let a = corun_rendering(42);
    let b = corun_rendering(42);
    assert_eq!(a, b, "same seed must give byte-identical co-run results");
}

#[test]
fn corun_depends_on_seed() {
    assert_ne!(corun_rendering(42), corun_rendering(43));
}

#[test]
fn experiment_rows_serialize_identically_across_runs() {
    let a = experiment_json(5);
    let b = experiment_json(5);
    assert_eq!(a, b, "experiment JSON must be byte-identical per seed");
    assert_ne!(a, experiment_json(6), "experiment JSON must track the seed");
}
