//! Shape tests for the paper's headline results: not the absolute numbers
//! (our substrate is a simulator, not the authors' K40), but the orderings,
//! magnitudes, and crossovers every figure reports.
//!
//! These run the same harness as the `flep-bench` binaries, at quick
//! settings; they are the repository's executable claims about fidelity.

use flep_core::prelude::*;
use flep_metrics::Summary;

fn cfg() -> GpuConfig {
    GpuConfig::k40()
}

#[test]
fn fig01_shape_mps_slowdowns_are_severe() {
    let rows = experiments::fig01_mps_slowdown(&cfg(), ExpConfig::quick(1));
    assert_eq!(rows.len(), 28);
    let values: Vec<f64> = rows.iter().map(|r| r.value).collect();
    let s = Summary::of(&values);
    // Paper: up to 32.6X. Shape: severe slowdowns, max in the tens.
    assert!(s.max > 20.0, "max slowdown {:.1}", s.max);
    assert!(s.max < 50.0, "max slowdown {:.1}", s.max);
    assert!(s.mean > 5.0, "mean slowdown {:.1}", s.mean);
    // The worst pairs put a short kernel behind NN/VA-scale work.
    assert!(values.iter().all(|&v| v >= 1.0));
}

#[test]
fn fig07_shape_prediction_errors() {
    // Seed 2: a stream where the 30-draw error estimate is representative
    // (single-seed draws have a heavy tail; see the probe values in PR 1).
    let errors = experiments::fig07_prediction_errors(ExpConfig::quick(2));
    assert_eq!(errors.len(), 8);
    let avg = errors.iter().map(|(_, e)| e).sum::<f64>() / 8.0;
    // Paper: avg ~6.9%, range ~2.7%..12.2%.
    assert!(avg > 0.03 && avg < 0.12, "avg {avg:.3}");
    for &(id, e) in &errors {
        assert!(e > 0.005 && e < 0.20, "{id}: {e:.3}");
    }
    // Regular kernels beat the sparse/neighbor-driven ones.
    let err_of = |id: BenchmarkId| errors.iter().find(|(i, _)| *i == id).unwrap().1;
    assert!(err_of(BenchmarkId::Va) < err_of(BenchmarkId::Spmv));
    assert!(err_of(BenchmarkId::Nn) < err_of(BenchmarkId::Md));
}

#[test]
fn fig08_shape_hpf_speedups() {
    let rows = experiments::fig08_hpf_speedups(&cfg(), ExpConfig::quick(2));
    assert_eq!(rows.len(), 28);
    let values: Vec<f64> = rows.iter().map(|r| r.value).collect();
    let s = Summary::of(&values);
    // Paper: avg ~10.1X, max ~24.2X, min ~4.1X.
    assert!(s.mean > 6.0 && s.mean < 16.0, "mean {:.1}", s.mean);
    assert!(s.max > 15.0 && s.max < 35.0, "max {:.1}", s.max);
    assert!(s.min > 2.0, "min {:.1}", s.min);
    // The golden claim: HPF preemption helps *every* one of the 28 pairs.
    for r in &rows {
        assert!(
            r.value > 1.0,
            "{}_{}: speedup {:.2} not above 1",
            r.hi.name(),
            r.lo.name(),
            r.value
        );
    }
    // The headline pair: SPMV behind NN is among the largest speedups.
    let spmv_nn = rows
        .iter()
        .find(|r| r.lo == BenchmarkId::Nn && r.hi == BenchmarkId::Spmv)
        .unwrap()
        .value;
    assert!(
        spmv_nn > s.mean,
        "SPMV_NN {spmv_nn:.1} should beat the mean"
    );
}

#[test]
fn fig09_shape_speedup_decays_with_delay_to_plateau() {
    let curves = experiments::fig09_delay_sweep(&cfg(), ExpConfig::quick(3));
    assert_eq!(curves.len(), 4);
    for curve in curves {
        let values: Vec<f64> = curve.points.iter().map(|&(_, v)| v).collect();
        // Starts high, ends at ~1 (delay beyond the victim's runtime).
        assert!(
            values[0] > 2.0,
            "{:?}: zero-delay speedup {:.2}",
            (curve.lo, curve.hi),
            values[0]
        );
        let last = *values.last().unwrap();
        assert!(
            (0.8..1.3).contains(&last),
            "{:?}: plateau {last:.2}",
            (curve.lo, curve.hi)
        );
        // Roughly monotone decreasing; near the plateau (speedup ~1) the
        // FLEP overhead makes points wiggle on either side of 1.0.
        for w in values.windows(2) {
            assert!(
                w[1] <= (w[0] * 1.15).max(1.1),
                "curve not decaying: {values:?}"
            );
        }
    }
}

#[test]
fn fig10_11_shape_antt_improves_stp_degrades_slightly() {
    let rows = experiments::fig10_11_equal_priority(&cfg(), ExpConfig::quick(4));
    assert_eq!(rows.len(), 28);
    let antt: Vec<f64> = rows.iter().map(|r| r.antt_improvement).collect();
    let stp: Vec<f64> = rows.iter().map(|r| r.stp_degradation).collect();
    let antt_s = Summary::of(&antt);
    let stp_s = Summary::of(&stp);
    // Paper: ANTT improvement avg ~8X; STP degradation avg ~5.4%.
    assert!(
        antt_s.mean > 3.0 && antt_s.mean < 15.0,
        "ANTT mean {:.1}",
        antt_s.mean
    );
    assert!(antt_s.max > 8.0, "ANTT max {:.1}", antt_s.max);
    assert!(
        stp_s.mean > 0.0 && stp_s.mean < 0.15,
        "STP degradation mean {:.3}",
        stp_s.mean
    );
}

#[test]
fn fig12_shape_flep_crushes_reordering_on_triplets() {
    let rows = experiments::fig12_three_kernel(&cfg(), ExpConfig::quick(5));
    assert_eq!(rows.len(), 28);
    let flep: Vec<f64> = rows.iter().map(|r| r.flep_improvement).collect();
    let reorder: Vec<f64> = rows.iter().map(|r| r.reorder_improvement).collect();
    let flep_s = Summary::of(&flep);
    let reorder_s = Summary::of(&reorder);
    // Paper: FLEP avg ~6.6X (max ~20.2X); reordering ~2.3% (i.e. ~1.02X).
    assert!(flep_s.mean > 3.0, "FLEP mean {:.2}", flep_s.mean);
    assert!(flep_s.max > 8.0, "FLEP max {:.2}", flep_s.max);
    assert!(
        reorder_s.mean < 1.3,
        "reordering mean {:.3} should stay near 1",
        reorder_s.mean
    );
    assert!(
        flep_s.mean > reorder_s.mean * 3.0,
        "FLEP ({:.1}) must dominate reordering ({:.2})",
        flep_s.mean,
        reorder_s.mean
    );
}

#[test]
fn fig13_shape_ffs_shares_settle_at_two_to_one() {
    let out = experiments::fig13_14_ffs(&cfg(), ExpConfig::quick(8));
    assert!(!out.share_curve.is_empty());
    // Paper: 2:1 weights drive the shares to ~2/3 vs ~1/3. Early windows
    // may wobble while the controller converges; the settled second half
    // of the curve must sit near the target.
    let settled = &out.share_curve[out.share_curve.len() / 2..];
    let hi_mean = settled.iter().map(|p| p.hi_mean).sum::<f64>() / settled.len() as f64;
    let lo_mean = settled.iter().map(|p| p.lo_mean).sum::<f64>() / settled.len() as f64;
    assert!(
        (hi_mean - 2.0 / 3.0).abs() < 0.10,
        "high-weight share {hi_mean:.3}, want ~0.667"
    );
    assert!(
        (lo_mean - 1.0 / 3.0).abs() < 0.10,
        "low-weight share {lo_mean:.3}, want ~0.333"
    );
    // The ratio itself is the figure's claim.
    let ratio = hi_mean / lo_mean;
    assert!(
        (1.5..2.7).contains(&ratio),
        "share ratio {ratio:.2}, want ~2.0"
    );
}

#[test]
fn fig15_shape_spatial_cuts_preemption_overhead() {
    let rows = experiments::fig15_spatial(&cfg(), ExpConfig::quick(6));
    assert_eq!(rows.len(), 8);
    let reductions: Vec<f64> = rows.iter().map(|r| r.reduction).collect();
    let s = Summary::of(&reductions);
    // Paper: avg ~31% reduction, up to ~41%.
    assert!(
        s.mean > 0.10,
        "mean reduction {:.2} — spatial must help on average",
        s.mean
    );
    assert!(s.max > 0.25, "max reduction {:.2}", s.max);
    // Spatial overhead below temporal for a clear majority of victims.
    let wins = rows
        .iter()
        .filter(|r| r.spatial_overhead < r.temporal_overhead)
        .count();
    assert!(wins >= 6, "spatial won only {wins}/8");
}

#[test]
fn fig16_shape_more_sms_help_but_saturate() {
    let curves = experiments::fig16_sm_sweep(&cfg(), ExpConfig::quick(7));
    assert_eq!(curves.len(), 4);
    for curve in curves {
        let first = curve.points.first().unwrap().1;
        let best = curve
            .points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((first - 1.0).abs() < 1e-9, "baseline speedup must be 1.0");
        // Paper: the largest speedup is only ~2.22X — beneficial but
        // bounded.
        assert!(
            best > 1.2,
            "{:?}: yielding more SMs should speed the kernel ({best:.2})",
            (curve.hi, curve.victim)
        );
        assert!(
            best < 2.5,
            "{:?}: speedup {best:.2} too large",
            (curve.hi, curve.victim)
        );
    }
}

#[test]
fn fig17_shape_flep_cheap_slicing_expensive_va_reversed() {
    let rows = experiments::fig17_overhead(&cfg());
    assert_eq!(rows.len(), 8);
    let flep_avg = rows.iter().map(|r| r.flep).sum::<f64>() / 8.0;
    let slicing_avg = rows.iter().map(|r| r.slicing).sum::<f64>() / 8.0;
    // Paper: FLEP ~2.5% avg (all under the 4% tuner budget); slicing ~8%.
    assert!(flep_avg < 0.04, "FLEP avg {:.3}", flep_avg);
    for r in &rows {
        assert!(r.flep < 0.045, "{}: FLEP overhead {:.3}", r.id, r.flep);
    }
    assert!(
        slicing_avg > flep_avg * 1.5,
        "slicing ({slicing_avg:.3}) must cost more than FLEP ({flep_avg:.3}) on average"
    );
    // Slicing is much worse for the short-task kernels…
    for id in [
        BenchmarkId::Cfd,
        BenchmarkId::Md,
        BenchmarkId::Spmv,
        BenchmarkId::Mm,
    ] {
        let row = rows.iter().find(|r| r.id == id).unwrap();
        assert!(
            row.slicing > row.flep,
            "{id}: slicing {:.3} vs flep {:.3}",
            row.slicing,
            row.flep
        );
    }
    // …and VA is the one benchmark where slicing substantially wins.
    let va = rows.iter().find(|r| r.id == BenchmarkId::Va).unwrap();
    assert!(
        va.slicing < va.flep,
        "VA: slicing {:.3} must beat FLEP {:.3}",
        va.slicing,
        va.flep
    );
}
