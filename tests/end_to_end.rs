//! End-to-end integration tests: the full FLEP pipeline — mini-CU source →
//! compilation engine → simulated device → runtime scheduling — plus
//! functional correctness through preemption under the real scheduler.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flep_core::prelude::*;

#[test]
fn all_benchmark_sources_compile_through_the_full_pipeline() {
    for id in BenchmarkId::ALL {
        let src = flep_workloads::source(id);
        let program = parse(src).unwrap_or_else(|e| panic!("{id}: parse: {e}"));
        let info = analyze(&program).unwrap_or_else(|e| panic!("{id}: sema: {e}"));
        assert_eq!(info.kernels.len(), 1);
        for mode in [
            TransformMode::TemporalNaive,
            TransformMode::TemporalAmortized,
            TransformMode::Spatial,
        ] {
            let out = transform(&program, mode).unwrap_or_else(|e| panic!("{id} {mode:?}: {e}"));
            // Generated code round-trips.
            let printed = out.program.to_string();
            let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{id} {mode:?}: {e}"));
            analyze(&reparsed).unwrap_or_else(|e| panic!("{id} {mode:?}: {e}"));
        }
    }
}

#[test]
fn functional_workload_survives_runtime_preemption() {
    // Run a real matrix multiplication as the victim under HPF; a
    // high-priority kernel preempts it mid-flight; the result must still
    // be exact.
    let job = flep_workloads::MatMulJob::new(256); // 256 tile tasks (2-3 waves)
    let total_tasks = job.num_tasks();

    let mut victim = KernelProfile::of(&Benchmark::get(BenchmarkId::Mm), InputClass::Large);
    victim.total_tasks = total_tasks;
    victim.task_cost = TaskCost::fixed(SimTime::from_us(300));
    victim.amortize = 1;

    let hi = KernelProfile::of(&Benchmark::get(BenchmarkId::Spmv), InputClass::Small);

    // The runtime relaunches the victim after preemption; its task_fn must
    // be reattached per launch. KernelProfile cannot carry closures, so we
    // run the victim via the scenario API with an explicit preempt/resume
    // to emulate what the runtime does, asserting identical task coverage.
    let counter = Arc::new(AtomicU64::new(0));
    let c1 = counter.clone();
    let mut f1 = job.task_fn();
    let mut sc = Scenario::new(GpuConfig::k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "mm",
            GridShape::Persistent {
                total_tasks,
                amortize: 1,
            },
            TaskCost::fixed(SimTime::from_us(300)),
        )
        .with_tag(1)
        .with_task_fn(Box::new(move |t| {
            c1.fetch_add(1, Ordering::Relaxed);
            f1(t);
        })),
    );
    sc.signal_at(SimTime::from_us(500), 1, PreemptSignal::YieldSms(15));
    let r1 = sc.run();
    let p = r1.records[&1].preemptions[0];
    assert!(p.remaining > 0, "preemption must land mid-run");

    let c2 = counter.clone();
    let mut f2 = job.task_fn();
    let mut sc2 = Scenario::new(GpuConfig::k40());
    sc2.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "mm_resume",
            GridShape::Persistent {
                total_tasks: p.remaining,
                amortize: 1,
            },
            TaskCost::fixed(SimTime::from_us(300)),
        )
        .with_tag(1)
        .with_first_task(p.tasks_done)
        .with_task_fn(Box::new(move |t| {
            c2.fetch_add(1, Ordering::Relaxed);
            f2(t);
        })),
    );
    let _ = sc2.run();

    assert_eq!(counter.load(Ordering::Relaxed), total_tasks);
    assert_eq!(job.result(), job.expected());

    // And the runtime-level sanity check: the same shapes schedule fine.
    let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .job(JobSpec::new(victim, SimTime::ZERO))
        .job(JobSpec::new(hi, SimTime::from_us(100)))
        .run();
    assert!(result.jobs.iter().all(|j| j.completed.is_some()));
}

#[test]
fn nearest_neighbor_query_is_exact_after_spatial_preemption() {
    let job = flep_workloads::NearestNeighborJob::new(10_240, (42.0, 17.0));
    let total = job.num_tasks();
    let mut sc = Scenario::new(GpuConfig::k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "nn",
            GridShape::Persistent {
                total_tasks: total,
                amortize: 2,
            },
            TaskCost::fixed(SimTime::from_us(40)),
        )
        .with_tag(1)
        .with_task_fn(job.task_fn()),
    );
    // Spatial signal: SMs 0..7 yield; the rest finish all tasks.
    sc.signal_at(SimTime::from_us(30), 1, PreemptSignal::YieldSms(8));
    let r = sc.run();
    assert!(r.records[&1].completed_at.is_some());
    assert_eq!(job.k_nearest(10), job.expected_k_nearest(10));
}

#[test]
fn paper_narrative_holds_across_policies() {
    // One scenario, four policies: the orderings the paper's story
    // depends on.
    let cfg = GpuConfig::k40();
    let store = ModelStore::train(3);
    let long = Benchmark::get(BenchmarkId::Va);
    let short = Benchmark::get(BenchmarkId::Spmv);
    let turnaround = |policy: Policy| {
        let r = CoRun::new(cfg.clone(), policy)
            .job(
                JobSpec::new(KernelProfile::of(&long, InputClass::Large), SimTime::ZERO)
                    .with_predicted(store.predict(&long, InputClass::Large))
                    .with_seed(1),
            )
            .job(
                JobSpec::new(
                    KernelProfile::of(&short, InputClass::Small),
                    SimTime::from_us(20),
                )
                .with_predicted(store.predict(&short, InputClass::Small))
                .with_seed(2),
            )
            .run();
        r.jobs[1].turnaround().unwrap()
    };
    let mps = turnaround(Policy::MpsBaseline);
    let reorder = turnaround(Policy::Reordering);
    let hpf = turnaround(Policy::hpf());
    // Reordering cannot beat MPS here (the long kernel already started);
    // FLEP preemption wins by a large factor.
    assert!(hpf.as_us() * 10.0 < mps.as_us(), "hpf {hpf} vs mps {mps}");
    assert!(reorder.as_us() > mps.as_us() * 0.8, "reorder {reorder}");
}

#[test]
fn model_predictions_drive_scheduling_not_oracles() {
    // Feed the runtime deliberately WRONG predictions: claiming the long
    // kernel is short must suppress the SRT preemption.
    let cfg = GpuConfig::k40();
    let long = KernelProfile::of(&Benchmark::get(BenchmarkId::Va), InputClass::Large);
    let short = KernelProfile::of(&Benchmark::get(BenchmarkId::Mm), InputClass::Small);
    let r = CoRun::new(cfg, Policy::hpf())
        .job(
            JobSpec::new(long, SimTime::ZERO)
                // Lie: claim VA-large finishes in 100us.
                .with_predicted(SimTime::from_us(100)),
        )
        .job(JobSpec::new(short, SimTime::from_us(50)).with_predicted(SimTime::from_us(1500)))
        .run();
    // With the lie, the running kernel's predicted remaining time is tiny,
    // so the scheduler must NOT preempt it.
    assert_eq!(r.jobs[0].preemptions, 0);
}

#[test]
fn quick_experiment_harness_smoke() {
    // A fast smoke pass over the harness entry points used by the bench
    // binaries (full runs live there; shapes are asserted in
    // tests/experiment_shapes.rs).
    let cfg = GpuConfig::k40();
    let t1 = experiments::table1(&cfg);
    assert_eq!(t1.len(), 8);
    for row in &t1 {
        assert_eq!(row.tuned_amortize, row.paper_amortize, "{}", row.id);
    }
    let f17 = experiments::fig17_overhead(&cfg);
    assert_eq!(f17.len(), 8);
}
