//! **FLEP-rs** — a Rust reproduction of *FLEP: Enabling Flexible and
//! Efficient Preemption on GPUs* (Wu, Liu, Zhou, Jiang — ASPLOS 2017).
//!
//! FLEP is a compiler + runtime system that makes GPU kernels preemptable
//! on hardware whose CTA scheduler is strictly non-preemptive. The
//! compiler rewrites kernels into persistent-thread form that polls a
//! pinned host flag (temporally, amortized over `L` tasks, or spatially
//! gated on `%smid`); the runtime intercepts kernel launches, predicts
//! their durations with lightweight ridge models, and makes preemption +
//! scheduling decisions (highest-priority-first or weighted-fair).
//!
//! Since FLEP requires an NVIDIA GPU and CUDA, this reproduction runs the
//! full system against a discrete-event Kepler-class GPU simulator (see
//! `DESIGN.md` for the substitution argument). The workspace layers:
//!
//! | Crate | Role |
//! |---|---|
//! | `flep-sim-core` | deterministic discrete-event engine |
//! | `flep-gpu-sim` | the simulated K40: SMs, dispatcher, pinned flags |
//! | `flep-minicu` | the mini-CUDA language the compiler transforms |
//! | `flep-compile` | the Fig. 4 transforms, slicing baseline, `L` tuner |
//! | `flep-perfmodel` | ridge regression + overhead profiling |
//! | `flep-runtime` | interception, HPF/FFS policies, baselines |
//! | `flep-workloads` | the 8 calibrated Table 1 benchmarks |
//! | `flep-metrics` | ANTT/STP/fairness metrics |
//! | `flep-core` (this crate) | facade, model store, experiment harness |
//!
//! # Quickstart
//!
//! ```
//! use flep_core::prelude::*;
//!
//! // A long, low-priority kernel is on the GPU; a short, high-priority
//! // kernel arrives. Under FLEP/HPF it preempts the victim.
//! let lo = KernelProfile::of(&Benchmark::get(BenchmarkId::Nn), InputClass::Large);
//! let hi = KernelProfile::of(&Benchmark::get(BenchmarkId::Spmv), InputClass::Small);
//! let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
//!     .job(JobSpec::new(lo, SimTime::ZERO).with_priority(1))
//!     .job(JobSpec::new(hi, SimTime::from_us(10)).with_priority(2))
//!     .run();
//! assert!(result.jobs[1].completed.unwrap() < result.jobs[0].completed.unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod models;
pub mod runner;
mod timeline;

pub use models::{ModelStore, DEFAULT_LAMBDA, TRAINING_SAMPLES};
pub use timeline::render_timeline;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use flep_compile::{
        transform, tune, SlicePlan, TransformMode, TransformResult, TuneResult,
    };
    pub use flep_gpu_sim::{
        GpuConfig, GridShape, LaunchDesc, PreemptSignal, ResourceUsage, Scenario, TaskCost,
    };
    pub use flep_metrics::{antt, stp, Turnaround};
    pub use flep_minicu::{analyze, parse, Program};
    pub use flep_perfmodel::{KernelFeatures, RidgeModel};
    pub use flep_runtime::{CoRun, CoRunResult, JobRecord, JobSpec, KernelProfile, Policy};
    pub use flep_sim_core::{SimRng, SimTime};
    pub use flep_workloads::{Benchmark, BenchmarkId, InputClass};

    pub use crate::experiments::{self, ExpConfig};
    pub use crate::{render_timeline, runner, ModelStore};
}
