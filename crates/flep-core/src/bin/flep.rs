//! `flep` — the FLEP-rs command-line tool.
//!
//! ```text
//! flep check   <file.cu>                         parse + analyze + type-check
//! flep compile <file.cu> [--mode M] [--slice N]  print the transformed program
//! flep tune    <BENCH>                           offline amortizing-factor search
//! flep corun   <A> <B> [--policy P] [--delay US] run a co-run, print the timeline
//! flep bench-list                                list the Table 1 benchmarks
//! ```
//!
//! Modes: `naive`, `amortized` (default), `spatial`. Policies: `hpf`
//! (default), `hpf-spatial`, `mps`, `reordering`. Benchmarks are Table 1
//! names (CFD, NN, PF, PL, MD, SPMV, MM, VA), with an optional
//! `:large|:small|:trivial` input suffix (A defaults to `:large`, B to
//! `:small`).

use std::process::ExitCode;

use flep_core::prelude::*;
use flep_core::render_timeline;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("tune") => cmd_tune(&args[1..]),
        Some("corun") => cmd_corun(&args[1..]),
        Some("bench-list") => cmd_bench_list(),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `flep help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "flep — FLEP-rs: flexible GPU preemption (ASPLOS'17 reproduction)

USAGE:
    flep check   <file.cu>
    flep compile <file.cu> [--mode naive|amortized|spatial] [--slice N]
    flep tune    <BENCH>
    flep corun   <A[:input]> <B[:input]> [--policy hpf|hpf-spatial|mps|reordering]
                 [--delay US] [--priority-b N] [--width N]
    flep bench-list

Benchmarks: CFD NN PF PL MD SPMV MM VA (inputs: large, small, trivial)."
    );
}

fn read_program(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: flep check <file.cu>")?;
    let program = read_program(path)?;
    let info = analyze(&program).map_err(|e| format!("{path}: {e}"))?;
    flep_minicu::type_check(&program).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: OK");
    for k in &info.kernels {
        println!(
            "  kernel `{}` ({} params{}{})",
            k.name,
            k.num_params,
            if k.has_loop { ", loops" } else { "" },
            if k.uses_smid { ", uses %smid" } else { "" },
        );
    }
    for l in &info.launches {
        println!("  launch of `{}` in `{}`", l.kernel, l.host);
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .ok_or("usage: flep compile <file.cu> [--mode M] [--slice N]")?;
    let program = read_program(path)?;

    if let Some(n) = flag_value(args, "--slice") {
        let slice: u64 = n.parse().map_err(|_| "--slice expects a CTA count")?;
        let out = flep_compile::slice_transform(&program, slice).map_err(|e| e.to_string())?;
        println!("{out}");
        return Ok(());
    }

    let mode = match flag_value(args, "--mode").unwrap_or("amortized") {
        "naive" => TransformMode::TemporalNaive,
        "amortized" => TransformMode::TemporalAmortized,
        "spatial" => TransformMode::Spatial,
        other => return Err(format!("unknown mode `{other}`")),
    };
    let out = transform(&program, mode).map_err(|e| e.to_string())?;
    println!("{}", out.program);
    eprintln!("// transformed {} kernel(s):", out.kernels.len());
    for k in &out.kernels {
        eprintln!(
            "//   {} -> {} (id {}, {} blockIdx.x replacement(s), est. {} regs/thread)",
            k.original,
            k.persistent,
            k.kernel_id,
            k.block_idx_replacements,
            k.resources.regs_per_thread
        );
    }
    Ok(())
}

fn cmd_tune(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("usage: flep tune <BENCH>")?;
    let bench = parse_bench(name)?;
    let cfg = GpuConfig::k40();
    let result = tune(&cfg, &bench);
    println!("tuning {} (budget 4%):", bench.id);
    for t in &result.trials {
        println!(
            "  L = {:>4}: {:>6.2}%  {}",
            t.amortize,
            t.overhead * 100.0,
            if t.overhead < 0.04 { "PASS" } else { "fail" }
        );
    }
    println!(
        "chosen L = {}{}",
        result.chosen,
        if result.within_budget {
            ""
        } else {
            " (budget not met; best available)"
        }
    );
    Ok(())
}

fn cmd_corun(args: &[String]) -> Result<(), String> {
    if args.len() < 2 {
        return Err("usage: flep corun <A[:input]> <B[:input]> [--policy P] [--delay US]".into());
    }
    let (bench_a, class_a) = parse_bench_input(&args[0], InputClass::Large)?;
    let (bench_b, class_b) = parse_bench_input(&args[1], InputClass::Small)?;
    let policy = match flag_value(args, "--policy").unwrap_or("hpf") {
        "hpf" => Policy::hpf(),
        "hpf-spatial" => Policy::hpf_spatial(),
        "mps" => Policy::MpsBaseline,
        "reordering" => Policy::Reordering,
        other => return Err(format!("unknown policy `{other}`")),
    };
    let delay_us: u64 = flag_value(args, "--delay")
        .map(|v| v.parse().map_err(|_| "--delay expects microseconds"))
        .transpose()?
        .unwrap_or(10);
    let prio_b: u32 = flag_value(args, "--priority-b")
        .map(|v| v.parse().map_err(|_| "--priority-b expects a number"))
        .transpose()?
        .unwrap_or(2);
    let width: usize = flag_value(args, "--width")
        .map(|v| v.parse().map_err(|_| "--width expects a number"))
        .transpose()?
        .unwrap_or(90);

    let cfg = GpuConfig::k40();
    let store = ModelStore::train(42);
    let result = CoRun::new(cfg, policy)
        .with_span_trace() // the timeline below renders from spans
        .job(
            JobSpec::new(KernelProfile::of(&bench_a, class_a), SimTime::ZERO)
                .with_priority(1)
                .with_predicted(store.predict(&bench_a, class_a))
                .with_seed(1),
        )
        .job(
            JobSpec::new(
                KernelProfile::of(&bench_b, class_b),
                SimTime::from_us(delay_us),
            )
            .with_priority(prio_b)
            .with_predicted(store.predict(&bench_b, class_b))
            .with_seed(2),
        )
        .run();

    for job in &result.jobs {
        println!(
            "{:<12} turnaround {:>12}  waited {:>12}  preemptions {}",
            job.name,
            job.turnaround().map_or("-".into(), |t| t.to_string()),
            job.waiting.to_string(),
            job.preemptions
        );
    }
    println!();
    print!("{}", render_timeline(&result, width));
    Ok(())
}

fn cmd_bench_list() -> Result<(), String> {
    println!(
        "{:<6} {:<10} {:<28} {:>11} {:>11} {:>12} {:>4}",
        "name", "suite", "description", "large (us)", "small (us)", "trivial (us)", "L"
    );
    // Measure standalone times on the simulated device (kernel time,
    // excluding launch overhead) — the same numbers `table1` reports.
    let cfg = GpuConfig::k40();
    for b in Benchmark::all() {
        let measure = |class| {
            let t = flep_gpu_sim::run_single(cfg.clone(), b.original_desc(class));
            (t - cfg.launch_overhead).as_us()
        };
        println!(
            "{:<6} {:<10} {:<28} {:>11.0} {:>11.0} {:>12.0} {:>4}",
            b.id.name(),
            b.suite,
            b.description,
            measure(InputClass::Large),
            measure(InputClass::Small),
            measure(InputClass::Trivial),
            b.table1_amortize
        );
    }
    Ok(())
}

// -- Helpers ---------------------------------------------------------------

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_bench(name: &str) -> Result<Benchmark, String> {
    BenchmarkId::ALL
        .iter()
        .find(|id| id.name().eq_ignore_ascii_case(name))
        .map(|&id| Benchmark::get(id))
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `flep bench-list`)"))
}

fn parse_bench_input(spec: &str, default: InputClass) -> Result<(Benchmark, InputClass), String> {
    let (name, class) = match spec.split_once(':') {
        Some((n, c)) => {
            let class = match c.to_ascii_lowercase().as_str() {
                "large" => InputClass::Large,
                "small" => InputClass::Small,
                "trivial" => InputClass::Trivial,
                other => return Err(format!("unknown input class `{other}`")),
            };
            (n, class)
        }
        None => (spec, default),
    };
    Ok((parse_bench(name)?, class))
}
