//! Determinism-preserving parallel experiment runner.
//!
//! Every figure of the paper is an embarrassingly parallel grid of
//! independent cells — one simulated co-run per `(pair, repeat)` or
//! `(case, sweep-point)` coordinate. This module fans those cells out
//! across OS threads (`std::thread::scope`, zero dependencies) while
//! keeping the output *byte-identical at any thread count*:
//!
//! * **Seeding** — a cell never draws from a shared RNG stream. Each cell
//!   derives its seeds from the experiment's root seed and its own grid
//!   coordinates via [`cell_seed`] (two rounds of the SplitMix64
//!   finalizer), so the randomness a cell sees is a pure function of
//!   *which* cell it is, not of *when* it runs.
//! * **Merging** — [`run_cells`] returns results in cell-index order no
//!   matter which worker computed them, so every downstream fold,
//!   summary, and `FLEP_JSON` document is independent of scheduling.
//!
//! The thread count comes from `FLEP_THREADS` (default:
//! `available_parallelism()`; `1` selects the sequential reference path,
//! which runs the exact same cell closures inline). Tests pin the count
//! programmatically with [`with_threads`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Scoped override installed by [`with_threads`]; beats the
    /// environment when set.
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with the worker-thread count pinned to `threads`, restoring
/// the previous configuration afterwards (also on panic).
///
/// This is the programmatic equivalent of setting `FLEP_THREADS` and is
/// how the determinism tests compare `threads = 1` against `threads = 8`
/// without touching process-global environment state.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|c| c.set(prev));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1)))));
    f()
}

/// The configured worker-thread count: the [`with_threads`] override if
/// one is active, else `FLEP_THREADS`, else `available_parallelism()`.
///
/// Invalid `FLEP_THREADS` values (unparsable, or `0`) are reported on
/// stderr and fall back to the default rather than being silently
/// swallowed.
#[must_use]
pub fn configured_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n;
    }
    let default = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("FLEP_THREADS") {
        Ok(v) => match parse_threads(&v) {
            Ok(n) => n,
            Err(warning) => {
                eprintln!("{warning}");
                default()
            }
        },
        Err(_) => default(),
    }
}

/// Parses a `FLEP_THREADS` value: the thread count for valid input, or
/// the exact warning line [`configured_threads`] prints for invalid input
/// (unparsable, or `0`).
///
/// The message is deliberately stable — it names the knob and the rule
/// but no machine-dependent fallback value — so tests can pin it.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "FLEP_THREADS: invalid value {raw:?} (want an integer >= 1); using available parallelism"
        )),
    }
}

/// Evaluates `f(0..n)` across the configured worker threads and returns
/// the results in index order.
///
/// Cells are handed out through an atomic cursor (dynamic load balancing:
/// a slow SPMV co-run does not hold up 27 fast ones), and each result is
/// stored at its own index, so the returned `Vec` — and anything folded
/// from it — is byte-identical whether one thread or sixteen did the
/// work. With one configured thread (or one cell) the cells run inline on
/// the caller's thread: the sequential reference path.
///
/// # Panics
///
/// Propagates the first panic of any cell, like the sequential loop
/// would.
pub fn run_cells<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = configured_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                results.lock().expect("runner poisoned")[i] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("runner poisoned")
        .into_iter()
        .map(|r| r.expect("every cell ran"))
        .collect()
}

/// SplitMix64 finalizer: the bijective avalanche mix at the heart of the
/// seeding scheme.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for draw `draw` of cell `cell` from an experiment's
/// root seed.
///
/// Two SplitMix64 rounds separated by odd-constant multiplies of the
/// coordinates: neighbouring cells (and neighbouring draws within a
/// cell) get unrelated streams, and the result depends only on
/// `(root, cell, draw)` — never on evaluation order, which is what lets
/// cells run on any thread in any order.
#[must_use]
pub fn cell_seed(root: u64, cell: usize, draw: u64) -> u64 {
    let coord = mix((cell as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(draw.wrapping_mul(0xD1B5_4A32_D192_ED03)));
    mix(root ^ coord)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_at_any_thread_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 5, 16] {
            let got = with_threads(threads, || run_cells(97, |i| i * i));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_cell_grids() {
        assert_eq!(run_cells(0, |i| i), Vec::<usize>::new());
        assert_eq!(run_cells(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn with_threads_restores_previous_configuration() {
        let outer = with_threads(3, || {
            let inner = with_threads(5, configured_threads);
            assert_eq!(inner, 5);
            configured_threads()
        });
        assert_eq!(outer, 3);
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let mut seeds = Vec::new();
        for cell in 0..32 {
            for draw in 0..4 {
                seeds.push(cell_seed(42, cell, draw));
            }
        }
        let rerun: Vec<u64> = (0..32)
            .flat_map(|c| (0..4).map(move |d| cell_seed(42, c, d)))
            .collect();
        assert_eq!(seeds, rerun);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision");
        // And the root seed matters.
        assert_ne!(cell_seed(1, 0, 0), cell_seed(2, 0, 0));
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                run_cells(8, |i| {
                    assert!(i != 5, "cell 5 exploded");
                    i
                })
            })
        });
        assert!(caught.is_err());
    }
}
