//! ASCII timeline rendering for co-run results: one row per job showing
//! when it waited and when its CTAs actually occupied the GPU — the
//! quickest way to *see* a preemption schedule.

use flep_runtime::CoRunResult;
use flep_sim_core::SimTime;

/// Cell glyphs by GPU-busy fraction within the cell's time window.
const LEVELS: [char; 5] = [' ', '░', '▒', '▓', '█'];
/// Glyph for "active but not on the GPU" (queued or draining).
const WAITING: char = '·';

/// Renders a co-run as an ASCII timeline, `width` cells wide.
///
/// Each row is one job; each cell covers `end_time / width` of virtual
/// time. Block glyphs show the fraction of the cell the job's CTAs were
/// resident on the device; `·` marks time the job was active (arrived,
/// unfinished) but not executing.
///
/// # Example
///
/// ```
/// use flep_core::prelude::*;
/// use flep_core::render_timeline;
///
/// let lo = KernelProfile::of(&Benchmark::get(BenchmarkId::Nn), InputClass::Large);
/// let hi = KernelProfile::of(&Benchmark::get(BenchmarkId::Spmv), InputClass::Small);
/// let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
///     .with_span_trace() // timelines render from per-span records
///     .job(JobSpec::new(lo, SimTime::ZERO).with_priority(1))
///     .job(JobSpec::new(hi, SimTime::from_us(10)).with_priority(2))
///     .run();
/// let art = render_timeline(&result, 60);
/// assert!(art.contains("NN_Large"));
/// assert!(art.contains('█'));
/// ```
#[must_use]
pub fn render_timeline(result: &CoRunResult, width: usize) -> String {
    let width = width.max(10);
    let end = result.end_time.max(SimTime::from_ns(1));
    let cell_ns = (end.as_ns() as f64 / width as f64).max(1.0);

    let name_w = result
        .jobs
        .iter()
        .map(|j| j.name.len())
        .max()
        .unwrap_or(4)
        .min(24);

    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$} 0{}{}\n",
        "",
        "-".repeat(width.saturating_sub(2)),
        end
    ));
    for (idx, job) in result.jobs.iter().enumerate() {
        let mut row = String::with_capacity(width);
        for cell in 0..width {
            let from = SimTime::from_ns((cell as f64 * cell_ns) as u64);
            let to = SimTime::from_ns(((cell + 1) as f64 * cell_ns) as u64);
            let busy: SimTime = result
                .busy_spans
                .iter()
                .filter(|s| s.owner == idx as u64)
                .map(|s| s.clipped(from, to))
                .sum();
            // CTA-residency time within the cell, normalized by the K40's
            // 120-slot capacity: a full-device kernel renders █, a
            // few-CTA spatial tenant renders ░.
            let frac = (busy.as_ns() as f64 / cell_ns).min(120.0) / 120.0;
            let active = job.arrival < to && job.completed.is_none_or(|c| c > from);
            let glyph = if frac > 0.001 {
                let level = 1 + ((frac * 3.999) as usize).min(3);
                LEVELS[level]
            } else if active {
                WAITING
            } else {
                ' '
            };
            row.push(glyph);
        }
        let mut name = job.name.clone();
        name.truncate(name_w);
        out.push_str(&format!("{name:<name_w$} {row}\n"));
    }
    out.push_str(&format!(
        "{:<name_w$} (█ = full device, ░ = few CTAs, · = waiting)\n",
        ""
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flep_core_test_helpers::*;

    mod flep_core_test_helpers {
        pub use flep_gpu_sim::GpuConfig;
        pub use flep_runtime::{CoRun, JobSpec, KernelProfile, Policy};
        pub use flep_workloads::{Benchmark, BenchmarkId, InputClass};
    }

    fn demo_result() -> CoRunResult {
        let lo = KernelProfile::of(&Benchmark::get(BenchmarkId::Pf), InputClass::Large);
        let hi = KernelProfile::of(&Benchmark::get(BenchmarkId::Mm), InputClass::Small);
        CoRun::new(GpuConfig::k40(), Policy::hpf())
            .with_span_trace()
            .job(JobSpec::new(lo, SimTime::ZERO).with_priority(1))
            .job(JobSpec::new(hi, SimTime::from_us(40)).with_priority(2))
            .run()
    }

    #[test]
    fn timeline_has_one_row_per_job_plus_frame() {
        let r = demo_result();
        let art = render_timeline(&r, 72);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2 + r.jobs.len());
        assert!(lines[1].contains("PF_Large"));
        assert!(lines[2].contains("MM_Small"));
    }

    #[test]
    fn victim_shows_waiting_gap_during_preemption() {
        let r = demo_result();
        let art = render_timeline(&r, 100);
        let victim_row = art.lines().nth(1).unwrap();
        // The victim runs, then waits (·) while MM executes, then resumes.
        assert!(victim_row.contains('█'), "{art}");
        assert!(victim_row.contains(WAITING), "{art}");
    }

    #[test]
    fn width_is_clamped() {
        let r = demo_result();
        let art = render_timeline(&r, 3);
        // Minimum width applies; no panic on degenerate inputs.
        assert!(art.lines().nth(1).unwrap().len() >= 10);
    }
}
