//! Per-kernel performance-model training (§4.2): one ridge regression per
//! benchmark, trained on 100 randomly generated inputs.

use std::collections::HashMap;

use flep_perfmodel::{KernelFeatures, RidgeModel};
use flep_sim_core::{SimRng, SimTime};
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

/// Number of random training inputs per kernel (§4.2).
pub const TRAINING_SAMPLES: usize = 100;

/// The L2 penalty used for every kernel model.
pub const DEFAULT_LAMBDA: f64 = 1e-3;

/// A trained model per benchmark kernel.
#[derive(Debug, Clone)]
pub struct ModelStore {
    models: HashMap<BenchmarkId, RidgeModel>,
    seed: u64,
}

impl ModelStore {
    /// Trains all eight kernel models from a single seed.
    ///
    /// # Panics
    ///
    /// Panics only if ridge training fails, which cannot happen with a
    /// positive penalty.
    #[must_use]
    pub fn train(seed: u64) -> Self {
        let mut root = SimRng::seed_from(seed);
        let mut models = HashMap::new();
        for (i, id) in BenchmarkId::ALL.iter().enumerate() {
            let bench = Benchmark::get(*id);
            let mut rng = root.fork(i as u64 + 1);
            let mut features = Vec::with_capacity(TRAINING_SAMPLES);
            let mut targets = Vec::with_capacity(TRAINING_SAMPLES);
            let mut weights = Vec::with_capacity(TRAINING_SAMPLES);
            for _ in 0..TRAINING_SAMPLES {
                let (f, duration) = bench.random_invocation(&mut rng);
                features.push(f);
                let us = duration.as_us().max(1e-6);
                targets.push(us);
                // Weight 1/t^2: minimize relative error, so that the model
                // is equally accurate on short and long invocations.
                weights.push(1.0 / (us * us));
            }
            let model = RidgeModel::fit_weighted(&features, &targets, &weights, DEFAULT_LAMBDA)
                .expect("ridge training with positive lambda cannot fail");
            models.insert(*id, model);
        }
        ModelStore { models, seed }
    }

    /// The seed the store was trained from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The trained model for one kernel.
    ///
    /// # Panics
    ///
    /// Panics for an id not produced by [`ModelStore::train`] (the store
    /// always holds all eight).
    #[must_use]
    pub fn model(&self, id: BenchmarkId) -> &RidgeModel {
        self.models.get(&id).expect("store holds all benchmarks")
    }

    /// Predicted duration of a benchmark invocation on an input class,
    /// clamped to be non-negative.
    #[must_use]
    pub fn predict(&self, bench: &Benchmark, class: InputClass) -> SimTime {
        let us = self.model(bench.id).predict(bench.features(class));
        SimTime::from_us_f64(us.max(0.0))
    }

    /// Mean relative prediction error over `draws` fresh observations of
    /// the large and small inputs — the Fig. 7 metric.
    #[must_use]
    pub fn prediction_error(&self, bench: &Benchmark, rng: &mut SimRng, draws: usize) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for class in [InputClass::Large, InputClass::Small] {
            let predicted = self.model(bench.id).predict(bench.features(class));
            for _ in 0..draws {
                let actual = bench.observed_duration(class, rng).as_us();
                if actual > 0.0 {
                    total += ((predicted - actual) / actual).abs();
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// One training-feature vector for documentation/tests.
    #[must_use]
    pub fn features_of(bench: &Benchmark, class: InputClass) -> KernelFeatures {
        bench.features(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_is_deterministic() {
        let a = ModelStore::train(7);
        let b = ModelStore::train(7);
        let bench = Benchmark::get(BenchmarkId::Mm);
        assert_eq!(
            a.predict(&bench, InputClass::Large),
            b.predict(&bench, InputClass::Large)
        );
    }

    #[test]
    fn predictions_are_in_the_right_ballpark() {
        let store = ModelStore::train(42);
        for id in BenchmarkId::ALL {
            let bench = Benchmark::get(id);
            let predicted = store.predict(&bench, InputClass::Large).as_us();
            let actual = bench.expected_standalone(InputClass::Large, 120).as_us();
            let err = (predicted - actual).abs() / actual;
            assert!(
                err < 0.25,
                "{id}: predicted {predicted:.0}us vs {actual:.0}us ({:.1}%)",
                err * 100.0
            );
        }
    }

    #[test]
    fn regular_kernels_predict_better_than_irregular_ones() {
        let store = ModelStore::train(42);
        let mut rng = SimRng::seed_from(99);
        let err = |id: BenchmarkId, rng: &mut SimRng| {
            store.prediction_error(&Benchmark::get(id), rng, 20)
        };
        let va = err(BenchmarkId::Va, &mut rng);
        let spmv = err(BenchmarkId::Spmv, &mut rng);
        assert!(
            va < spmv,
            "VA (regular, {va:.3}) must predict better than SPMV (irregular, {spmv:.3})"
        );
    }

    #[test]
    fn average_error_matches_paper_band() {
        // Paper: average ~6.9%, range ~2.7%..12.2%.
        let store = ModelStore::train(42);
        let mut rng = SimRng::seed_from(5);
        let errors: Vec<f64> = BenchmarkId::ALL
            .iter()
            .map(|&id| store.prediction_error(&Benchmark::get(id), &mut rng, 30))
            .collect();
        let avg = errors.iter().sum::<f64>() / errors.len() as f64;
        assert!(
            avg > 0.03 && avg < 0.12,
            "average prediction error {avg:.3} outside the paper band"
        );
    }
}
