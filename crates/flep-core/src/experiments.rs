//! The reproduction harness: one function per table/figure of the paper's
//! evaluation (§6), returning structured rows. The `flep-bench` binaries
//! print these; the integration tests assert their shapes.
//!
//! Every function is deterministic given its [`ExpConfig`] seed — and
//! *independent of the worker-thread count*: the heavy experiments fan
//! their independent simulation cells out through [`crate::runner`], with
//! each cell's randomness derived from the root seed and the cell's grid
//! coordinates (see [`crate::runner::cell_seed`]) rather than drawn from
//! a shared sequential stream. Results merge in cell-index order, so the
//! rows (and their `FLEP_JSON` rendering) are byte-identical at
//! `FLEP_THREADS=1` and `FLEP_THREADS=64`.

use flep_gpu_sim::GpuConfig;
use flep_metrics::{antt, Turnaround};
use flep_runtime::{CoRun, CoRunResult, JobSpec, KernelProfile, Policy};
use flep_sim_core::{SimRng, SimTime};
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

use crate::models::ModelStore;
use crate::runner::{cell_seed, run_cells};

/// Configuration shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Repetitions averaged per data point (the paper uses 10).
    pub repeats: u32,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            seed: 42,
            repeats: 3,
        }
    }
}

impl ExpConfig {
    /// A fast configuration for CI-style smoke runs.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        ExpConfig { seed, repeats: 1 }
    }
}

/// The 28 priority co-run pairs of Figs. 1, 8: the low-priority victim runs
/// {CFD, NN, PF, PL} on the large input; the high-priority kernel is each
/// *other* benchmark on its small input.
#[must_use]
pub fn priority_pairs() -> Vec<(BenchmarkId, BenchmarkId)> {
    let victims = [
        BenchmarkId::Cfd,
        BenchmarkId::Nn,
        BenchmarkId::Pf,
        BenchmarkId::Pl,
    ];
    let mut pairs = Vec::new();
    for lo in victims {
        for hi in BenchmarkId::ALL {
            if hi != lo {
                pairs.push((lo, hi));
            }
        }
    }
    pairs
}

/// The 28 equal-priority pairs of Figs. 10, 11: {MD, MM, SPMV, VA} on the
/// small input against each other benchmark on the large input.
#[must_use]
pub fn equal_priority_pairs() -> Vec<(BenchmarkId, BenchmarkId)> {
    let shorts = [
        BenchmarkId::Md,
        BenchmarkId::Mm,
        BenchmarkId::Spmv,
        BenchmarkId::Va,
    ];
    let mut pairs = Vec::new();
    for short in shorts {
        for long in BenchmarkId::ALL {
            if long != short {
                pairs.push((long, short));
            }
        }
    }
    pairs
}

/// 28 random benchmark triplets `A_B_C` (Fig. 12): A runs the large input,
/// B and C the small inputs.
#[must_use]
pub fn random_triplets(seed: u64) -> Vec<(BenchmarkId, BenchmarkId, BenchmarkId)> {
    let mut rng = SimRng::seed_from(seed ^ 0x7219);
    let mut out = Vec::new();
    while out.len() < 28 {
        let mut ids = BenchmarkId::ALL.to_vec();
        rng.shuffle(&mut ids);
        let t = (ids[0], ids[1], ids[2]);
        if !out.contains(&t) {
            out.push(t);
        }
    }
    out
}

fn profile(id: BenchmarkId, class: InputClass) -> KernelProfile {
    KernelProfile::of(&Benchmark::get(id), class)
}

/// A job spec with a model prediction attached (the runtime operates on
/// predictions, as in the paper).
fn predicted_job(
    store: &ModelStore,
    id: BenchmarkId,
    class: InputClass,
    arrival: SimTime,
    seed: u64,
) -> JobSpec {
    let bench = Benchmark::get(id);
    JobSpec::new(profile(id, class), arrival)
        .with_predicted(store.predict(&bench, class))
        .with_seed(seed)
}

/// Standalone turnaround of a kernel on an otherwise idle device (the
/// normalization baseline for slowdown/NTT).
#[must_use]
pub fn standalone(config: &GpuConfig, id: BenchmarkId, class: InputClass, seed: u64) -> SimTime {
    let result = CoRun::new(config.clone(), Policy::MpsBaseline)
        .job(JobSpec::new(profile(id, class), SimTime::ZERO).with_seed(seed))
        .run();
    result.jobs[0]
        .turnaround()
        .expect("standalone run completes")
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark.
    pub id: BenchmarkId,
    /// Source suite.
    pub suite: &'static str,
    /// Kernel lines of code (from the paper).
    pub kernel_loc: u32,
    /// Measured standalone time, large input (µs).
    pub large_us: f64,
    /// Measured standalone time, small input (µs).
    pub small_us: f64,
    /// Measured standalone time, trivial input (µs).
    pub trivial_us: f64,
    /// Amortizing factor chosen by the offline tuner.
    pub tuned_amortize: u32,
    /// Amortizing factor reported in the paper.
    pub paper_amortize: u32,
}

/// Regenerates Table 1: standalone times (kernel time, excluding launch
/// overhead, like the paper's measurements) and tuned amortizing factors.
#[must_use]
pub fn table1(config: &GpuConfig) -> Vec<Table1Row> {
    // No randomness: a cell is a pure function of the benchmark id, so
    // the fan-out needs no seeding discipline at all.
    run_cells(BenchmarkId::ALL.len(), |i| {
        let id = BenchmarkId::ALL[i];
        let bench = Benchmark::get(id);
        let time_us = |class| {
            let t = flep_gpu_sim::run_single(config.clone(), bench.original_desc(class));
            (t - config.launch_overhead).as_us()
        };
        let tuned = flep_compile::tune(config, &bench);
        Table1Row {
            id,
            suite: bench.suite,
            kernel_loc: bench.kernel_loc,
            large_us: time_us(InputClass::Large),
            small_us: time_us(InputClass::Small),
            trivial_us: time_us(InputClass::Trivial),
            tuned_amortize: tuned.chosen,
            paper_amortize: bench.table1_amortize,
        }
    })
}

// ---------------------------------------------------------------------------
// Figure 1 — MPS co-run slowdown
// ---------------------------------------------------------------------------

/// One co-run pair's scalar result.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Low-priority / long-running benchmark (large input).
    pub lo: BenchmarkId,
    /// High-priority / short benchmark (small input).
    pub hi: BenchmarkId,
    /// The experiment's scalar (slowdown, speedup, improvement, ...).
    pub value: f64,
}

/// Fig. 1: slowdown of the high-priority kernel when it arrives just after
/// a long kernel under plain MPS (no preemption). Paper: up to ~32.6X.
#[must_use]
pub fn fig01_mps_slowdown(config: &GpuConfig, exp: ExpConfig) -> Vec<PairResult> {
    let pairs = priority_pairs();
    let root = exp.seed ^ 0xF1_61;
    // One cell per (pair, repeat); the per-pair mean is folded in index
    // order afterwards, so the result is thread-count independent.
    let cells = run_cells(pairs.len() * exp.repeats as usize, |i| {
        let (p, r) = (i / exp.repeats as usize, i % exp.repeats as usize);
        let (lo, hi) = pairs[p];
        let s1 = cell_seed(root, p, r as u64 * 2);
        let s2 = cell_seed(root, p, r as u64 * 2 + 1);
        let single = standalone(config, hi, InputClass::Small, s2);
        let corun = CoRun::new(config.clone(), Policy::MpsBaseline)
            .job(JobSpec::new(profile(lo, InputClass::Large), SimTime::ZERO).with_seed(s1))
            .job(JobSpec::new(profile(hi, InputClass::Small), SimTime::from_us(10)).with_seed(s2))
            .run();
        let multi = corun.jobs[1].turnaround().expect("hi completes");
        multi.ratio(single)
    });
    mean_per_pair(&pairs, &cells, exp.repeats)
}

/// Folds per-`(pair, repeat)` cell values into per-pair means, preserving
/// pair order and summing repeats in index order (f64 addition is not
/// associative; a fixed fold order keeps results bit-stable).
fn mean_per_pair(
    pairs: &[(BenchmarkId, BenchmarkId)],
    cells: &[f64],
    repeats: u32,
) -> Vec<PairResult> {
    pairs
        .iter()
        .enumerate()
        .map(|(p, &(lo, hi))| {
            let base = p * repeats as usize;
            let acc: f64 = cells[base..base + repeats as usize].iter().sum();
            PairResult {
                lo,
                hi,
                value: acc / f64::from(repeats),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 7 — prediction errors
// ---------------------------------------------------------------------------

/// Fig. 7: per-benchmark mean relative duration-prediction error.
/// Paper: average ~6.9%, range ~2.7%–12.2%.
#[must_use]
pub fn fig07_prediction_errors(exp: ExpConfig) -> Vec<(BenchmarkId, f64)> {
    let store = ModelStore::train(exp.seed);
    // Deliberately sequential: the per-benchmark error estimates share one
    // RNG stream whose draw order is pinned by the calibrated shape tests
    // (see fig07_shape_prediction_errors), and the whole figure costs
    // milliseconds — nothing to win by cutting it over to per-cell seeds.
    let mut rng = SimRng::seed_from(exp.seed ^ 0xF167);
    BenchmarkId::ALL
        .iter()
        .map(|&id| {
            let err = store.prediction_error(&Benchmark::get(id), &mut rng, 30);
            (id, err)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 8 — HPF speedups for high-priority kernels
// ---------------------------------------------------------------------------

/// Fig. 8: turnaround speedup of the high-priority kernel under FLEP/HPF
/// over the MPS co-run. Paper: avg ~10.1X, max ~24.2X (SPMV_NN), min ~4.1X.
#[must_use]
pub fn fig08_hpf_speedups(config: &GpuConfig, exp: ExpConfig) -> Vec<PairResult> {
    // The model store is shared read-only by every cell; train it once
    // before the fan-out.
    let store = ModelStore::train(exp.seed);
    let pairs = priority_pairs();
    let root = exp.seed ^ 0xF1_68;
    let cells = run_cells(pairs.len() * exp.repeats as usize, |i| {
        let (p, r) = (i / exp.repeats as usize, i % exp.repeats as usize);
        let (lo, hi) = pairs[p];
        let s1 = cell_seed(root, p, r as u64 * 2);
        let s2 = cell_seed(root, p, r as u64 * 2 + 1);
        let run = |policy| {
            CoRun::new(config.clone(), policy)
                .job(
                    predicted_job(&store, lo, InputClass::Large, SimTime::ZERO, s1)
                        .with_priority(1),
                )
                .job(
                    predicted_job(&store, hi, InputClass::Small, SimTime::from_us(10), s2)
                        .with_priority(2),
                )
                .run()
        };
        let mps = run(Policy::MpsBaseline).jobs[1].turnaround().unwrap();
        let flep = run(Policy::hpf()).jobs[1].turnaround().unwrap();
        mps.ratio(flep)
    });
    mean_per_pair(&pairs, &cells, exp.repeats)
}

// ---------------------------------------------------------------------------
// Figure 9 — speedup vs launch delay
// ---------------------------------------------------------------------------

/// One delay-sweep curve.
#[derive(Debug, Clone)]
pub struct DelayCurve {
    /// The pair (victim, high-priority kernel).
    pub lo: BenchmarkId,
    /// High-priority kernel.
    pub hi: BenchmarkId,
    /// `(delay, speedup)` points.
    pub points: Vec<(SimTime, f64)>,
}

/// Fig. 9: the Fig. 8 speedup as a function of the delay between the two
/// launches; decays roughly linearly and plateaus at 1 once the delay
/// exceeds the victim's runtime.
#[must_use]
pub fn fig09_delay_sweep(config: &GpuConfig, exp: ExpConfig) -> Vec<DelayCurve> {
    let store = ModelStore::train(exp.seed);
    let pairs = [
        (BenchmarkId::Nn, BenchmarkId::Spmv),
        (BenchmarkId::Cfd, BenchmarkId::Mm),
        (BenchmarkId::Pf, BenchmarkId::Md),
        (BenchmarkId::Pl, BenchmarkId::Va),
    ];
    const N_DELAYS: usize = 8;
    let root = exp.seed ^ 0xF1_69;
    // Both seeds are shared along a curve (the paper varies only the
    // delay), so they derive from the curve index alone; the cell grid
    // still fans out over every (curve, delay) point.
    let points = run_cells(pairs.len() * N_DELAYS, |i| {
        let (c, d) = (i / N_DELAYS, i % N_DELAYS);
        let (lo, hi) = pairs[c];
        let lo_single = Benchmark::get(lo)
            .expected_standalone(InputClass::Large, 120)
            .as_us();
        // Sweep past the victim's runtime to expose the plateau.
        let delay = SimTime::from_us_f64(lo_single * d as f64 / 6.0);
        let s1 = cell_seed(root, c, 0);
        let s2 = cell_seed(root, c, 1);
        let run = |policy| {
            CoRun::new(config.clone(), policy)
                .job(
                    predicted_job(&store, lo, InputClass::Large, SimTime::ZERO, s1)
                        .with_priority(1),
                )
                .job(
                    predicted_job(
                        &store,
                        hi,
                        InputClass::Small,
                        SimTime::from_us(10) + delay,
                        s2,
                    )
                    .with_priority(2),
                )
                .run()
        };
        let mps = run(Policy::MpsBaseline).jobs[1].turnaround().unwrap();
        let flep = run(Policy::hpf()).jobs[1].turnaround().unwrap();
        (delay, mps.ratio(flep))
    });
    pairs
        .into_iter()
        .enumerate()
        .map(|(c, (lo, hi))| DelayCurve {
            lo,
            hi,
            points: points[c * N_DELAYS..(c + 1) * N_DELAYS].to_vec(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 10 & 11 — equal-priority ANTT and STP
// ---------------------------------------------------------------------------

/// Per-pair ANTT improvement and STP degradation (one run feeds both
/// figures).
#[derive(Debug, Clone)]
pub struct EqualPriorityRow {
    /// The long-running benchmark (large input).
    pub long: BenchmarkId,
    /// The short benchmark (small input).
    pub short: BenchmarkId,
    /// ANTT improvement of FLEP over MPS (Fig. 10). Paper avg ~8X.
    pub antt_improvement: f64,
    /// System-throughput degradation of FLEP vs MPS (Fig. 11), measured
    /// as relative makespan growth. Paper avg ~5.4%.
    pub stp_degradation: f64,
}

/// Figs. 10 and 11: equal-priority two-kernel co-runs.
#[must_use]
pub fn fig10_11_equal_priority(config: &GpuConfig, exp: ExpConfig) -> Vec<EqualPriorityRow> {
    let store = ModelStore::train(exp.seed);
    let pairs = equal_priority_pairs();
    let root = exp.seed ^ 0xF1_70;
    let cells = run_cells(pairs.len() * exp.repeats as usize, |i| {
        let (p, r) = (i / exp.repeats as usize, i % exp.repeats as usize);
        let (long, short) = pairs[p];
        let s1 = cell_seed(root, p, r as u64 * 2);
        let s2 = cell_seed(root, p, r as u64 * 2 + 1);
        let single_long = standalone(config, long, InputClass::Large, s1);
        let single_short = standalone(config, short, InputClass::Small, s2);
        let run = |policy| {
            let r = CoRun::new(config.clone(), policy)
                .job(predicted_job(
                    &store,
                    long,
                    InputClass::Large,
                    SimTime::ZERO,
                    s1,
                ))
                .job(predicted_job(
                    &store,
                    short,
                    InputClass::Small,
                    SimTime::from_us(10),
                    s2,
                ))
                .run();
            let ts = [
                Turnaround {
                    single: single_long,
                    multi: r.jobs[0].turnaround().unwrap(),
                },
                Turnaround {
                    single: single_short,
                    multi: r.jobs[1].turnaround().unwrap(),
                },
            ];
            (antt(&ts), makespan(&r).as_us())
        };
        let (antt_mps, makespan_mps) = run(Policy::MpsBaseline);
        let (antt_flep, makespan_flep) = run(Policy::hpf());
        // System-throughput degradation, measured as the relative
        // growth of the co-run makespan: preemption overheads make
        // the same total work take longer end-to-end. (Eyerman's
        // Σ single/multi STP *improves* under preemption because
        // the short kernel stops waiting; the paper's ~5.4%
        // "throughput degradation" is only meaningful in the
        // work-per-wall-time sense reproduced here.)
        (
            antt_mps / antt_flep,
            (makespan_flep - makespan_mps) / makespan_mps,
        )
    });
    pairs
        .iter()
        .enumerate()
        .map(|(p, &(long, short))| {
            let base = p * exp.repeats as usize;
            let slice = &cells[base..base + exp.repeats as usize];
            let antt_imp: f64 = slice.iter().map(|c| c.0).sum();
            let stp_deg: f64 = slice.iter().map(|c| c.1).sum();
            EqualPriorityRow {
                long,
                short,
                antt_improvement: antt_imp / f64::from(exp.repeats),
                stp_degradation: stp_deg / f64::from(exp.repeats),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 12 — three-kernel co-runs
// ---------------------------------------------------------------------------

/// One triplet's result.
#[derive(Debug, Clone)]
pub struct TripletRow {
    /// The triplet `A_B_C` (A large, B and C small).
    pub triplet: (BenchmarkId, BenchmarkId, BenchmarkId),
    /// FLEP ANTT improvement over MPS. Paper: avg ~6.6X, max ~20.2X.
    pub flep_improvement: f64,
    /// Kernel-reordering ANTT improvement over MPS. Paper: ~2.3%.
    pub reorder_improvement: f64,
}

/// Fig. 12: three-kernel co-runs under FLEP/HPF vs the reordering baseline.
#[must_use]
pub fn fig12_three_kernel(config: &GpuConfig, exp: ExpConfig) -> Vec<TripletRow> {
    let store = ModelStore::train(exp.seed);
    let triplets = random_triplets(exp.seed);
    let root = exp.seed ^ 0xF1_72;
    run_cells(triplets.len(), |t| {
        let (a, b, c) = triplets[t];
        {
            let s: Vec<u64> = (0..3).map(|k| cell_seed(root, t, k)).collect();
            let singles = [
                standalone(config, a, InputClass::Large, s[0]),
                standalone(config, b, InputClass::Small, s[1]),
                standalone(config, c, InputClass::Small, s[2]),
            ];
            let run = |policy| {
                let r = CoRun::new(config.clone(), policy)
                    .job(predicted_job(
                        &store,
                        a,
                        InputClass::Large,
                        SimTime::ZERO,
                        s[0],
                    ))
                    .job(predicted_job(
                        &store,
                        b,
                        InputClass::Small,
                        SimTime::from_us(30),
                        s[1],
                    ))
                    .job(predicted_job(
                        &store,
                        c,
                        InputClass::Small,
                        SimTime::from_us(60),
                        s[2],
                    ))
                    .run();
                let ts: Vec<Turnaround> = r
                    .jobs
                    .iter()
                    .zip(singles)
                    .map(|(j, single)| Turnaround {
                        single,
                        multi: j.turnaround().unwrap(),
                    })
                    .collect();
                antt(&ts)
            };
            let mps = run(Policy::MpsBaseline);
            let flep = run(Policy::hpf());
            let reorder = run(Policy::Reordering);
            TripletRow {
                triplet: (a, b, c),
                flep_improvement: mps / flep,
                reorder_improvement: mps / reorder,
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Figures 13 & 14 — FFS fairness and throughput
// ---------------------------------------------------------------------------

/// A share-over-time curve averaged across pairs.
#[derive(Debug, Clone)]
pub struct SharePoint {
    /// Window end time.
    pub at: SimTime,
    /// Mean GPU share of the high-weight kernel across pairs.
    pub hi_mean: f64,
    /// Standard deviation across pairs.
    pub hi_std: f64,
    /// Mean GPU share of the low-weight kernel.
    pub lo_mean: f64,
    /// Standard deviation across pairs.
    pub lo_std: f64,
}

/// The FFS experiment output: the Fig. 13 share curves and the Fig. 14
/// per-pair throughput degradations.
#[derive(Debug, Clone)]
pub struct FfsOutcome {
    /// Fig. 13 curve (2:1 weights → 2/3 vs 1/3).
    pub share_curve: Vec<SharePoint>,
    /// Fig. 14 rows: per-pair throughput degradation (target ≈
    /// `max_overhead`).
    pub degradation: Vec<PairResult>,
    /// The `max_overhead` used.
    pub max_overhead: f64,
}

/// Figs. 13/14: the 28 priority pairs re-run as infinite loops under FFS
/// with 2:1 weights and `max_overhead` = 10%.
#[must_use]
pub fn fig13_14_ffs(config: &GpuConfig, exp: ExpConfig) -> FfsOutcome {
    let max_overhead = 0.10;
    let horizon = SimTime::from_ms(150);
    let window = SimTime::from_ms(10);
    let store = ModelStore::train(exp.seed);
    let pairs = priority_pairs();
    let root = exp.seed ^ 0xF1_73;

    // Each pair's 150ms FFS horizon run is the single most expensive cell
    // in the repo; fan the 28 of them out and merge in pair order.
    let cells = run_cells(pairs.len(), |p| {
        let (lo, hi) = pairs[p];
        let s1 = cell_seed(root, p, 0);
        let s2 = cell_seed(root, p, 1);
        // Windowed gpu_share needs per-span residency records.
        let result = CoRun::new(config.clone(), Policy::Ffs { max_overhead })
            .with_span_trace()
            .job(
                predicted_job(&store, hi, InputClass::Small, SimTime::ZERO, s2)
                    .with_priority(2)
                    .looping(),
            )
            .job(
                predicted_job(&store, lo, InputClass::Large, SimTime::from_us(5), s1)
                    .with_priority(1)
                    .looping(),
            )
            .horizon(horizon)
            .run();

        // Fig. 13: share per window.
        let mut windows = Vec::new();
        let mut t = SimTime::ZERO;
        while t + window <= horizon {
            let hi_share = result.gpu_share(0, t, t + window);
            let lo_share = result.gpu_share(1, t, t + window);
            windows.push((hi_share, lo_share));
            t += window;
        }

        // Fig. 14: useful work per wall time vs dedicated execution.
        let useful: f64 = result
            .jobs
            .iter()
            .map(|j| {
                let profile = if j.priority == 2 {
                    Benchmark::get(hi).task_cost(InputClass::Small).base
                } else {
                    Benchmark::get(lo).task_cost(InputClass::Large).base
                };
                // Tasks execute 120-wide; wall-clock useful time is
                // task_time * tasks / capacity.
                profile.as_us() * j.tasks_completed as f64 / 120.0
            })
            .sum();
        let elapsed = result.end_time.as_us();
        let degradation = PairResult {
            lo,
            hi,
            value: (1.0 - useful / elapsed).max(0.0),
        };
        (windows, degradation)
    });
    let per_pair_shares: Vec<Vec<(f64, f64)>> = cells.iter().map(|c| c.0.clone()).collect();
    let degradation: Vec<PairResult> = cells.into_iter().map(|c| c.1).collect();

    // Aggregate the curves across pairs.
    let n_windows = per_pair_shares.iter().map(Vec::len).min().unwrap_or(0);
    let mut share_curve = Vec::new();
    for w in 0..n_windows {
        let his: Vec<f64> = per_pair_shares.iter().map(|p| p[w].0).collect();
        let los: Vec<f64> = per_pair_shares.iter().map(|p| p[w].1).collect();
        let hi_sum = flep_metrics::Summary::of(&his);
        let lo_sum = flep_metrics::Summary::of(&los);
        share_curve.push(SharePoint {
            at: window * (w as u64 + 1),
            hi_mean: hi_sum.mean,
            hi_std: hi_sum.std_dev,
            lo_mean: lo_sum.mean,
            lo_std: lo_sum.std_dev,
        });
    }

    FfsOutcome {
        share_curve,
        degradation,
        max_overhead,
    }
}

// ---------------------------------------------------------------------------
// Figure 15 — spatial vs temporal preemption overhead
// ---------------------------------------------------------------------------

/// Per-victim-benchmark preemption-overhead reduction.
#[derive(Debug, Clone)]
pub struct SpatialRow {
    /// The victim benchmark (large input, low priority).
    pub victim: BenchmarkId,
    /// Mean temporal-preemption overhead across co-runners.
    pub temporal_overhead: f64,
    /// Mean spatial-preemption overhead across co-runners.
    pub spatial_overhead: f64,
    /// Relative reduction `1 - spatial/temporal`. Paper: avg ~31%, max
    /// ~41%.
    pub reduction: f64,
}

/// Fig. 15: preemption-overhead reduction from yielding only the SMs the
/// trivial high-priority kernel needs.
#[must_use]
pub fn fig15_spatial(config: &GpuConfig, exp: ExpConfig) -> Vec<SpatialRow> {
    let store = ModelStore::train(exp.seed);
    let root = exp.seed ^ 0xF1_75;
    // Flatten the (victim, co-runner) grid into one cell per combination;
    // per-victim means are folded afterwards in co-runner order.
    let combos: Vec<(BenchmarkId, BenchmarkId)> = BenchmarkId::ALL
        .iter()
        .flat_map(|&victim| {
            BenchmarkId::ALL
                .into_iter()
                .filter(move |&hi| hi != victim)
                .map(move |hi| (victim, hi))
        })
        .collect();
    let cells = run_cells(combos.len(), |i| {
        let (victim, hi) = combos[i];
        let s1 = cell_seed(root, i, 0);
        let s2 = cell_seed(root, i, 1);
        let makespan = |policy| {
            let r = CoRun::new(config.clone(), policy)
                .job(
                    predicted_job(&store, victim, InputClass::Large, SimTime::ZERO, s1)
                        .with_priority(1),
                )
                .job(
                    predicted_job(&store, hi, InputClass::Trivial, SimTime::from_us(50), s2)
                        .with_priority(2),
                )
                .run();
            r.jobs
                .iter()
                .filter_map(|j| j.completed)
                .max()
                .expect("both complete")
                .as_us()
        };
        let t_org = makespan(Policy::MpsBaseline);
        let temporal = (makespan(Policy::hpf()) - t_org) / t_org;
        let spatial = (makespan(Policy::hpf_spatial()) - t_org) / t_org;
        (temporal.max(0.0), spatial.max(0.0))
    });
    let per_victim = BenchmarkId::ALL.len() - 1;
    BenchmarkId::ALL
        .iter()
        .enumerate()
        .map(|(v, &victim)| {
            let slice = &cells[v * per_victim..(v + 1) * per_victim];
            let temporal_overhead = slice.iter().map(|c| c.0).sum::<f64>() / per_victim as f64;
            let spatial_overhead = slice.iter().map(|c| c.1).sum::<f64>() / per_victim as f64;
            SpatialRow {
                victim,
                temporal_overhead,
                spatial_overhead,
                reduction: if temporal_overhead > 0.0 {
                    1.0 - spatial_overhead / temporal_overhead
                } else {
                    0.0
                },
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 16 — yielding more SMs than needed
// ---------------------------------------------------------------------------

/// One SM-sweep curve.
#[derive(Debug, Clone)]
pub struct SmSweepCurve {
    /// The high-priority (trivial-input) kernel.
    pub hi: BenchmarkId,
    /// The victim kernel.
    pub victim: BenchmarkId,
    /// `(yielded SMs, speedup over yielding the minimum)` points.
    pub points: Vec<(u32, f64)>,
}

/// Fig. 16: performance of the high-priority kernel as more SMs than
/// needed are yielded. Paper: up to ~2.22X over the minimal yield.
#[must_use]
pub fn fig16_sm_sweep(config: &GpuConfig, exp: ExpConfig) -> Vec<SmSweepCurve> {
    let store = ModelStore::train(exp.seed);
    // The paper's four case studies: NN and MD (both need 2 SMs on the
    // trivial input) against two victims.
    let cases = [
        (BenchmarkId::Nn, BenchmarkId::Cfd),
        (BenchmarkId::Nn, BenchmarkId::Va),
        (BenchmarkId::Md, BenchmarkId::Cfd),
        (BenchmarkId::Md, BenchmarkId::Va),
    ];
    let root = exp.seed ^ 0xF1_76;
    // Flatten every (case, yield-width) coordinate into one cell; the
    // seeds are per-case (the paper varies only the width), the baseline
    // is each case's min-width turnaround, recovered from the merged
    // results.
    let coords: Vec<(usize, u32)> = cases
        .iter()
        .enumerate()
        .flat_map(|(c, &(hi, _))| {
            let hi_profile = profile(hi, InputClass::Trivial);
            let min_sms = hi_profile.sms_needed(config, hi_profile.total_tasks);
            (min_sms..=config.num_sms).map(move |sms| (c, sms))
        })
        .collect();
    let turnarounds = run_cells(coords.len(), |i| {
        let (c, sms) = coords[i];
        let (hi, victim) = cases[c];
        let s1 = cell_seed(root, c, 0);
        let s2 = cell_seed(root, c, 1);
        let r = CoRun::new(config.clone(), Policy::hpf_spatial_yielding(sms))
            .job(
                predicted_job(&store, victim, InputClass::Large, SimTime::ZERO, s1)
                    .with_priority(1),
            )
            .job(
                predicted_job(&store, hi, InputClass::Trivial, SimTime::from_us(50), s2)
                    .with_priority(2),
            )
            .run();
        // Kernel execution window: dispatch of the first CTA to
        // completion. The drain latency before dispatch is the
        // same for every yield width; Fig. 16 is about how fast
        // the kernel itself runs on the yielded SMs.
        let done = r.jobs[1].completed.expect("hi completes");
        let started = r.jobs[1].first_dispatched.expect("hi dispatched");
        done.saturating_sub(started).as_us()
    });
    cases
        .into_iter()
        .enumerate()
        .map(|(c, (hi, victim))| {
            let case_points: Vec<(u32, f64)> = coords
                .iter()
                .zip(&turnarounds)
                .filter(|((cc, _), _)| *cc == c)
                .map(|(&(_, sms), &t)| (sms, t))
                .collect();
            let baseline = case_points[0].1;
            SmSweepCurve {
                hi,
                victim,
                points: case_points
                    .into_iter()
                    .map(|(sms, t)| (sms, baseline / t))
                    .collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 17 — single-kernel overhead: FLEP vs kernel slicing
// ---------------------------------------------------------------------------

/// Per-benchmark transformation overhead.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Benchmark.
    pub id: BenchmarkId,
    /// FLEP persistent-thread overhead (never preempted). Paper avg ~2.5%.
    pub flep: f64,
    /// Kernel-slicing overhead at equal preemption granularity. Paper avg
    /// ~8%, dominated by CFD/MD/SPMV/MM; VA is the one case where slicing
    /// wins.
    pub slicing: f64,
}

/// Fig. 17: single-kernel (no preemption) overhead of the FLEP transform
/// vs kernel slicing at matching preemption granularity.
#[must_use]
pub fn fig17_overhead(config: &GpuConfig) -> Vec<OverheadRow> {
    // Deterministic per-benchmark cells (no randomness to derive).
    run_cells(BenchmarkId::ALL.len(), |i| {
        let id = BenchmarkId::ALL[i];
        let bench = Benchmark::get(id);
        let flep = flep_compile::measure_overhead(
            config,
            &bench,
            InputClass::Large,
            bench.table1_amortize,
        );
        let p = bench.profile(InputClass::Large);
        let capacity = config.device_capacity(&bench.resources);
        let plan = flep_compile::SlicePlan::matching_flep_granularity(
            p.tasks,
            bench.table1_amortize,
            capacity,
        );
        let desc = bench.original_desc(InputClass::Large);
        let original =
            flep_gpu_sim::run_single(config.clone(), bench.original_desc(InputClass::Large));
        let sliced = flep_compile::run_sliced_standalone(config.clone(), &desc, plan);
        OverheadRow {
            id,
            flep,
            slicing: (sliced.as_us() - original.as_us()) / original.as_us(),
        }
    })
}

/// Convenience: a [`CoRunResult`] makespan (latest completion).
#[must_use]
pub fn makespan(result: &CoRunResult) -> SimTime {
    result
        .jobs
        .iter()
        .filter_map(|j| j.completed)
        .max()
        .unwrap_or(SimTime::ZERO)
}

// ---------------------------------------------------------------------------
// Ablations (design-choice studies promised in DESIGN.md §4)
// ---------------------------------------------------------------------------

/// One row of the amortizing-factor sweep: the overhead/latency trade-off
/// behind the §4.1 tuner and the §7 discussion.
#[derive(Debug, Clone)]
pub struct LSweepRow {
    /// The amortizing factor tried.
    pub amortize: u32,
    /// Transformation overhead of the never-preempted kernel.
    pub overhead: f64,
    /// Preemption latency (batch drain + flag visibility).
    pub latency: SimTime,
}

/// Ablation: sweep `L` for one benchmark, exposing the overhead-vs-latency
/// trade-off the offline tuner navigates.
#[must_use]
pub fn ablation_l_sweep(config: &GpuConfig, id: BenchmarkId) -> Vec<LSweepRow> {
    let bench = Benchmark::get(id);
    flep_compile::DEFAULT_CANDIDATES
        .iter()
        .map(|&l| LSweepRow {
            amortize: l,
            overhead: flep_compile::measure_overhead(config, &bench, InputClass::Large, l),
            latency: flep_compile::preemption_latency(config, &bench, InputClass::Large, l),
        })
        .collect()
}

/// Outcome of the overhead-aware-HPF ablation on near-tie workloads.
#[derive(Debug, Clone)]
pub struct OverheadAwareAblation {
    /// Preemptions with the §5.2.1 overhead term enabled (the paper's
    /// configuration).
    pub preemptions_aware: u32,
    /// Preemptions with the term disabled.
    pub preemptions_naive: u32,
    /// Makespan with the term enabled.
    pub makespan_aware: SimTime,
    /// Makespan with the term disabled.
    pub makespan_naive: SimTime,
    /// Total waiting time across jobs with the term enabled.
    pub waiting_aware: SimTime,
    /// Total waiting time across jobs with the term disabled.
    pub waiting_naive: SimTime,
}

/// Ablation: disable HPF's preemption-overhead term and schedule a stream
/// of nearly equal-length kernels. Without the term, marginally-shorter
/// arrivals keep preempting the running kernel and pay pure overhead.
#[must_use]
pub fn ablation_overhead_aware(config: &GpuConfig, exp: ExpConfig) -> OverheadAwareAblation {
    let run = |overhead_aware: bool| {
        let mut corun = CoRun::new(
            config.clone(),
            Policy::Hpf {
                spatial: false,
                overhead_aware,
                forced_yield: None,
            },
        );
        // Six VA-small invocations arriving every 40us, each sized so its
        // duration undercuts the previous job's *remaining* time by ~20us
        // — far less than VA's ~460us preemption overhead (one L=200 batch
        // drain + relaunch). Naive SRT preempts for these marginal wins;
        // the overhead-aware rule correctly declines.
        for i in 0..6u64 {
            let mut p = profile(BenchmarkId::Va, InputClass::Small);
            // 28 waves x 2.26us ~ 63us shorter per arrival (40us of which
            // the running job will already have executed).
            p.total_tasks -= 3360 * i;
            corun = corun
                .job(JobSpec::new(p, SimTime::from_us(40) * i).with_seed(exp.seed.wrapping_add(i)));
        }
        corun.run()
    };
    let aware = run(true);
    let naive = run(false);
    OverheadAwareAblation {
        preemptions_aware: aware.jobs.iter().map(|j| j.preemptions).sum(),
        preemptions_naive: naive.jobs.iter().map(|j| j.preemptions).sum(),
        makespan_aware: makespan(&aware),
        makespan_naive: makespan(&naive),
        waiting_aware: aware.jobs.iter().map(|j| j.waiting).sum(),
        waiting_naive: naive.jobs.iter().map(|j| j.waiting).sum(),
    }
}

/// Per-benchmark overhead comparison for the §4.1 one-reader broadcast
/// optimization: what the transform would cost if every thread of a CTA
/// polled the pinned flag and pulled tasks individually.
#[derive(Debug, Clone)]
pub struct PollAblationRow {
    /// Benchmark.
    pub id: BenchmarkId,
    /// Overhead with the one-reader broadcast (the shipped design).
    pub broadcast: f64,
    /// Overhead with per-thread polling (256 pinned reads + atomics per
    /// batch).
    pub per_thread: f64,
}

/// Ablation: scale the poll and pull costs by the CTA width to model
/// per-thread flag reads, quantifying the §4.1 optimization.
#[must_use]
pub fn ablation_per_thread_poll(config: &GpuConfig) -> Vec<PollAblationRow> {
    BenchmarkId::ALL
        .iter()
        .map(|&id| {
            let bench = Benchmark::get(id);
            let l = bench.table1_amortize;
            let broadcast = flep_compile::measure_overhead(config, &bench, InputClass::Large, l);
            let scaled = GpuConfig {
                poll_cost: config.poll_cost * u64::from(bench.resources.threads_per_cta),
                pull_cost: config.pull_cost * u64::from(bench.resources.threads_per_cta),
                ..config.clone()
            };
            let per_thread = flep_compile::measure_overhead(&scaled, &bench, InputClass::Large, l);
            PollAblationRow {
                id,
                broadcast,
                per_thread,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Sensitivity: device width
// ---------------------------------------------------------------------------

/// Mean HPF speedup on a device of a given SM count.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// SMs in the simulated device.
    pub num_sms: u32,
    /// Mean high-priority speedup over MPS across the sampled pairs.
    pub mean_speedup: f64,
    /// Minimum across the sampled pairs.
    pub min_speedup: f64,
    /// Maximum across the sampled pairs.
    pub max_speedup: f64,
}

/// Sensitivity study: the Fig. 8 experiment replayed on narrower and wider
/// devices (8, 15, 30 SMs). The paper evaluates only the 15-SM K40; a
/// robust mechanism should keep its headline shape as the device scales,
/// since head-of-line blocking is width-independent.
#[must_use]
pub fn sensitivity_sm_scaling(exp: ExpConfig) -> Vec<SensitivityRow> {
    let store = ModelStore::train(exp.seed);
    // A representative subset of the 28 pairs (one per victim).
    let pairs = [
        (BenchmarkId::Cfd, BenchmarkId::Spmv),
        (BenchmarkId::Nn, BenchmarkId::Mm),
        (BenchmarkId::Pf, BenchmarkId::Va),
        (BenchmarkId::Pl, BenchmarkId::Md),
    ];
    let widths = [8u32, 15, 30];
    let all_speedups = run_cells(widths.len() * pairs.len(), |i| {
        let (w, p) = (i / pairs.len(), i % pairs.len());
        let num_sms = widths[w];
        let config = GpuConfig {
            num_sms,
            ..GpuConfig::k40()
        };
        let (lo, hi) = pairs[p];
        let root = exp.seed ^ u64::from(num_sms);
        let s1 = cell_seed(root, p, 0);
        let s2 = cell_seed(root, p, 1);
        let run = |policy| {
            CoRun::new(config.clone(), policy)
                .job(
                    predicted_job(&store, lo, InputClass::Large, SimTime::ZERO, s1)
                        .with_priority(1),
                )
                .job(
                    predicted_job(&store, hi, InputClass::Small, SimTime::from_us(10), s2)
                        .with_priority(2),
                )
                .run()
        };
        let mps = run(Policy::MpsBaseline).jobs[1].turnaround().unwrap();
        let flep = run(Policy::hpf()).jobs[1].turnaround().unwrap();
        mps.ratio(flep)
    });
    widths
        .into_iter()
        .enumerate()
        .map(|(w, num_sms)| {
            let speedups = &all_speedups[w * pairs.len()..(w + 1) * pairs.len()];
            let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
            SensitivityRow {
                num_sms,
                mean_speedup: mean,
                min_speedup: speedups.iter().copied().fold(f64::INFINITY, f64::min),
                max_speedup: speedups.iter().copied().fold(0.0, f64::max),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fault recovery — watchdog escalation latency under injected faults
// ---------------------------------------------------------------------------

/// One fault-recovery measurement: the high-priority kernel's
/// arrival-to-completion latency under a named fault preset, against the
/// fault-free baseline, plus how the escalation ladder resolved it.
/// Latencies are *simulated* time — this is a robustness metric, not a
/// wall-clock one.
#[derive(Debug, Clone)]
pub struct FaultRecoveryRow {
    /// The fault preset exercised.
    pub preset: &'static str,
    /// Median high-priority turnaround across repeats, under the preset.
    pub median: SimTime,
    /// Fastest repeat.
    pub min: SimTime,
    /// Slowest repeat.
    pub max: SimTime,
    /// Median fault-free turnaround of the same co-run (the recovery cost
    /// is `median - baseline`).
    pub baseline: SimTime,
    /// Total watchdog recovery events across repeats.
    pub recoveries: u64,
    /// Summed escalation histogram `[flag, forced drain, kill]`.
    pub escalations: [u64; 3],
}

/// Measures watchdog recovery latency for each fault preset: a
/// long-running low-priority victim plus a high-priority latecomer whose
/// preemption the preset breaks in a specific way. Repeats with derived
/// fault seeds; `fault_seed` (the `FLEP_FAULT_SEED` knob) offsets the
/// whole family so CI can pin one stream while letting local runs explore.
#[must_use]
pub fn fault_recovery(
    config: &GpuConfig,
    exp: ExpConfig,
    fault_seed: u64,
) -> Vec<FaultRecoveryRow> {
    use flep_gpu_sim::FaultConfig;

    type FaultPreset = (&'static str, fn(FaultConfig) -> FaultConfig);
    let presets: [FaultPreset; 5] = [
        ("stuck_flag", |f| f.with_stuck_flag(1.0)),
        ("wedged_exit", |f| f.with_stuck_exit(1.0)),
        ("lost_doorbell", |f| f.with_signal_drop(1.0)),
        ("lost_notification", |f| f.with_note_drop(1.0)),
        ("launch_reject", |f| f.with_launch_reject(0.5)),
    ];
    let root = exp.seed ^ 0xFA_17;
    let run = |faults: Option<FaultConfig>, seed: u64| {
        let lo = KernelProfile::of(&Benchmark::get(BenchmarkId::Va), InputClass::Large);
        let hi = KernelProfile::of(&Benchmark::get(BenchmarkId::Spmv), InputClass::Small);
        let mut corun = CoRun::new(config.clone(), Policy::hpf())
            .job(
                JobSpec::new(lo, SimTime::ZERO)
                    .with_priority(1)
                    .with_seed(seed),
            )
            .job(
                JobSpec::new(hi, SimTime::from_us(200))
                    .with_priority(2)
                    .with_seed(seed ^ 0x5EED),
            );
        if let Some(f) = faults {
            corun = corun.with_faults(f);
        }
        corun.run()
    };
    let turnaround = |r: &CoRunResult| {
        r.jobs[1]
            .turnaround()
            .expect("fault-recovery co-run: the high-priority job must complete")
    };
    presets
        .iter()
        .enumerate()
        .map(|(p, (name, apply))| {
            let mut samples = Vec::new();
            let mut baselines = Vec::new();
            let mut recoveries = 0u64;
            let mut escalations = [0u64; 3];
            for rep in 0..exp.repeats {
                let seed = cell_seed(root, p, u64::from(rep));
                let faults = apply(FaultConfig::quiet(fault_seed.wrapping_add(seed)));
                let faulted = run(Some(faults), seed);
                samples.push(turnaround(&faulted));
                recoveries += faulted.recoveries.len() as u64;
                for (acc, n) in escalations.iter_mut().zip(faulted.escalations) {
                    *acc += n;
                }
                baselines.push(turnaround(&run(None, seed)));
            }
            samples.sort_unstable();
            baselines.sort_unstable();
            FaultRecoveryRow {
                preset: name,
                median: samples[samples.len() / 2],
                min: samples[0],
                max: *samples.last().unwrap(),
                baseline: baselines[baselines.len() / 2],
                recoveries,
                escalations,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// JSON serialization of every experiment's rows
// ---------------------------------------------------------------------------

use flep_sim_core::json::{JsonValue, ToJson};

impl ToJson for ExpConfig {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("seed", self.seed.to_json()),
            ("repeats", self.repeats.to_json()),
        ])
    }
}

impl ToJson for Table1Row {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("id", self.id.to_json()),
            ("suite", self.suite.to_json()),
            ("kernel_loc", self.kernel_loc.to_json()),
            ("large_us", self.large_us.to_json()),
            ("small_us", self.small_us.to_json()),
            ("trivial_us", self.trivial_us.to_json()),
            ("tuned_amortize", self.tuned_amortize.to_json()),
            ("paper_amortize", self.paper_amortize.to_json()),
        ])
    }
}

impl ToJson for PairResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("lo", self.lo.to_json()),
            ("hi", self.hi.to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

impl ToJson for DelayCurve {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("lo", self.lo.to_json()),
            ("hi", self.hi.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

impl ToJson for EqualPriorityRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("long", self.long.to_json()),
            ("short", self.short.to_json()),
            ("antt_improvement", self.antt_improvement.to_json()),
            ("stp_degradation", self.stp_degradation.to_json()),
        ])
    }
}

impl ToJson for TripletRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("triplet", self.triplet.to_json()),
            ("flep_improvement", self.flep_improvement.to_json()),
            ("reorder_improvement", self.reorder_improvement.to_json()),
        ])
    }
}

impl ToJson for SharePoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("at", self.at.to_json()),
            ("hi_mean", self.hi_mean.to_json()),
            ("hi_std", self.hi_std.to_json()),
            ("lo_mean", self.lo_mean.to_json()),
            ("lo_std", self.lo_std.to_json()),
        ])
    }
}

impl ToJson for FfsOutcome {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("share_curve", self.share_curve.to_json()),
            ("degradation", self.degradation.to_json()),
            ("max_overhead", self.max_overhead.to_json()),
        ])
    }
}

impl ToJson for SpatialRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("victim", self.victim.to_json()),
            ("temporal_overhead", self.temporal_overhead.to_json()),
            ("spatial_overhead", self.spatial_overhead.to_json()),
            ("reduction", self.reduction.to_json()),
        ])
    }
}

impl ToJson for SmSweepCurve {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("hi", self.hi.to_json()),
            ("victim", self.victim.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

impl ToJson for OverheadRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("id", self.id.to_json()),
            ("flep", self.flep.to_json()),
            ("slicing", self.slicing.to_json()),
        ])
    }
}

impl ToJson for LSweepRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("amortize", self.amortize.to_json()),
            ("overhead", self.overhead.to_json()),
            ("latency", self.latency.to_json()),
        ])
    }
}

impl ToJson for OverheadAwareAblation {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("preemptions_aware", self.preemptions_aware.to_json()),
            ("preemptions_naive", self.preemptions_naive.to_json()),
            ("makespan_aware", self.makespan_aware.to_json()),
            ("makespan_naive", self.makespan_naive.to_json()),
            ("waiting_aware", self.waiting_aware.to_json()),
            ("waiting_naive", self.waiting_naive.to_json()),
        ])
    }
}

impl ToJson for PollAblationRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("id", self.id.to_json()),
            ("broadcast", self.broadcast.to_json()),
            ("per_thread", self.per_thread.to_json()),
        ])
    }
}

impl ToJson for SensitivityRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("num_sms", self.num_sms.to_json()),
            ("mean_speedup", self.mean_speedup.to_json()),
            ("min_speedup", self.min_speedup.to_json()),
            ("max_speedup", self.max_speedup.to_json()),
        ])
    }
}

impl ToJson for FaultRecoveryRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("preset", self.preset.to_json()),
            ("median_ns", self.median.as_ns().to_json()),
            ("min_ns", self.min.as_ns().to_json()),
            ("max_ns", self.max.as_ns().to_json()),
            ("baseline_ns", self.baseline.as_ns().to_json()),
            ("recoveries", self.recoveries.to_json()),
            (
                "escalations",
                JsonValue::array(self.escalations.iter().map(|&n| n.to_json())),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_pairs_are_the_paper_28() {
        let pairs = priority_pairs();
        assert_eq!(pairs.len(), 28);
        // Victims are exactly CFD/NN/PF/PL, 7 pairs each, no self-pairs.
        for victim in [
            BenchmarkId::Cfd,
            BenchmarkId::Nn,
            BenchmarkId::Pf,
            BenchmarkId::Pl,
        ] {
            assert_eq!(pairs.iter().filter(|(lo, _)| *lo == victim).count(), 7);
        }
        assert!(pairs.iter().all(|(lo, hi)| lo != hi));
    }

    #[test]
    fn equal_priority_pairs_are_the_paper_28() {
        let pairs = equal_priority_pairs();
        assert_eq!(pairs.len(), 28);
        for short in [
            BenchmarkId::Md,
            BenchmarkId::Mm,
            BenchmarkId::Spmv,
            BenchmarkId::Va,
        ] {
            assert_eq!(pairs.iter().filter(|(_, s)| *s == short).count(), 7);
        }
        assert!(pairs.iter().all(|(long, short)| long != short));
    }

    #[test]
    fn triplets_are_28_distinct_and_deterministic() {
        let a = random_triplets(9);
        let b = random_triplets(9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 28);
        for (x, y, z) in &a {
            assert!(x != y && y != z && x != z, "triplet members must differ");
        }
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 28, "triplets must be unique");
    }

    #[test]
    fn standalone_matches_calibration() {
        let cfg = GpuConfig::k40();
        let t = standalone(&cfg, BenchmarkId::Mm, InputClass::Small, 3);
        let expected = Benchmark::get(BenchmarkId::Mm)
            .expected_standalone(InputClass::Small, 120)
            .as_us();
        let got = (t - cfg.launch_overhead).as_us();
        assert!(
            ((got - expected) / expected).abs() < 0.03,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn exp_config_quick_uses_one_repeat() {
        let q = ExpConfig::quick(5);
        assert_eq!(q.repeats, 1);
        assert_eq!(q.seed, 5);
        assert_eq!(ExpConfig::default().repeats, 3);
    }

    #[test]
    fn makespan_of_empty_result_is_zero() {
        let r = flep_runtime::CoRunResult {
            jobs: vec![],
            busy_spans: vec![],
            busy_totals: vec![],
            end_time: SimTime::from_us(5),
            swap_stats: None,
            errors: vec![],
            recoveries: vec![],
            faults: vec![],
            escalations: [0; 3],
        };
        assert_eq!(makespan(&r), SimTime::ZERO);
    }
}
