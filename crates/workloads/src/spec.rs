//! Benchmark specifications calibrated against Table 1 of the paper.
//!
//! Each benchmark carries, per input class, a task count and a per-task
//! base duration chosen so that the *standalone* execution time on the
//! simulated K40 (15 SMs, 120 active 256-thread CTAs) matches the paper's
//! Table 1 within a fraction of a percent. The amortizing factors in
//! [`Benchmark::table1_amortize`] are the paper's; the offline tuner in
//! `flep-compile` re-derives them from the <4% overhead rule (§4.1), and a
//! test asserts the two agree.

use flep_gpu_sim::{GridShape, LaunchDesc, ResourceUsage, TaskCost};
use flep_perfmodel::KernelFeatures;
use flep_sim_core::{SimRng, SimTime};

/// The eight evaluation benchmarks (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// Rodinia CFD: finite volume solver.
    Cfd,
    /// Rodinia NN: nearest neighbor.
    Nn,
    /// Rodinia PF (Pathfinder): dynamic programming.
    Pf,
    /// Rodinia PL (Particlefilter): Bayesian framework.
    Pl,
    /// SHOC MD: molecular dynamics.
    Md,
    /// SHOC SPMV: sparse matrix-vector multiply.
    Spmv,
    /// CUDA SDK MM: dense matrix multiplication.
    Mm,
    /// CUDA SDK VA: vector addition.
    Va,
}

impl BenchmarkId {
    /// All benchmarks in Table 1 order.
    pub const ALL: [BenchmarkId; 8] = [
        BenchmarkId::Cfd,
        BenchmarkId::Nn,
        BenchmarkId::Pf,
        BenchmarkId::Pl,
        BenchmarkId::Md,
        BenchmarkId::Spmv,
        BenchmarkId::Mm,
        BenchmarkId::Va,
    ];

    /// The short name used in the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkId::Cfd => "CFD",
            BenchmarkId::Nn => "NN",
            BenchmarkId::Pf => "PF",
            BenchmarkId::Pl => "PL",
            BenchmarkId::Md => "MD",
            BenchmarkId::Spmv => "SPMV",
            BenchmarkId::Mm => "MM",
            BenchmarkId::Va => "VA",
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl flep_sim_core::json::ToJson for BenchmarkId {
    fn to_json(&self) -> flep_sim_core::json::JsonValue {
        flep_sim_core::json::JsonValue::Str(self.name().to_string())
    }
}

/// The three input classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputClass {
    /// Needs all SMs; thousands of CTAs; long running.
    Large,
    /// Needs all SMs; short running.
    Small,
    /// Fewer CTAs than one SM-wave; used for spatial preemption (§6.1).
    Trivial,
}

impl InputClass {
    /// All classes in Table 1 column order.
    pub const ALL: [InputClass; 3] = [InputClass::Large, InputClass::Small, InputClass::Trivial];
}

/// Calibrated workload shape for one (benchmark, input class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputProfile {
    /// Number of tasks (original-kernel CTAs).
    pub tasks: u64,
    /// Mean per-task duration at full single-kernel occupancy.
    pub task_base: SimTime,
    /// Problem-size feature used by the performance model (element count).
    pub input_size: u64,
}

/// One benchmark's full specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// Originating suite, as in Table 1.
    pub suite: &'static str,
    /// One-line description, as in Table 1.
    pub description: &'static str,
    /// Lines of code in the kernel, as in Table 1.
    pub kernel_loc: u32,
    /// Per-CTA resource usage.
    pub resources: ResourceUsage,
    /// Contention-model slope (memory intensity); see
    /// `flep_gpu_sim::Sm::contention_factor`.
    pub mem_intensity: f64,
    /// Input-dependence of runtime behaviour, driving both per-invocation
    /// duration variability and the Fig. 7 prediction error. Regular
    /// kernels (NN, MM, VA) are low; SPMV/MD are high (§6.2).
    pub irregularity: f64,
    /// The amortizing factor reported in Table 1.
    pub table1_amortize: u32,
    /// Fixed per-task cost component, in nanoseconds. Per-task time is
    /// modelled as `alpha + (input_size / tasks)` ns (one element costs
    /// one nanosecond), which makes invocation duration exactly linear in
    /// the (grid size, input size) features the §4.2 model uses.
    pub alpha_ns: u64,
    profiles: [InputProfile; 3],
}

/// Per-task duration noise as a fraction of the invocation-level
/// irregularity: tasks within one run vary less than whole runs across
/// inputs do.
const TASK_NOISE_FRACTION: f64 = 0.3;

impl Benchmark {
    /// Looks up a benchmark spec.
    #[must_use]
    pub fn get(id: BenchmarkId) -> Benchmark {
        // Calibration: standalone time = ceil(tasks / 120) * task_base for
        // 120-CTA device capacity. Comments give the Table 1 target.
        let (suite, description, loc, amortize, mem, irr, alpha_ns, profiles) = match id {
            BenchmarkId::Cfd => (
                "Rodinia",
                "finite volume solver",
                130,
                1,
                0.6,
                0.10,
                26_000,
                [
                    // 11106us: 120 waves x 92.55us
                    profile(14_400, 92_550, 958_320_000),
                    // 521us: 10 waves x 52.1us
                    profile(1_200, 52_100, 31_320_000),
                    // 81us measured: one 40-CTA wave, task scaled up by the
                    // contention relief of 2-3 CTAs/SM (see the spec test)
                    profile(40, 99_400, 2_936_000),
                ],
            ),
            BenchmarkId::Nn => (
                "Rodinia",
                "nearest neighbor",
                10,
                100,
                1.6,
                0.034,
                1_315,
                [
                    // 15775us: 5998 waves x 2.63us
                    profile(719_760, 2_630, 946_484_400),
                    // 728us: 277 waves x 2.63us
                    profile(33_240, 2_630, 43_710_600),
                    // 55us: one 16-CTA wave (2 SMs) for Fig. 16
                    profile(16, 101_400, 1_601_360),
                ],
            ),
            BenchmarkId::Pf => (
                "Rodinia",
                "dynamic programming",
                81,
                150,
                0.5,
                0.09,
                1_200,
                [
                    // 7364us: 3068 waves x 2.4us
                    profile(368_160, 2_400, 441_792_000),
                    // 811us: 338 waves x 2.4us
                    profile(40_560, 2_400, 48_672_000),
                    // 57us
                    profile(40, 68_000, 2_672_000),
                ],
            ),
            BenchmarkId::Pl => (
                "Rodinia",
                "Bayesian framework",
                24,
                100,
                0.4,
                0.11,
                1_350,
                [
                    // 5419us: 2007 waves x 2.7us
                    profile(240_840, 2_700, 325_134_000),
                    // 952us: 353 waves x 2.7us -> 953.1us
                    profile(42_360, 2_700, 57_186_000),
                    // 83us
                    profile(40, 94_400, 3_722_000),
                ],
            ),
            BenchmarkId::Md => (
                "SHOC",
                "molecular dynamics",
                61,
                1,
                1.1,
                0.13,
                45_000,
                [
                    // 15905us: 120 waves x 132.54us -> 15904.8us
                    profile(14_400, 132_540, 1_260_576_000),
                    // 938us: 10 waves x 93.8us
                    profile(1_200, 93_800, 58_560_000),
                    // 90us: one 16-CTA wave (2 SMs) for Fig. 16
                    profile(16, 144_300, 1_588_800),
                ],
            ),
            BenchmarkId::Spmv => (
                "SHOC",
                "sparse matrix vector multi.",
                23,
                2,
                1.0,
                0.15,
                14_975,
                [
                    // 5840us: 195 waves x 29.95us -> 5840.25us
                    profile(23_400, 29_950, 350_415_000),
                    // 484us: 16 waves x 30.25us
                    profile(1_920, 30_250, 29_328_000),
                    // 68us
                    profile(40, 90_100, 3_005_000),
                ],
            ),
            BenchmarkId::Mm => (
                "CUDA SDK",
                "dense matrix multiplication",
                74,
                2,
                0.3,
                0.043,
                14_990,
                [
                    // 2579us: 86 waves x 29.99us -> 2579.1us
                    profile(10_320, 29_990, 154_800_000),
                    // 1499us: 50 waves x 29.98us
                    profile(6_000, 29_980, 89_940_000),
                    // 73us
                    profile(40, 83_000, 2_720_400),
                ],
            ),
            BenchmarkId::Va => (
                "CUDA SDK",
                "vector addition",
                6,
                200,
                1.2,
                0.035,
                1_130,
                [
                    // 30634us: 13555 waves x 2.26us -> 30634.3us
                    profile(1_626_600, 2_260, 1_838_058_000),
                    // 720us: 319 waves x 2.26us -> 720.9us
                    profile(38_280, 2_260, 43_256_400),
                    // 49us
                    profile(40, 72_700, 2_862_800),
                ],
            ),
        };
        // MM uses a 16x16 shared-memory tile pair (2 KiB); the rest use no
        // static shared memory. All use 256-thread CTAs with 32 regs/thread
        // => 8 CTAs/SM, i.e. the paper's "120 active CTAs".
        let resources = ResourceUsage {
            threads_per_cta: 256,
            regs_per_thread: 32,
            smem_per_cta: if id == BenchmarkId::Mm { 2048 } else { 0 },
        };
        Benchmark {
            id,
            suite,
            description,
            kernel_loc: loc,
            resources,
            mem_intensity: mem,
            irregularity: irr,
            table1_amortize: amortize,
            alpha_ns,
            profiles,
        }
    }

    /// All eight benchmark specs in Table 1 order.
    #[must_use]
    pub fn all() -> Vec<Benchmark> {
        BenchmarkId::ALL
            .iter()
            .map(|&id| Benchmark::get(id))
            .collect()
    }

    /// The calibrated profile for an input class.
    #[must_use]
    pub fn profile(&self, class: InputClass) -> InputProfile {
        match class {
            InputClass::Large => self.profiles[0],
            InputClass::Small => self.profiles[1],
            InputClass::Trivial => self.profiles[2],
        }
    }

    /// The expected standalone execution time of the *original* kernel:
    /// `ceil(tasks / capacity) * task_base` (kernel-body time, excluding
    /// launch overhead). Matches the corresponding Table 1 entry.
    #[must_use]
    pub fn expected_standalone(&self, class: InputClass, capacity: u64) -> SimTime {
        let p = self.profile(class);
        let waves = p.tasks.div_ceil(capacity.max(1));
        p.task_base * waves
    }

    /// The contention factor the *slowest* CTA of a sub-capacity grid
    /// sees when `tasks` CTAs spread across `num_sms` SMs (least-loaded
    /// placement): the paper's trivial-input standalone times include this
    /// relief, so trivial calibration targets `task_base * factor`.
    #[must_use]
    pub fn spread_contention_factor(&self, tasks: u64, num_sms: u32, threads_per_sm: u32) -> f64 {
        let per_sm = tasks.div_ceil(u64::from(num_sms.max(1)));
        let load =
            per_sm as f64 * f64::from(self.resources.threads_per_cta) / f64::from(threads_per_sm);
        let c = self.mem_intensity;
        // Normalized to full own-kernel occupancy (load 1.0 at 8x256/2048).
        (1.0 + c * load.min(1.0)) / (1.0 + c)
    }

    /// The per-task cost model for an input class.
    #[must_use]
    pub fn task_cost(&self, class: InputClass) -> TaskCost {
        TaskCost {
            base: self.profile(class).task_base,
            rel_noise: self.irregularity * TASK_NOISE_FRACTION,
        }
    }

    /// Launch descriptor for the *original* (untransformed) kernel.
    #[must_use]
    pub fn original_desc(&self, class: InputClass) -> LaunchDesc {
        let p = self.profile(class);
        LaunchDesc::new(
            format!("{}_{:?}", self.id.name(), class),
            GridShape::Original { ctas: p.tasks },
            self.task_cost(class),
        )
        .with_resources(self.resources)
        .with_mem_intensity(self.mem_intensity)
    }

    /// Launch descriptor for the FLEP persistent-threads form, using the
    /// given amortizing factor (pass [`Benchmark::table1_amortize`] for the
    /// paper's configuration).
    #[must_use]
    pub fn persistent_desc(&self, class: InputClass, amortize: u32) -> LaunchDesc {
        let p = self.profile(class);
        LaunchDesc::new(
            format!("{}_{:?}_flep", self.id.name(), class),
            GridShape::Persistent {
                total_tasks: p.tasks,
                amortize,
            },
            self.task_cost(class),
        )
        .with_resources(self.resources)
        .with_mem_intensity(self.mem_intensity)
    }

    /// The §4.2 model features of an invocation on a given input class.
    #[must_use]
    pub fn features(&self, class: InputClass) -> KernelFeatures {
        let p = self.profile(class);
        KernelFeatures {
            grid_size: p.tasks as f64,
            cta_size: f64::from(self.resources.threads_per_cta),
            input_size: p.input_size as f64,
            smem_size: f64::from(self.resources.smem_per_cta),
        }
    }

    /// Samples one random invocation for model training (§4.2 trains on
    /// "100 randomly generated data inputs"): a random grid scale in
    /// `[0.02, 1.5]` of the large input and a random elements-per-task
    /// density spanning the three calibrated input classes, with
    /// invocation-level duration noise proportional to the benchmark's
    /// irregularity.
    ///
    /// Returns the feature vector and the "measured" duration.
    pub fn random_invocation(&self, rng: &mut SimRng) -> (KernelFeatures, SimTime) {
        // Log-uniform grid scale: real input sizes span orders of
        // magnitude (the small inputs are 2-40x below the large ones), so
        // the training distribution must cover that range on both ends.
        let scale = (rng.uniform_f64((0.02f64).ln(), (1.5f64).ln())).exp();
        let large = self.profile(InputClass::Large);
        let tasks = ((large.tasks as f64 * scale) as u64).max(1);
        // Elements per task across the calibrated classes.
        let ratios: Vec<f64> = InputClass::ALL
            .iter()
            .map(|&c| {
                let p = self.profile(c);
                p.input_size as f64 / p.tasks as f64
            })
            .collect();
        let r_lo = ratios.iter().copied().fold(f64::INFINITY, f64::min) * 0.8;
        let r_hi = ratios.iter().copied().fold(0.0_f64, f64::max) * 1.2;
        let r = rng.uniform_f64(r_lo, r_hi);
        let input_size = (tasks as f64 * r) as u64;
        let features = KernelFeatures {
            grid_size: tasks as f64,
            cta_size: f64::from(self.resources.threads_per_cta),
            input_size: input_size as f64,
            smem_size: f64::from(self.resources.smem_per_cta),
        };
        // Smooth wave model: duration = tasks/capacity * (alpha + r) ns.
        let task_ns = self.alpha_ns as f64 + r;
        let duration_ns = tasks as f64 / 120.0 * task_ns;
        let duration =
            SimTime::from_ns(duration_ns.round() as u64).scale(rng.noise_factor(self.irregularity));
        (features, duration)
    }

    /// The "measured" duration of a run on a named input class, with fresh
    /// invocation-level noise: what a real experiment would observe.
    pub fn observed_duration(&self, class: InputClass, rng: &mut SimRng) -> SimTime {
        self.expected_standalone(class, 120)
            .scale(rng.noise_factor(self.irregularity))
    }
}

fn profile(tasks: u64, task_ns: u64, input_size: u64) -> InputProfile {
    InputProfile {
        tasks,
        task_base: SimTime::from_ns(task_ns),
        input_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1's execution-time columns, in microseconds.
    const TABLE1_US: [(BenchmarkId, f64, f64, f64); 8] = [
        (BenchmarkId::Cfd, 11106.0, 521.0, 81.0),
        (BenchmarkId::Nn, 15775.0, 728.0, 55.0),
        (BenchmarkId::Pf, 7364.0, 811.0, 57.0),
        (BenchmarkId::Pl, 5419.0, 952.0, 83.0),
        (BenchmarkId::Md, 15905.0, 938.0, 90.0),
        (BenchmarkId::Spmv, 5840.0, 484.0, 68.0),
        (BenchmarkId::Mm, 2579.0, 1499.0, 73.0),
        (BenchmarkId::Va, 30634.0, 720.0, 49.0),
    ];

    #[test]
    fn standalone_times_match_table1_within_half_percent() {
        for &(id, large, small, trivial) in &TABLE1_US {
            let b = Benchmark::get(id);
            for (class, target) in [
                (InputClass::Large, large),
                (InputClass::Small, small),
                (InputClass::Trivial, trivial),
            ] {
                // Trivial grids underfill the device, so the measured time
                // includes contention relief; large/small run at full
                // occupancy (factor 1).
                let factor = if class == InputClass::Trivial {
                    b.spread_contention_factor(b.profile(class).tasks, 15, 2048)
                } else {
                    1.0
                };
                let got = b.expected_standalone(class, 120).as_us() * factor;
                let err = (got - target).abs() / target;
                // Trivial grids additionally see a max-of-N noise bias in
                // measured makespans (compensated empirically in the task
                // bases), so the analytic check is looser there; the
                // measured check lives in the table1 experiment and the
                // calibration integration test.
                let tol = if class == InputClass::Trivial {
                    0.10
                } else {
                    0.005
                };
                assert!(
                    err < tol,
                    "{id} {class:?}: calibrated {got:.1}us vs Table 1 {target}us ({:.2}%)",
                    err * 100.0
                );
            }
        }
    }

    #[test]
    fn amortizing_factors_match_table1() {
        let expected = [1u32, 100, 150, 100, 1, 2, 2, 200];
        for (id, exp) in BenchmarkId::ALL.iter().zip(expected) {
            assert_eq!(Benchmark::get(*id).table1_amortize, exp, "{id}");
        }
    }

    #[test]
    fn large_and_small_inputs_need_all_sms() {
        for b in Benchmark::all() {
            assert!(
                b.profile(InputClass::Large).tasks >= 120,
                "{} large must fill the device",
                b.id
            );
            assert!(
                b.profile(InputClass::Small).tasks >= 120,
                "{} small must fill the device",
                b.id
            );
            assert!(
                b.profile(InputClass::Trivial).tasks < 120,
                "{} trivial must underfill the device",
                b.id
            );
        }
    }

    #[test]
    fn nn_and_md_trivial_need_two_sms() {
        // Fig. 16: "Both NN and MD need two SMs to host all CTAs."
        for id in [BenchmarkId::Nn, BenchmarkId::Md] {
            let b = Benchmark::get(id);
            assert_eq!(b.profile(InputClass::Trivial).tasks, 16, "{id}");
        }
    }

    #[test]
    fn regular_kernels_are_less_irregular_than_sparse_ones() {
        let nn = Benchmark::get(BenchmarkId::Nn).irregularity;
        let mm = Benchmark::get(BenchmarkId::Mm).irregularity;
        let va = Benchmark::get(BenchmarkId::Va).irregularity;
        let spmv = Benchmark::get(BenchmarkId::Spmv).irregularity;
        let md = Benchmark::get(BenchmarkId::Md).irregularity;
        for regular in [nn, mm, va] {
            assert!(regular < spmv && regular < md);
        }
    }

    #[test]
    fn all_benchmarks_have_120_cta_capacity() {
        use flep_gpu_sim::GpuConfig;
        let cfg = GpuConfig::k40();
        for b in Benchmark::all() {
            assert_eq!(
                cfg.device_capacity(&b.resources),
                120,
                "{} must match the paper's 120 active CTAs",
                b.id
            );
        }
    }

    #[test]
    fn descs_are_consistent_with_profiles() {
        let b = Benchmark::get(BenchmarkId::Spmv);
        let d = b.original_desc(InputClass::Small);
        assert_eq!(
            d.shape,
            GridShape::Original {
                ctas: b.profile(InputClass::Small).tasks
            }
        );
        let pd = b.persistent_desc(InputClass::Small, b.table1_amortize);
        assert_eq!(
            pd.shape,
            GridShape::Persistent {
                total_tasks: b.profile(InputClass::Small).tasks,
                amortize: 2
            }
        );
    }

    #[test]
    fn random_invocations_are_deterministic_per_seed() {
        let b = Benchmark::get(BenchmarkId::Cfd);
        let mut r1 = SimRng::seed_from(5);
        let mut r2 = SimRng::seed_from(5);
        assert_eq!(
            b.random_invocation(&mut r1).1,
            b.random_invocation(&mut r2).1
        );
    }

    #[test]
    fn kernel_loc_matches_table1() {
        assert_eq!(Benchmark::get(BenchmarkId::Cfd).kernel_loc, 130);
        assert_eq!(Benchmark::get(BenchmarkId::Va).kernel_loc, 6);
        assert_eq!(Benchmark::get(BenchmarkId::Nn).kernel_loc, 10);
    }
}
