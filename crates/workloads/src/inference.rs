//! The DL-inference serving mix: per-request cost models for the
//! multi-tenant serving frontend (`flep-serve`).
//!
//! The FLEP evaluation co-runs batch benchmarks; a serving frontend needs
//! request-granular kernels instead. Following the DL-inference
//! characterization literature (Shepherd-style serving stacks; Gilman &
//! Walls' GPU concurrency study), the mix spans four latency classes —
//! a sub-100µs recommendation model up to a near-millisecond generative
//! decoder — each with an SLO that is a small multiple of its standalone
//! latency. One *task* in the simulated grid is one *request*, so a batch
//! of `k` requests launches a persistent grid with `total_tasks = k` and
//! preemption keeps its task-granular resume semantics.

use flep_gpu_sim::ResourceUsage;
use flep_sim_core::SimTime;

/// The four serving models, in ascending per-request cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// Recommendation CTR model (DLRM-style): tiny per-request cost,
    /// tight SLO, embedding-lookup memory traffic.
    Dlrm,
    /// Image classifier (ResNet-50-style): small per-request cost.
    Resnet,
    /// Encoder QA model (BERT-base-style): medium per-request cost.
    Bert,
    /// Generative decoder (GPT-2-style): large per-request cost, loose
    /// SLO, irregular per-request durations (output-length variance).
    Gpt2,
}

impl ModelId {
    /// All models, ascending per-request cost.
    pub const ALL: [ModelId; 4] = [ModelId::Dlrm, ModelId::Resnet, ModelId::Bert, ModelId::Gpt2];

    /// Short stable name (used in reports and golden traces).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ModelId::Dlrm => "dlrm",
            ModelId::Resnet => "resnet50",
            ModelId::Bert => "bert-qa",
            ModelId::Gpt2 => "gpt2-gen",
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl flep_sim_core::json::ToJson for ModelId {
    fn to_json(&self) -> flep_sim_core::json::JsonValue {
        flep_sim_core::json::JsonValue::Str(self.name().to_string())
    }
}

/// The serving-relevant cost model of one deployed inference model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceModel {
    /// Which model.
    pub id: ModelId,
    /// GPU time of one request (one task) at full single-kernel occupancy.
    pub unit_cost: SimTime,
    /// Relative per-request duration noise (generative models vary with
    /// output length; classifiers barely vary).
    pub rel_noise: f64,
    /// Per-CTA resource usage of the serving kernel.
    pub resources: ResourceUsage,
    /// Contention-model slope (embedding lookups are memory-bound).
    pub mem_intensity: f64,
    /// Tasks per persistent-CTA batch pull — the preemption granularity
    /// chosen by the <4% overhead rule, exactly as for the Table 1 mix.
    pub amortize: u32,
    /// Default latency SLO: a request completing later counts against
    /// goodput. A small multiple of the standalone latency, tighter (in
    /// multiples) for the cheaper interactive models.
    pub slo: SimTime,
}

impl InferenceModel {
    /// The calibrated spec of one model.
    #[must_use]
    pub fn get(id: ModelId) -> InferenceModel {
        match id {
            ModelId::Dlrm => InferenceModel {
                id,
                unit_cost: SimTime::from_us(45),
                rel_noise: 0.05,
                resources: ResourceUsage::typical_256(),
                mem_intensity: 0.5,
                amortize: 8,
                slo: SimTime::from_ms(5),
            },
            ModelId::Resnet => InferenceModel {
                id,
                unit_cost: SimTime::from_us(120),
                rel_noise: 0.02,
                resources: ResourceUsage::typical_256(),
                mem_intensity: 0.2,
                amortize: 4,
                slo: SimTime::from_ms(10),
            },
            ModelId::Bert => InferenceModel {
                id,
                unit_cost: SimTime::from_us(350),
                rel_noise: 0.03,
                resources: ResourceUsage::typical_256(),
                mem_intensity: 0.3,
                amortize: 2,
                slo: SimTime::from_ms(25),
            },
            ModelId::Gpt2 => InferenceModel {
                id,
                unit_cost: SimTime::from_us(900),
                rel_noise: 0.08,
                resources: ResourceUsage::typical_256(),
                mem_intensity: 0.35,
                amortize: 1,
                slo: SimTime::from_ms(60),
            },
        }
    }

    /// The full mix in [`ModelId::ALL`] order.
    #[must_use]
    pub fn mix() -> [InferenceModel; 4] {
        ModelId::ALL.map(InferenceModel::get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_ordered_by_unit_cost_and_slo() {
        let mix = InferenceModel::mix();
        for pair in mix.windows(2) {
            assert!(pair[0].unit_cost < pair[1].unit_cost);
            assert!(pair[0].slo < pair[1].slo, "tighter SLO for cheaper model");
        }
    }

    #[test]
    fn slos_leave_headroom_over_standalone_latency() {
        // An SLO below the standalone batch-1 latency would be
        // unservable; each model's SLO is at least 10x its unit cost.
        for m in InferenceModel::mix() {
            assert!(m.slo.as_ns() >= 10 * m.unit_cost.as_ns(), "{}", m.id);
        }
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = ModelId::ALL.iter().map(ModelId::name).collect();
        assert_eq!(names, ["dlrm", "resnet50", "bert-qa", "gpt2-gen"]);
    }
}
