//! Mini-CU source code for each benchmark kernel plus a host driver.
//!
//! These are the inputs to the FLEP compilation engine in tests and
//! examples: each source parses, analyzes cleanly, and contains exactly one
//! `__global__` kernel and one host launch site. The bodies are faithful
//! *sketches* of the real Rodinia/SHOC/SDK kernels — same data-access
//! structure and control flow shape — sized so the paper's lines-of-code
//! contrast (VA's 6-line loop-free kernel vs CFD's 130-line solver) is
//! visible to the resource estimator and the transform passes.

use crate::spec::BenchmarkId;

/// The mini-CU source for a benchmark: one kernel plus one host driver
/// containing the launch statement FLEP intercepts.
#[must_use]
pub fn source(id: BenchmarkId) -> &'static str {
    match id {
        BenchmarkId::Va => VA,
        BenchmarkId::Nn => NN,
        BenchmarkId::Mm => MM,
        BenchmarkId::Spmv => SPMV,
        BenchmarkId::Pf => PF,
        BenchmarkId::Pl => PL,
        BenchmarkId::Md => MD,
        BenchmarkId::Cfd => CFD,
    }
}

/// The kernel's name inside [`source`].
#[must_use]
pub fn kernel_name(id: BenchmarkId) -> &'static str {
    match id {
        BenchmarkId::Va => "vec_add",
        BenchmarkId::Nn => "nearest_neighbor",
        BenchmarkId::Mm => "matrix_mul",
        BenchmarkId::Spmv => "spmv_csr",
        BenchmarkId::Pf => "pathfinder_row",
        BenchmarkId::Pl => "particle_likelihood",
        BenchmarkId::Md => "md_forces",
        BenchmarkId::Cfd => "cfd_flux",
    }
}

const VA: &str = r#"
__global__ void vec_add(float* a, float* b, float* c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
void va_main(float* a, float* b, float* c, int n) {
    vec_add<<<n / 256 + 1, 256>>>(a, b, c, n);
}
"#;

const NN: &str = r#"
__global__ void nearest_neighbor(float* locations, float* distances, float lat, float lng, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float dx = locations[2 * i] - lat;
        float dy = locations[2 * i + 1] - lng;
        distances[i] = dx * dx + dy * dy;
    }
}
void nn_main(float* locations, float* distances, float lat, float lng, int n) {
    nearest_neighbor<<<n / 256 + 1, 256>>>(locations, distances, lat, lng, n);
}
"#;

const MM: &str = r#"
__global__ void matrix_mul(float* a, float* b, float* c, int wa, int wb) {
    __shared__ float tile_a[256];
    __shared__ float tile_b[256];
    int bx = blockIdx.x;
    int tx = threadIdx.x;
    int row = tx / 16;
    int col = tx % 16;
    float acc = 0.0f;
    int steps = wa / 16;
    for (int s = 0; s < steps; ++s) {
        tile_a[tx] = a[(bx / (wb / 16)) * 16 * wa + row * wa + s * 16 + col];
        tile_b[tx] = b[(s * 16 + row) * wb + (bx % (wb / 16)) * 16 + col];
        __syncthreads();
        for (int k = 0; k < 16; ++k) {
            acc += tile_a[row * 16 + k] * tile_b[k * 16 + col];
        }
        __syncthreads();
    }
    c[(bx / (wb / 16)) * 16 * wb + row * wb + (bx % (wb / 16)) * 16 + col] = acc;
}
void mm_main(float* a, float* b, float* c, int wa, int wb) {
    matrix_mul<<<wa * wb / 256, 256>>>(a, b, c, wa, wb);
}
"#;

const SPMV: &str = r#"
__global__ void spmv_csr(float* vals, int* cols, int* row_ptr, float* x, float* y, int rows) {
    int r = blockIdx.x * blockDim.x + threadIdx.x;
    if (r < rows) {
        float acc = 0.0f;
        int start = row_ptr[r];
        int end = row_ptr[r + 1];
        for (int j = start; j < end; ++j) {
            acc += vals[j] * x[cols[j]];
        }
        y[r] = acc;
    }
}
void spmv_main(float* vals, int* cols, int* row_ptr, float* x, float* y, int rows) {
    spmv_csr<<<rows / 256 + 1, 256>>>(vals, cols, row_ptr, x, y, rows);
}
"#;

const PF: &str = r#"
__global__ void pathfinder_row(int* wall, int* src, int* dst, int cols, int t) {
    __shared__ int prev[256];
    __shared__ int cur[256];
    int tx = threadIdx.x;
    int x = blockIdx.x * blockDim.x + tx;
    if (x < cols) {
        prev[tx] = src[x];
    }
    __syncthreads();
    if (x < cols) {
        int left = prev[tx];
        if (tx > 0) {
            int l = prev[tx - 1];
            if (l < left) left = l;
        }
        if (tx < 255) {
            int r = prev[tx + 1];
            if (r < left) left = r;
        }
        cur[tx] = left + wall[t * cols + x];
        dst[x] = cur[tx];
    }
}
void pf_main(int* wall, int* src, int* dst, int cols, int t) {
    pathfinder_row<<<cols / 256 + 1, 256>>>(wall, src, dst, cols, t);
}
"#;

const PL: &str = r#"
__global__ void particle_likelihood(float* particles, float* weights, float* obs, int n, int frame) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float px = particles[2 * i];
        float py = particles[2 * i + 1];
        float ox = obs[2 * frame];
        float oy = obs[2 * frame + 1];
        float dx = px - ox;
        float dy = py - oy;
        float dist = dx * dx + dy * dy;
        weights[i] = (dist < 1.0f) ? (1.0f - dist) : 0.0f;
    }
}
void pl_main(float* particles, float* weights, float* obs, int n, int frame) {
    particle_likelihood<<<n / 256 + 1, 256>>>(particles, weights, obs, n, frame);
}
"#;

const MD: &str = r#"
__global__ void md_forces(float* pos, float* force, int* neighbors, int n, int max_neighbors, float cutoff) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float xi = pos[3 * i];
        float yi = pos[3 * i + 1];
        float zi = pos[3 * i + 2];
        float fx = 0.0f;
        float fy = 0.0f;
        float fz = 0.0f;
        for (int j = 0; j < max_neighbors; ++j) {
            int nb = neighbors[i * max_neighbors + j];
            float dx = pos[3 * nb] - xi;
            float dy = pos[3 * nb + 1] - yi;
            float dz = pos[3 * nb + 2] - zi;
            float r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < cutoff) {
                float inv = 1.0f / (r2 + 0.001f);
                float inv3 = inv * inv * inv;
                float s = inv3 * (inv3 - 0.5f) * inv;
                fx += dx * s;
                fy += dy * s;
                fz += dz * s;
            }
        }
        force[3 * i] = fx;
        force[3 * i + 1] = fy;
        force[3 * i + 2] = fz;
    }
}
void md_main(float* pos, float* force, int* neighbors, int n, int max_neighbors, float cutoff) {
    md_forces<<<n / 256 + 1, 256>>>(pos, force, neighbors, n, max_neighbors, cutoff);
}
"#;

const CFD: &str = r#"
__global__ void cfd_flux(float* density, float* momentum_x, float* momentum_y, float* momentum_z, float* energy, float* fluxes, int* neighbors, float* normals, int n_cells) {
    int cell = blockIdx.x * blockDim.x + threadIdx.x;
    if (cell < n_cells) {
        float d = density[cell];
        float mx = momentum_x[cell];
        float my = momentum_y[cell];
        float mz = momentum_z[cell];
        float e = energy[cell];
        float inv_d = 1.0f / d;
        float vx = mx * inv_d;
        float vy = my * inv_d;
        float vz = mz * inv_d;
        float speed2 = vx * vx + vy * vy + vz * vz;
        float pressure = 0.4f * (e - 0.5f * d * speed2);
        float flux_d = 0.0f;
        float flux_mx = 0.0f;
        float flux_my = 0.0f;
        float flux_mz = 0.0f;
        float flux_e = 0.0f;
        for (int f = 0; f < 4; ++f) {
            int nb = neighbors[cell * 4 + f];
            float nx = normals[(cell * 4 + f) * 3];
            float ny = normals[(cell * 4 + f) * 3 + 1];
            float nz = normals[(cell * 4 + f) * 3 + 2];
            if (nb >= 0) {
                float dn = density[nb];
                float mxn = momentum_x[nb];
                float myn = momentum_y[nb];
                float mzn = momentum_z[nb];
                float en = energy[nb];
                float inv_dn = 1.0f / dn;
                float vxn = mxn * inv_dn;
                float vyn = myn * inv_dn;
                float vzn = mzn * inv_dn;
                float sp2n = vxn * vxn + vyn * vyn + vzn * vzn;
                float pn = 0.4f * (en - 0.5f * dn * sp2n);
                float vel_face = 0.5f * (vx * nx + vy * ny + vz * nz + vxn * nx + vyn * ny + vzn * nz);
                float p_face = 0.5f * (pressure + pn);
                flux_d += vel_face * 0.5f * (d + dn);
                flux_mx += vel_face * 0.5f * (mx + mxn) + p_face * nx;
                flux_my += vel_face * 0.5f * (my + myn) + p_face * ny;
                flux_mz += vel_face * 0.5f * (mz + mzn) + p_face * nz;
                flux_e += vel_face * 0.5f * (e + en + pressure + pn);
            } else {
                flux_mx += pressure * nx;
                flux_my += pressure * ny;
                flux_mz += pressure * nz;
            }
        }
        fluxes[cell * 5] = flux_d;
        fluxes[cell * 5 + 1] = flux_mx;
        fluxes[cell * 5 + 2] = flux_my;
        fluxes[cell * 5 + 3] = flux_mz;
        fluxes[cell * 5 + 4] = flux_e;
    }
}
void cfd_main(float* density, float* momentum_x, float* momentum_y, float* momentum_z, float* energy, float* fluxes, int* neighbors, float* normals, int n_cells) {
    cfd_flux<<<n_cells / 256 + 1, 256>>>(density, momentum_x, momentum_y, momentum_z, energy, fluxes, neighbors, normals, n_cells);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use flep_minicu::{analyze, parse};

    #[test]
    fn every_source_type_checks() {
        for id in BenchmarkId::ALL {
            let program = parse(source(id)).unwrap_or_else(|e| panic!("{id}: {e}"));
            flep_minicu::type_check(&program).unwrap_or_else(|e| panic!("{id}: {e}"));
        }
    }

    #[test]
    fn every_source_parses_and_analyzes() {
        for id in BenchmarkId::ALL {
            let program = parse(source(id)).unwrap_or_else(|e| panic!("{id}: {e}"));
            let info = analyze(&program).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert_eq!(info.kernels.len(), 1, "{id} must define one kernel");
            assert_eq!(info.launches.len(), 1, "{id} must have one launch site");
            assert_eq!(info.kernels[0].name, kernel_name(id), "{id}");
        }
    }

    #[test]
    fn kernel_sizes_follow_table1_ordering() {
        // VA is the smallest kernel, CFD the largest (Table 1 LoC column).
        let count = |id: BenchmarkId| {
            let program = parse(source(id)).unwrap();
            let info = analyze(&program).unwrap();
            info.kernels[0].body_statements
        };
        let va = count(BenchmarkId::Va);
        let nn = count(BenchmarkId::Nn);
        let cfd = count(BenchmarkId::Cfd);
        let md = count(BenchmarkId::Md);
        assert!(va <= nn, "VA ({va}) should be smallest vs NN ({nn})");
        assert!(md < cfd, "MD ({md}) < CFD ({cfd})");
        assert!(va < cfd, "VA ({va}) < CFD ({cfd})");
    }

    #[test]
    fn va_kernel_is_loop_free_and_cfd_has_loops() {
        let va = parse(source(BenchmarkId::Va)).unwrap();
        assert!(!analyze(&va).unwrap().kernels[0].has_loop);
        let cfd = parse(source(BenchmarkId::Cfd)).unwrap();
        assert!(analyze(&cfd).unwrap().kernels[0].has_loop);
    }

    #[test]
    fn mm_uses_shared_memory() {
        use flep_minicu::estimate_resources;
        let p = parse(source(BenchmarkId::Mm)).unwrap();
        let k = p.function(kernel_name(BenchmarkId::Mm)).unwrap();
        assert_eq!(estimate_resources(k).smem_per_cta, 2048);
    }

    #[test]
    fn sources_round_trip_through_printer() {
        for id in BenchmarkId::ALL {
            let p1 = parse(source(id)).unwrap();
            let printed = p1.to_string();
            let p2 = parse(&printed).unwrap_or_else(|e| panic!("{id}: {e}\n{printed}"));
            assert_eq!(p1, p2, "{id}");
        }
    }
}
