//! Functional workload bodies: real computations whose tasks map 1:1 onto
//! simulated CTAs, so tests can assert that FLEP-transformed, preempted,
//! and resumed executions compute *exactly* the same results as an
//! uninterrupted original run.
//!
//! Each job exposes `task_fn()`, a closure suitable for
//! `flep_gpu_sim::LaunchDesc::with_task_fn`, plus an `expected()` oracle
//! computed directly on the host.

use std::sync::{Arc, Mutex};

/// A vector addition `c = a + b` split into 256-element tasks (the VA
/// benchmark's CTA granularity).
#[derive(Debug, Clone)]
pub struct VectorAddJob {
    a: Arc<Vec<f32>>,
    b: Arc<Vec<f32>>,
    c: Arc<Mutex<Vec<f32>>>,
    chunk: usize,
}

impl VectorAddJob {
    /// Creates a job over deterministic pseudo-data of length `n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let a: Vec<f32> = (0..n).map(|i| (i % 1000) as f32 * 0.5).collect();
        let b: Vec<f32> = (0..n).map(|i| (i % 777) as f32 * 0.25).collect();
        VectorAddJob {
            a: Arc::new(a),
            b: Arc::new(b),
            c: Arc::new(Mutex::new(vec![0.0; n])),
            chunk: 256,
        }
    }

    /// Number of tasks (CTAs) the job needs.
    #[must_use]
    pub fn num_tasks(&self) -> u64 {
        (self.a.len().div_ceil(self.chunk)) as u64
    }

    /// The per-task body: task `t` computes elements `[t*256, (t+1)*256)`.
    #[must_use]
    pub fn task_fn(&self) -> Box<dyn FnMut(u64) + Send> {
        let a = Arc::clone(&self.a);
        let b = Arc::clone(&self.b);
        let c = Arc::clone(&self.c);
        let chunk = self.chunk;
        Box::new(move |task| {
            let start = task as usize * chunk;
            let end = (start + chunk).min(a.len());
            let mut out = c.lock().expect("poisoned result buffer");
            for i in start..end {
                out[i] = a[i] + b[i];
            }
        })
    }

    /// The host-computed oracle.
    #[must_use]
    pub fn expected(&self) -> Vec<f32> {
        self.a
            .iter()
            .zip(self.b.iter())
            .map(|(x, y)| x + y)
            .collect()
    }

    /// The result buffer as computed so far.
    #[must_use]
    pub fn result(&self) -> Vec<f32> {
        self.c.lock().expect("poisoned result buffer").clone()
    }
}

/// Dense square matrix multiplication `C = A × B` with one 16×16 output
/// tile per task (the MM benchmark's CTA granularity).
#[derive(Debug, Clone)]
pub struct MatMulJob {
    a: Arc<Vec<f32>>,
    b: Arc<Vec<f32>>,
    c: Arc<Mutex<Vec<f32>>>,
    n: usize,
    tile: usize,
}

impl MatMulJob {
    /// Creates an `n × n` job; `n` must be a multiple of 16.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 16.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(16),
            "matrix size must be a multiple of 16"
        );
        let a: Vec<f32> = (0..n * n).map(|i| ((i % 13) as f32) - 6.0).collect();
        let b: Vec<f32> = (0..n * n).map(|i| ((i % 7) as f32) * 0.5).collect();
        MatMulJob {
            a: Arc::new(a),
            b: Arc::new(b),
            c: Arc::new(Mutex::new(vec![0.0; n * n])),
            n,
            tile: 16,
        }
    }

    /// Number of 16×16 output tiles.
    #[must_use]
    pub fn num_tasks(&self) -> u64 {
        let tiles = self.n / self.tile;
        (tiles * tiles) as u64
    }

    /// The per-task body: task `t` computes output tile
    /// `(t / tiles, t % tiles)`.
    #[must_use]
    pub fn task_fn(&self) -> Box<dyn FnMut(u64) + Send> {
        let a = Arc::clone(&self.a);
        let b = Arc::clone(&self.b);
        let c = Arc::clone(&self.c);
        let n = self.n;
        let tile = self.tile;
        Box::new(move |task| {
            let tiles = n / tile;
            let tr = task as usize / tiles;
            let tc = task as usize % tiles;
            let mut out = c.lock().expect("poisoned result buffer");
            for r in tr * tile..(tr + 1) * tile {
                for col in tc * tile..(tc + 1) * tile {
                    let mut acc = 0.0f32;
                    for k in 0..n {
                        acc += a[r * n + k] * b[k * n + col];
                    }
                    out[r * n + col] = acc;
                }
            }
        })
    }

    /// The host-computed oracle.
    #[must_use]
    pub fn expected(&self) -> Vec<f32> {
        let n = self.n;
        let mut out = vec![0.0f32; n * n];
        for r in 0..n {
            for c in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += self.a[r * n + k] * self.b[k * n + c];
                }
                out[r * n + c] = acc;
            }
        }
        out
    }

    /// The result buffer as computed so far.
    #[must_use]
    pub fn result(&self) -> Vec<f32> {
        self.c.lock().expect("poisoned result buffer").clone()
    }
}

/// Nearest-neighbor distance computation: each task scores a 256-point
/// chunk against a query (the NN benchmark's CTA granularity).
#[derive(Debug, Clone)]
pub struct NearestNeighborJob {
    points: Arc<Vec<(f32, f32)>>,
    distances: Arc<Mutex<Vec<f32>>>,
    query: (f32, f32),
    chunk: usize,
}

impl NearestNeighborJob {
    /// Creates a job over `n` deterministic pseudo-random points.
    #[must_use]
    pub fn new(n: usize, query: (f32, f32)) -> Self {
        let points: Vec<(f32, f32)> = (0..n)
            .map(|i| {
                let x = ((i * 37) % 1000) as f32 / 10.0;
                let y = ((i * 91) % 1000) as f32 / 10.0;
                (x, y)
            })
            .collect();
        NearestNeighborJob {
            points: Arc::new(points),
            distances: Arc::new(Mutex::new(vec![f32::INFINITY; n])),
            query,
            chunk: 256,
        }
    }

    /// Number of tasks.
    #[must_use]
    pub fn num_tasks(&self) -> u64 {
        (self.points.len().div_ceil(self.chunk)) as u64
    }

    /// The per-task body.
    #[must_use]
    pub fn task_fn(&self) -> Box<dyn FnMut(u64) + Send> {
        let points = Arc::clone(&self.points);
        let distances = Arc::clone(&self.distances);
        let (qx, qy) = self.query;
        let chunk = self.chunk;
        Box::new(move |task| {
            let start = task as usize * chunk;
            let end = (start + chunk).min(points.len());
            let mut out = distances.lock().expect("poisoned result buffer");
            for i in start..end {
                let (x, y) = points[i];
                out[i] = (x - qx) * (x - qx) + (y - qy) * (y - qy);
            }
        })
    }

    /// Indices of the `k` nearest points according to the computed buffer.
    #[must_use]
    pub fn k_nearest(&self, k: usize) -> Vec<usize> {
        let d = self.distances.lock().expect("poisoned result buffer");
        let mut idx: Vec<usize> = (0..d.len()).collect();
        idx.sort_by(|&a, &b| d[a].total_cmp(&d[b]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    /// Host-computed oracle for the `k` nearest points.
    #[must_use]
    pub fn expected_k_nearest(&self, k: usize) -> Vec<usize> {
        let (qx, qy) = self.query;
        let d: Vec<f32> = self
            .points
            .iter()
            .map(|&(x, y)| (x - qx) * (x - qx) + (y - qy) * (y - qy))
            .collect();
        let mut idx: Vec<usize> = (0..d.len()).collect();
        idx.sort_by(|&a, &b| d[a].total_cmp(&d[b]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_add_tasks_cover_exactly_once() {
        let job = VectorAddJob::new(1000);
        assert_eq!(job.num_tasks(), 4);
        let mut f = job.task_fn();
        for t in 0..job.num_tasks() {
            f(t);
        }
        assert_eq!(job.result(), job.expected());
    }

    #[test]
    fn vector_add_partial_execution_leaves_zeros() {
        let job = VectorAddJob::new(512);
        let mut f = job.task_fn();
        f(0); // only the first 256 elements
        let r = job.result();
        assert_eq!(r[..256], job.expected()[..256]);
        assert!(r[256..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_matches_oracle() {
        let job = MatMulJob::new(32);
        assert_eq!(job.num_tasks(), 4);
        let mut f = job.task_fn();
        for t in 0..job.num_tasks() {
            f(t);
        }
        assert_eq!(job.result(), job.expected());
    }

    #[test]
    fn matmul_task_order_is_irrelevant() {
        let job = MatMulJob::new(32);
        let mut f = job.task_fn();
        for t in (0..job.num_tasks()).rev() {
            f(t);
        }
        assert_eq!(job.result(), job.expected());
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn matmul_rejects_bad_sizes() {
        let _ = MatMulJob::new(30);
    }

    #[test]
    fn nearest_neighbor_top_k_matches_oracle() {
        let job = NearestNeighborJob::new(2048, (50.0, 50.0));
        let mut f = job.task_fn();
        for t in 0..job.num_tasks() {
            f(t);
        }
        assert_eq!(job.k_nearest(10), job.expected_k_nearest(10));
    }
}
