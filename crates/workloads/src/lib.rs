//! The eight FLEP evaluation benchmarks (Table 1 of the paper): calibrated
//! cost models, mini-CU kernel sources, and functional bodies.
//!
//! Three views of each benchmark:
//!
//! * **Timing spec** ([`Benchmark`]) — per input class (large / small /
//!   trivial), a task count and per-task duration calibrated so standalone
//!   runs on the simulated K40 reproduce Table 1's execution times; plus
//!   the memory-intensity and irregularity knobs the evaluation shapes
//!   depend on.
//! * **Source** ([`source`]) — a mini-CU translation unit per benchmark
//!   (kernel + host launch), the input to the FLEP compilation engine.
//! * **Functional body** ([`VectorAddJob`], [`MatMulJob`],
//!   [`NearestNeighborJob`]) — real computations keyed by task index, used
//!   to prove preempt/resume correctness end-to-end.
//!
//! # Example
//!
//! ```
//! use flep_workloads::{Benchmark, BenchmarkId, InputClass};
//!
//! let nn = Benchmark::get(BenchmarkId::Nn);
//! // Table 1: NN runs the large input in 15775us standalone.
//! let t = nn.expected_standalone(InputClass::Large, 120);
//! assert!((t.as_us() - 15_775.0).abs() / 15_775.0 < 0.005);
//! assert_eq!(nn.table1_amortize, 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod functional;
mod inference;
mod sources;
mod spec;

pub use functional::{MatMulJob, NearestNeighborJob, VectorAddJob};
pub use inference::{InferenceModel, ModelId};
pub use sources::{kernel_name, source};
pub use spec::{Benchmark, BenchmarkId, InputClass, InputProfile};
