//! Integration tests for the GPU device model: dispatcher semantics,
//! preemption, resume correctness, and the contention model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flep_gpu_sim::{
    run_single, GpuConfig, GridShape, LaunchDesc, PreemptSignal, ResourceUsage, Scenario, TaskCost,
};
use flep_sim_core::SimTime;

fn fixed(us: u64) -> TaskCost {
    TaskCost::fixed(SimTime::from_us(us))
}

/// A zero-overhead config so timing assertions are exact.
fn clean_k40() -> GpuConfig {
    GpuConfig {
        launch_overhead: SimTime::ZERO,
        poll_cost: SimTime::ZERO,
        pull_cost: SimTime::ZERO,
        flag_visibility_latency: SimTime::ZERO,
        ..GpuConfig::k40()
    }
}

#[test]
fn original_kernel_runs_in_waves() {
    // 360 CTAs at 120 device capacity = 3 waves of 50us.
    let t = run_single(
        clean_k40(),
        LaunchDesc::new("waves", GridShape::Original { ctas: 360 }, fixed(50)),
    );
    assert_eq!(t, SimTime::from_us(150));
}

#[test]
fn launch_overhead_delays_dispatch() {
    let cfg = GpuConfig {
        launch_overhead: SimTime::from_us(8),
        ..clean_k40()
    };
    let mut sc = Scenario::new(cfg);
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new("k", GridShape::Original { ctas: 1 }, fixed(10)).with_tag(1),
    );
    let res = sc.run();
    let rec = &res.records[&1];
    assert_eq!(rec.queue_delay().unwrap(), SimTime::from_us(8));
    assert_eq!(rec.turnaround().unwrap(), SimTime::from_us(18));
}

#[test]
fn head_of_line_blocking_delays_second_kernel() {
    // K1: 240 CTAs of 100us (2 full waves). K2 launched right after: its
    // first CTA cannot dispatch until K1's last CTA is dispatched at t=100.
    let mut sc = Scenario::new(clean_k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new("k1", GridShape::Original { ctas: 240 }, fixed(100)).with_tag(1),
    );
    sc.launch_at(
        SimTime::from_us(1),
        LaunchDesc::new("k2", GridShape::Original { ctas: 1 }, fixed(10)).with_tag(2),
    );
    let res = sc.run();
    let k2 = &res.records[&2];
    // K1's wave 1 ends at t=100; K1 wave 2 dispatches, leaving no slots.
    // But K1 then has zero pending CTAs, so K2 backfills... only if a slot
    // is free. All 120 slots are taken by K1's wave 2, so K2 waits until
    // t=200.
    assert_eq!(k2.dispatch_started.unwrap(), SimTime::from_us(200));
}

#[test]
fn mps_backfill_uses_leftover_resources() {
    // K1: 130 CTAs -> wave 1 = 120, wave 2 = 10 CTAs. Once K1 is fully
    // dispatched at t=100, K2's CTAs backfill the 110 free slots.
    let mut sc = Scenario::new(clean_k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new("k1", GridShape::Original { ctas: 130 }, fixed(100)).with_tag(1),
    );
    sc.launch_at(
        SimTime::from_us(1),
        LaunchDesc::new("k2", GridShape::Original { ctas: 10 }, fixed(10)).with_tag(2),
    );
    let res = sc.run();
    let k2 = &res.records[&2];
    assert_eq!(k2.dispatch_started.unwrap(), SimTime::from_us(100));
    assert_eq!(k2.completed_at.unwrap(), SimTime::from_us(110));
}

#[test]
fn small_corun_shares_device_without_blocking() {
    // Two small kernels that together fit: the second starts immediately.
    let mut sc = Scenario::new(clean_k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new("a", GridShape::Original { ctas: 40 }, fixed(100)).with_tag(1),
    );
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new("b", GridShape::Original { ctas: 40 }, fixed(100)).with_tag(2),
    );
    let res = sc.run();
    assert_eq!(res.records[&2].dispatch_started.unwrap(), SimTime::ZERO);
}

#[test]
fn persistent_kernel_completes_all_tasks() {
    // 600 tasks on 120 persistent CTAs, 5 tasks each.
    let t = run_single(
        clean_k40(),
        LaunchDesc::new(
            "pt",
            GridShape::Persistent {
                total_tasks: 600,
                amortize: 1,
            },
            fixed(10),
        ),
    );
    assert_eq!(t, SimTime::from_us(50));
}

#[test]
fn persistent_kernel_with_fewer_tasks_than_capacity() {
    let t = run_single(
        clean_k40(),
        LaunchDesc::new(
            "small",
            GridShape::Persistent {
                total_tasks: 40,
                amortize: 1,
            },
            fixed(10),
        ),
    );
    assert_eq!(t, SimTime::from_us(10));
}

#[test]
fn poll_and_pull_costs_add_overhead() {
    let base = run_single(
        clean_k40(),
        LaunchDesc::new(
            "pt",
            GridShape::Persistent {
                total_tasks: 1200,
                amortize: 10,
            },
            fixed(10),
        ),
    );
    let cfg = GpuConfig {
        poll_cost: SimTime::from_ns(2_000),
        pull_cost: SimTime::from_ns(100),
        ..clean_k40()
    };
    let with_overhead = run_single(
        cfg,
        LaunchDesc::new(
            "pt",
            GridShape::Persistent {
                total_tasks: 1200,
                amortize: 10,
            },
            fixed(10),
        ),
    );
    // Each of the 120 CTAs runs one 10-task batch: 100us work, plus with
    // overheads one 2us poll and ten 0.1us pulls = 103us.
    assert_eq!(base, SimTime::from_us(100));
    assert_eq!(with_overhead, SimTime::from_us(103));
}

#[test]
fn larger_amortize_factor_reduces_overhead() {
    let cfg = GpuConfig {
        poll_cost: SimTime::from_ns(2_000),
        ..clean_k40()
    };
    let run = |l: u32| {
        run_single(
            cfg.clone(),
            LaunchDesc::new(
                "pt",
                GridShape::Persistent {
                    total_tasks: 12_000,
                    amortize: l,
                },
                fixed(1),
            ),
        )
    };
    let t1 = run(1);
    let t10 = run(10);
    let t100 = run(100);
    assert!(t1 > t10, "{t1} vs {t10}");
    assert!(t10 > t100, "{t10} vs {t100}");
}

#[test]
fn temporal_preemption_drains_within_one_batch() {
    // Tasks of 10us, amortize 2 => batches of 20us. Signal at t=25us: CTAs
    // are mid-second-batch (ends t=40us), so the grid drains at t=40us.
    let mut sc = Scenario::new(clean_k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "victim",
            GridShape::Persistent {
                total_tasks: 120_000,
                amortize: 2,
            },
            fixed(10),
        )
        .with_tag(1),
    );
    sc.signal_at(SimTime::from_us(25), 1, PreemptSignal::YieldSms(15));
    let res = sc.run();
    let rec = &res.records[&1];
    assert_eq!(rec.preemptions.len(), 1);
    let p = rec.preemptions[0];
    assert_eq!(p.at, SimTime::from_us(40));
    // Two batches of 2 tasks on each of 120 CTAs.
    assert_eq!(p.tasks_done, 480);
    assert_eq!(p.remaining, 120_000 - 480);
    assert!(rec.completed_at.is_none());
}

#[test]
fn spatial_preemption_frees_only_signalled_sms() {
    // Signal spa_P = 5: SMs 0..5 drain, SMs 5..15 keep running.
    let mut sc = Scenario::new(clean_k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "victim",
            GridShape::Persistent {
                total_tasks: 1200,
                amortize: 1,
            },
            fixed(10),
        )
        .with_tag(1),
    );
    sc.signal_at(SimTime::from_us(5), 1, PreemptSignal::YieldSms(5));
    let res = sc.run();
    let rec = &res.records[&1];
    // The victim is never "preempted" as a grid: its remaining CTAs finish
    // all tasks (Fig. 4c semantics).
    assert!(rec.preemptions.is_empty());
    let done = rec.completed_at.unwrap();
    // 1200 tasks; 40 CTAs on yielded SMs exit after 1 task each (40 tasks),
    // leaving 1160 tasks for 80 CTAs -> 15 rounds of 10us: ends ~150us.
    assert!(done > SimTime::from_us(100), "{done}");
    // And the freed SMs can host a new kernel quickly.
    assert!(done < SimTime::from_us(300), "{done}");
}

#[test]
fn spatial_preemption_lets_waiting_kernel_start_early() {
    let mut sc = Scenario::new(clean_k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "victim",
            GridShape::Persistent {
                total_tasks: 12_000,
                amortize: 1,
            },
            fixed(10),
        )
        .with_tag(1),
    );
    sc.signal_at(SimTime::from_us(5), 1, PreemptSignal::YieldSms(5));
    // The waiting kernel needs 40 CTAs = 5 SMs.
    sc.launch_at(
        SimTime::from_us(6),
        LaunchDesc::new("hi", GridShape::Original { ctas: 40 }, fixed(10)).with_tag(2),
    );
    let res = sc.run();
    let hi = &res.records[&2];
    // Freed at the next batch boundary (t=10us); dispatched right after.
    assert_eq!(hi.dispatch_started.unwrap(), SimTime::from_us(10));
    // The victim still completes everything.
    assert!(res.records[&1].completed_at.is_some());
}

#[test]
fn flag_visibility_latency_delays_preemption() {
    let cfg = GpuConfig {
        flag_visibility_latency: SimTime::from_us(15),
        ..clean_k40()
    };
    let mut sc = Scenario::new(cfg);
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "victim",
            GridShape::Persistent {
                total_tasks: 120_000,
                amortize: 1,
            },
            fixed(10),
        )
        .with_tag(1),
    );
    // Written at t=5, visible at t=20: the t=10 poll must NOT see it; the
    // t=20 poll does.
    sc.signal_at(SimTime::from_us(5), 1, PreemptSignal::YieldSms(15));
    let res = sc.run();
    assert_eq!(res.records[&1].preemptions[0].at, SimTime::from_us(20));
}

#[test]
fn resume_completes_exactly_the_remaining_tasks() {
    let total_tasks = 10_000u64;
    let counter = Arc::new(AtomicU64::new(0));
    let sum = Arc::new(AtomicU64::new(0));

    // First run: preempt partway.
    let (c1, s1) = (counter.clone(), sum.clone());
    let mut sc = Scenario::new(clean_k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "func",
            GridShape::Persistent {
                total_tasks,
                amortize: 1,
            },
            fixed(10),
        )
        .with_tag(1)
        .with_task_fn(Box::new(move |t| {
            c1.fetch_add(1, Ordering::Relaxed);
            s1.fetch_add(t, Ordering::Relaxed);
        })),
    );
    sc.signal_at(SimTime::from_us(55), 1, PreemptSignal::YieldSms(15));
    let res = sc.run();
    let p = res.records[&1].preemptions[0];
    assert_eq!(p.tasks_done + p.remaining, total_tasks);
    assert_eq!(counter.load(Ordering::Relaxed), p.tasks_done);

    // Resume: a fresh launch carrying the offset processes the rest.
    let (c2, s2) = (counter.clone(), sum.clone());
    let mut sc2 = Scenario::new(clean_k40());
    sc2.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "func-resume",
            GridShape::Persistent {
                total_tasks: p.remaining,
                amortize: 1,
            },
            fixed(10),
        )
        .with_tag(1)
        .with_first_task(p.tasks_done)
        .with_task_fn(Box::new(move |t| {
            c2.fetch_add(1, Ordering::Relaxed);
            s2.fetch_add(t, Ordering::Relaxed);
        })),
    );
    let res2 = sc2.run();
    assert!(res2.records[&1].completed_at.is_some());

    // Every task ran exactly once: the task-index sum matches 0+1+..+N-1.
    assert_eq!(counter.load(Ordering::Relaxed), total_tasks);
    assert_eq!(
        sum.load(Ordering::Relaxed),
        total_tasks * (total_tasks - 1) / 2
    );
}

#[test]
fn contention_speeds_up_underloaded_sms() {
    // A memory-intensive trivial kernel: 16 CTAs (2 SMs at occupancy 8).
    // Forcing it onto many SMs via low occupancy is not possible directly,
    // but a single-CTA kernel on an empty device runs faster than at full
    // occupancy.
    let usage = ResourceUsage::typical_256();
    let cfg = clean_k40();
    let one = run_single(
        cfg.clone(),
        LaunchDesc::new("one", GridShape::Original { ctas: 1 }, fixed(80))
            .with_resources(usage)
            .with_mem_intensity(1.4),
    );
    let full = run_single(
        cfg,
        LaunchDesc::new("full", GridShape::Original { ctas: 120 }, fixed(80))
            .with_resources(usage)
            .with_mem_intensity(1.4),
    );
    assert!(one < full, "{one} vs {full}");
    // Bounded by the model: speedup <= (1 + c) / (1 + c/8) ~ 2.17.
    let speedup = full.as_us() / one.as_us();
    assert!(speedup > 1.5 && speedup < 2.3, "{speedup}");
}

#[test]
fn busy_spans_attribute_time_to_tags() {
    let mut sc = Scenario::new(clean_k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new("a", GridShape::Original { ctas: 8 }, fixed(100)).with_tag(1),
    );
    let res = sc.run();
    let spans = res.device.busy_spans();
    assert_eq!(spans.len(), 8);
    assert!(spans.iter().all(|s| s.owner == 1));
    let total: SimTime = spans.iter().map(|s| s.duration()).sum();
    assert_eq!(total, SimTime::from_us(800));
}

#[test]
fn unlaunchable_kernel_rejected() {
    use flep_gpu_sim::{GpuDevice, LaunchError};
    let mut dev = GpuDevice::new(clean_k40());
    let mut harness = flep_gpu_sim::CollectorHarness::new();
    let desc = LaunchDesc::new("huge", GridShape::Original { ctas: 1 }, fixed(1)).with_resources(
        ResourceUsage {
            threads_per_cta: 4096,
            regs_per_thread: 32,
            smem_per_cta: 0,
        },
    );
    let err = dev.launch(SimTime::ZERO, desc, &mut harness).unwrap_err();
    assert!(matches!(err, LaunchError::Unlaunchable { .. }));

    let empty = LaunchDesc::new("empty", GridShape::Original { ctas: 0 }, fixed(1));
    assert!(matches!(
        dev.launch(SimTime::ZERO, empty, &mut harness),
        Err(LaunchError::EmptyGrid { .. })
    ));

    let zero_l = LaunchDesc::new(
        "zl",
        GridShape::Persistent {
            total_tasks: 10,
            amortize: 0,
        },
        fixed(1),
    );
    assert!(matches!(
        dev.launch(SimTime::ZERO, zero_l, &mut harness),
        Err(LaunchError::ZeroAmortize { .. })
    ));
}

#[test]
fn signal_after_completion_is_ignored() {
    let mut sc = Scenario::new(clean_k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "quick",
            GridShape::Persistent {
                total_tasks: 120,
                amortize: 1,
            },
            fixed(10),
        )
        .with_tag(1),
    );
    sc.signal_at(SimTime::from_ms(5), 1, PreemptSignal::YieldSms(15));
    let res = sc.run();
    let rec = &res.records[&1];
    assert!(rec.completed_at.is_some());
    assert!(rec.preemptions.is_empty());
}

#[test]
fn deterministic_across_runs() {
    let build = || {
        let mut sc = Scenario::new(GpuConfig::k40());
        sc.launch_at(
            SimTime::ZERO,
            LaunchDesc::new(
                "noisy",
                GridShape::Persistent {
                    total_tasks: 5_000,
                    amortize: 7,
                },
                TaskCost {
                    base: SimTime::from_us(3),
                    rel_noise: 0.25,
                },
            )
            .with_tag(1)
            .with_seed(99),
        );
        sc.signal_at(SimTime::from_us(40), 1, PreemptSignal::YieldSms(6));
        sc.run()
    };
    let a = build();
    let b = build();
    assert_eq!(a.records[&1], b.records[&1]);
    assert_eq!(a.end_time, b.end_time);
}

#[test]
fn restore_grid_refills_spatially_yielded_sms() {
    // Victim yields 5 SMs; later the host restores it: supplementary CTAs
    // are placed and pull from the same task pool, so the grid finishes
    // with full parallelism and exact task conservation.
    let counter = Arc::new(AtomicU64::new(0));
    let c = counter.clone();
    let total_tasks = 60_000u64;
    let mut sc = Scenario::new(clean_k40());
    sc.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "victim",
            GridShape::Persistent {
                total_tasks,
                amortize: 1,
            },
            fixed(10),
        )
        .with_tag(1)
        .with_task_fn(Box::new(move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        })),
    );
    sc.signal_at(SimTime::from_us(25), 1, PreemptSignal::YieldSms(5));
    // Restore shortly after: Scenario has no restore action, so drive the
    // equivalent through the signal API (clearing the signal) — the
    // runtime's restore also relaunches CTAs, tested at the runtime level;
    // here we assert the clear-signal half: no further CTAs exit.
    sc.signal_at(SimTime::from_us(60), 1, PreemptSignal::None);
    let res = sc.run();
    let rec = &res.records[&1];
    assert!(rec.completed_at.is_some(), "victim completes");
    assert_eq!(counter.load(Ordering::Relaxed), total_tasks);
    // With 40 of 120 CTAs gone for most of the run, the makespan sits
    // between the full-parallel (5ms) and 80-CTA (7.5ms) bounds.
    let t = rec.completed_at.unwrap();
    assert!(t > SimTime::from_us(5_000), "{t}");
    assert!(t < SimTime::from_us(7_800), "{t}");
}

#[test]
fn restore_grid_via_device_api_reaches_full_occupancy() {
    use flep_gpu_sim::{CollectorHarness, GpuDevice, GpuEvent};

    // Drive the device manually: launch, spatially preempt, restore, and
    // check CTA residency returns to capacity.
    let mut dev = GpuDevice::new(clean_k40());
    let mut pending: Vec<(SimTime, GpuEvent)> = Vec::new();
    let mut now = SimTime::ZERO;

    let mut harness = CollectorHarness::new();
    let grid = dev
        .launch(
            now,
            LaunchDesc::new(
                "victim",
                GridShape::Persistent {
                    total_tasks: 1_000_000,
                    amortize: 1,
                },
                fixed(10),
            ),
            &mut harness,
        )
        .unwrap();
    pending.append(&mut harness.gpu_events);

    let resident =
        |dev: &GpuDevice| -> u32 { dev.sms().iter().map(|sm| sm.resident_count()).sum() };

    // Helper: run the event loop until a deadline.
    let run_until = |dev: &mut GpuDevice,
                     pending: &mut Vec<(SimTime, GpuEvent)>,
                     now: &mut SimTime,
                     deadline: SimTime| {
        loop {
            pending.sort_by_key(|&(t, _)| t);
            let Some(&(t, ev)) = pending.first() else {
                break;
            };
            if t > deadline {
                break;
            }
            pending.remove(0);
            *now = t;
            let mut h = CollectorHarness::new();
            dev.handle(t, ev, &mut h);
            pending.extend(h.gpu_events);
        }
        *now = deadline;
    };

    run_until(&mut dev, &mut pending, &mut now, SimTime::from_us(15));
    assert_eq!(resident(&dev), 120, "full occupancy before preemption");

    dev.signal(now, grid, PreemptSignal::YieldSms(5));
    run_until(&mut dev, &mut pending, &mut now, SimTime::from_us(40));
    assert_eq!(resident(&dev), 80, "5 SMs (40 CTAs) drained");

    let mut h = CollectorHarness::new();
    dev.restore_grid(now, grid, &mut h);
    pending.append(&mut h.gpu_events);
    run_until(&mut dev, &mut pending, &mut now, SimTime::from_us(41));
    assert_eq!(resident(&dev), 120, "restore refills to capacity");
}
