//! Tests for CUDA-stream semantics: same-stream grids serialize in launch
//! order; different streams co-schedule under MPS backfill.

use flep_gpu_sim::{GpuConfig, GridShape, LaunchDesc, Scenario, TaskCost};
use flep_sim_core::SimTime;

fn clean_cfg() -> GpuConfig {
    GpuConfig {
        launch_overhead: SimTime::ZERO,
        poll_cost: SimTime::ZERO,
        pull_cost: SimTime::ZERO,
        flag_visibility_latency: SimTime::ZERO,
        ..GpuConfig::k40()
    }
}

fn small(tag: u64, ctas: u64, task_us: u64) -> LaunchDesc {
    LaunchDesc::new(
        format!("k{tag}"),
        GridShape::Original { ctas },
        TaskCost::fixed(SimTime::from_us(task_us)),
    )
    .with_tag(tag)
}

#[test]
fn same_stream_grids_serialize() {
    // Two 40-CTA grids that would co-schedule concurrently... but in the
    // same stream the second waits for the first to complete.
    let mut sc = Scenario::new(clean_cfg());
    sc.launch_at(SimTime::ZERO, small(1, 40, 100).with_stream(3));
    sc.launch_at(SimTime::ZERO, small(2, 40, 100).with_stream(3));
    let r = sc.run();
    assert_eq!(r.records[&1].completed_at.unwrap(), SimTime::from_us(100));
    assert_eq!(
        r.records[&2].dispatch_started.unwrap(),
        SimTime::from_us(100),
        "same-stream successor must wait for the predecessor"
    );
    assert_eq!(r.records[&2].completed_at.unwrap(), SimTime::from_us(200));
}

#[test]
fn different_streams_coschedule() {
    let mut sc = Scenario::new(clean_cfg());
    sc.launch_at(SimTime::ZERO, small(1, 40, 100).with_stream(1));
    sc.launch_at(SimTime::ZERO, small(2, 40, 100).with_stream(2));
    let r = sc.run();
    assert_eq!(r.records[&2].dispatch_started.unwrap(), SimTime::ZERO);
    assert_eq!(r.records[&2].completed_at.unwrap(), SimTime::from_us(100));
}

#[test]
fn streamless_grids_behave_as_before() {
    let mut sc = Scenario::new(clean_cfg());
    sc.launch_at(SimTime::ZERO, small(1, 40, 100));
    sc.launch_at(SimTime::ZERO, small(2, 40, 100));
    let r = sc.run();
    assert_eq!(r.records[&2].dispatch_started.unwrap(), SimTime::ZERO);
}

#[test]
fn stream_chain_of_many_grids_preserves_order() {
    let mut sc = Scenario::new(clean_cfg());
    for i in 0..6u64 {
        sc.launch_at(SimTime::ZERO, small(i + 1, 10, 10).with_stream(7));
    }
    let r = sc.run();
    let mut last_done = SimTime::ZERO;
    for i in 1..=6u64 {
        let started = r.records[&i].dispatch_started.unwrap();
        let done = r.records[&i].completed_at.unwrap();
        assert!(
            started >= last_done,
            "grid {i} started {started} before predecessor finished {last_done}"
        );
        last_done = done;
    }
    assert_eq!(last_done, SimTime::from_us(60));
}

#[test]
fn stream_interleaves_with_other_work() {
    // A stream chain shares the device with an independent kernel: the
    // chain serializes internally but overlaps the outsider.
    let mut sc = Scenario::new(clean_cfg());
    sc.launch_at(SimTime::ZERO, small(1, 40, 50).with_stream(1));
    sc.launch_at(SimTime::ZERO, small(2, 40, 50).with_stream(1));
    sc.launch_at(SimTime::ZERO, small(3, 40, 120));
    let r = sc.run();
    // The outsider ran concurrently with the whole chain.
    assert_eq!(r.records[&3].dispatch_started.unwrap(), SimTime::ZERO);
    assert_eq!(r.records[&3].completed_at.unwrap(), SimTime::from_us(120));
    assert_eq!(r.records[&2].completed_at.unwrap(), SimTime::from_us(100));
}

#[test]
fn launch_overhead_applies_per_stream_launch() {
    let cfg = GpuConfig {
        launch_overhead: SimTime::from_us(8),
        ..clean_cfg()
    };
    let mut sc = Scenario::new(cfg);
    sc.launch_at(SimTime::ZERO, small(1, 40, 100).with_stream(3));
    sc.launch_at(SimTime::ZERO, small(2, 40, 100).with_stream(3));
    let r = sc.run();
    // Grid 1: 8us launch + 100us work. Grid 2 parked behind it; on release
    // it pays the dependent-kernel start latency (another 8us) before
    // dispatching — the per-slice cost that makes kernel slicing expensive.
    assert_eq!(r.records[&1].completed_at.unwrap(), SimTime::from_us(108));
    assert_eq!(
        r.records[&2].dispatch_started.unwrap(),
        SimTime::from_us(116)
    );
}
