//! Property-based tests for the GPU device's conservation invariants: no
//! task is ever lost or duplicated, whatever the workload shape or the
//! preemption timing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use flep_gpu_sim::{
    GpuConfig, GridShape, LaunchDesc, PreemptSignal, ResourceUsage, Scenario, TaskCost,
};
use flep_sim_core::SimTime;

fn clean_cfg() -> GpuConfig {
    GpuConfig {
        launch_overhead: SimTime::ZERO,
        flag_visibility_latency: SimTime::ZERO,
        ..GpuConfig::k40()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A persistent grid preempted at an arbitrary time partitions its
    /// tasks exactly: done + remaining == total, and the task function ran
    /// exactly `done` times.
    #[test]
    fn preemption_conserves_tasks(
        total_tasks in 1u64..5_000,
        amortize in 1u32..64,
        task_us in 1u64..40,
        signal_at_us in 0u64..2_000,
        yield_sms in 1u32..=15,
    ) {
        let counter = Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        let mut sc = Scenario::new(clean_cfg());
        sc.launch_at(
            SimTime::ZERO,
            LaunchDesc::new(
                "prop",
                GridShape::Persistent { total_tasks, amortize },
                TaskCost::fixed(SimTime::from_us(task_us)),
            )
            .with_tag(1)
            .with_task_fn(Box::new(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            })),
        );
        sc.signal_at(
            SimTime::from_us(signal_at_us),
            1,
            PreemptSignal::YieldSms(yield_sms),
        );
        let result = sc.run();
        let rec = &result.records[&1];
        let executed = counter.load(Ordering::Relaxed);
        match (&rec.completed_at, rec.preemptions.first()) {
            (Some(_), None) => prop_assert_eq!(executed, total_tasks),
            (None, Some(p)) => {
                prop_assert_eq!(p.tasks_done + p.remaining, total_tasks);
                prop_assert_eq!(executed, p.tasks_done);
                prop_assert!(p.remaining > 0);
            }
            // Spatial yields (< 15 SMs) never retire the grid early: it
            // completes on the remaining SMs.
            (Some(_), Some(_)) => prop_assert!(false, "completed grid recorded a preemption"),
            (None, None) => prop_assert!(false, "grid neither completed nor preempted"),
        }
    }

    /// Original grids complete every CTA exactly once whatever the grid
    /// size, and the makespan respects the wave lower bound.
    #[test]
    fn original_grid_runs_each_cta_once(
        ctas in 1u64..3_000,
        task_us in 1u64..30,
    ) {
        let counter = Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        let mut sc = Scenario::new(clean_cfg());
        sc.launch_at(
            SimTime::ZERO,
            LaunchDesc::new(
                "orig",
                GridShape::Original { ctas },
                TaskCost::fixed(SimTime::from_us(task_us)),
            )
            .with_tag(1)
            .with_task_fn(Box::new(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            })),
        );
        let result = sc.run();
        prop_assert_eq!(counter.load(Ordering::Relaxed), ctas);
        let t = result.records[&1].turnaround().unwrap();
        let waves = ctas.div_ceil(120);
        // Lower bound: full-occupancy waves; upper bound: generous slack
        // for underfilled waves running faster and noise-free tasks.
        prop_assert!(t >= SimTime::from_us(task_us * waves).scale(0.3));
        prop_assert!(t <= SimTime::from_us(task_us * (waves + 1)) + SimTime::from_us(10));
    }

    /// Two kernels launched in any order both eventually complete (no
    /// deadlock in the dispatcher), and tags never mix.
    #[test]
    fn two_kernel_corun_always_drains(
        a_ctas in 1u64..1_500,
        b_ctas in 1u64..1_500,
        gap_us in 0u64..500,
        a_task in 1u64..25,
        b_task in 1u64..25,
    ) {
        let mut sc = Scenario::new(clean_cfg());
        sc.launch_at(
            SimTime::ZERO,
            LaunchDesc::new("a", GridShape::Original { ctas: a_ctas }, TaskCost::fixed(SimTime::from_us(a_task))).with_tag(1),
        );
        sc.launch_at(
            SimTime::from_us(gap_us),
            LaunchDesc::new("b", GridShape::Original { ctas: b_ctas }, TaskCost::fixed(SimTime::from_us(b_task))).with_tag(2),
        );
        let result = sc.run();
        prop_assert!(result.records[&1].completed_at.is_some());
        prop_assert!(result.records[&2].completed_at.is_some());
        // The second kernel never starts before its launch.
        prop_assert!(result.records[&2].dispatch_started.unwrap() >= SimTime::from_us(gap_us));
    }

    /// Occupancy is consistent: a grid of CTAs that individually fit is
    /// always dispatchable, and per-SM residency never exceeds the
    /// occupancy bound (checked indirectly via busy-span concurrency).
    #[test]
    fn occupancy_bound_holds(
        threads in prop::sample::select(vec![64u32, 128, 256, 512, 1024]),
        regs in 8u32..64,
        ctas in 1u64..600,
    ) {
        let cfg = clean_cfg();
        let usage = ResourceUsage { threads_per_cta: threads, regs_per_thread: regs, smem_per_cta: 0 };
        let occ = cfg.occupancy_per_sm(&usage);
        prop_assume!(occ > 0);
        let capacity = cfg.device_capacity(&usage);
        let mut sc = Scenario::new(cfg);
        sc.launch_at(
            SimTime::ZERO,
            LaunchDesc::new("o", GridShape::Original { ctas }, TaskCost::fixed(SimTime::from_us(10)))
                .with_tag(1)
                .with_resources(usage),
        );
        let result = sc.run();
        prop_assert!(result.records[&1].completed_at.is_some());
        // Concurrency check: at any instant, at most `capacity` CTAs run.
        let spans = result.device.busy_spans();
        let mut events: Vec<(u64, i64)> = Vec::new();
        for s in spans {
            events.push((s.start.as_ns(), 1));
            events.push((s.end.as_ns(), -1));
        }
        events.sort();
        let mut live = 0i64;
        for (_, delta) in events {
            live += delta;
            prop_assert!(live as u64 <= capacity, "{live} concurrent CTAs > capacity {capacity}");
        }
    }
}
