//! Property-based tests for the GPU device's conservation invariants: no
//! task is ever lost or duplicated, whatever the workload shape or the
//! preemption timing. Runs on the in-tree `flep-check` harness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flep_gpu_sim::{
    GpuConfig, GridShape, LaunchDesc, PreemptSignal, ResourceUsage, Scenario, TaskCost,
};
use flep_sim_core::check::{check, CheckConfig};
use flep_sim_core::{assume, require, require_eq, SimRng, SimTime};

fn clean_cfg() -> GpuConfig {
    GpuConfig {
        launch_overhead: SimTime::ZERO,
        flag_visibility_latency: SimTime::ZERO,
        ..GpuConfig::k40()
    }
}

/// A persistent grid preempted at an arbitrary time partitions its tasks
/// exactly: done + remaining == total, and the task function ran exactly
/// `done` times.
#[test]
fn preemption_conserves_tasks() {
    check(
        "preemption_conserves_tasks",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            (
                rng.uniform_u64(1, 4_999),     // total_tasks
                rng.uniform_u64(1, 63) as u32, // amortize
                rng.uniform_u64(1, 39),        // task_us
                rng.uniform_u64(0, 1_999),     // signal_at_us
                rng.uniform_u64(1, 15) as u32, // yield_sms
            )
        },
        |&(total_tasks, amortize, task_us, signal_at_us, yield_sms)| {
            assume!(total_tasks >= 1 && amortize >= 1 && task_us >= 1);
            assume!((1..=15).contains(&yield_sms));
            let counter = Arc::new(AtomicU64::new(0));
            let c = counter.clone();
            let mut sc = Scenario::new(clean_cfg());
            sc.launch_at(
                SimTime::ZERO,
                LaunchDesc::new(
                    "prop",
                    GridShape::Persistent {
                        total_tasks,
                        amortize,
                    },
                    TaskCost::fixed(SimTime::from_us(task_us)),
                )
                .with_tag(1)
                .with_task_fn(Box::new(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                })),
            );
            sc.signal_at(
                SimTime::from_us(signal_at_us),
                1,
                PreemptSignal::YieldSms(yield_sms),
            );
            let result = sc.run();
            let rec = &result.records[&1];
            let executed = counter.load(Ordering::Relaxed);
            match (&rec.completed_at, rec.preemptions.first()) {
                (Some(_), None) => require_eq!(executed, total_tasks),
                (None, Some(p)) => {
                    require_eq!(p.tasks_done + p.remaining, total_tasks);
                    require_eq!(executed, p.tasks_done);
                    require!(p.remaining > 0);
                }
                // Spatial yields (< 15 SMs) never retire the grid early: it
                // completes on the remaining SMs.
                (Some(_), Some(_)) => require!(false, "completed grid recorded a preemption"),
                (None, None) => require!(false, "grid neither completed nor preempted"),
            }
            Ok(())
        },
    );
}

/// Original grids complete every CTA exactly once whatever the grid size,
/// and the makespan respects the wave lower bound.
#[test]
fn original_grid_runs_each_cta_once() {
    check(
        "original_grid_runs_each_cta_once",
        CheckConfig::default(),
        |rng: &mut SimRng| (rng.uniform_u64(1, 2_999), rng.uniform_u64(1, 29)),
        |&(ctas, task_us)| {
            assume!(ctas >= 1 && task_us >= 1);
            let counter = Arc::new(AtomicU64::new(0));
            let c = counter.clone();
            let mut sc = Scenario::new(clean_cfg());
            sc.launch_at(
                SimTime::ZERO,
                LaunchDesc::new(
                    "orig",
                    GridShape::Original { ctas },
                    TaskCost::fixed(SimTime::from_us(task_us)),
                )
                .with_tag(1)
                .with_task_fn(Box::new(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                })),
            );
            let result = sc.run();
            require_eq!(counter.load(Ordering::Relaxed), ctas);
            let t = result.records[&1].turnaround().unwrap();
            let waves = ctas.div_ceil(120);
            // Lower bound: full-occupancy waves; upper bound: generous slack
            // for underfilled waves running faster and noise-free tasks.
            require!(t >= SimTime::from_us(task_us * waves).scale(0.3));
            require!(t <= SimTime::from_us(task_us * (waves + 1)) + SimTime::from_us(10));
            Ok(())
        },
    );
}

/// Two kernels launched in any order both eventually complete (no deadlock
/// in the dispatcher), and tags never mix.
#[test]
fn two_kernel_corun_always_drains() {
    check(
        "two_kernel_corun_always_drains",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            (
                rng.uniform_u64(1, 1_499), // a_ctas
                rng.uniform_u64(1, 1_499), // b_ctas
                rng.uniform_u64(0, 499),   // gap_us
                rng.uniform_u64(1, 24),    // a_task
                rng.uniform_u64(1, 24),    // b_task
            )
        },
        |&(a_ctas, b_ctas, gap_us, a_task, b_task)| {
            assume!(a_ctas >= 1 && b_ctas >= 1 && a_task >= 1 && b_task >= 1);
            let mut sc = Scenario::new(clean_cfg());
            sc.launch_at(
                SimTime::ZERO,
                LaunchDesc::new(
                    "a",
                    GridShape::Original { ctas: a_ctas },
                    TaskCost::fixed(SimTime::from_us(a_task)),
                )
                .with_tag(1),
            );
            sc.launch_at(
                SimTime::from_us(gap_us),
                LaunchDesc::new(
                    "b",
                    GridShape::Original { ctas: b_ctas },
                    TaskCost::fixed(SimTime::from_us(b_task)),
                )
                .with_tag(2),
            );
            let result = sc.run();
            require!(result.records[&1].completed_at.is_some());
            require!(result.records[&2].completed_at.is_some());
            // The second kernel never starts before its launch.
            require!(result.records[&2].dispatch_started.unwrap() >= SimTime::from_us(gap_us));
            Ok(())
        },
    );
}

/// Occupancy is consistent: a grid of CTAs that individually fit is always
/// dispatchable, and per-SM residency never exceeds the occupancy bound
/// (checked indirectly via busy-span concurrency).
#[test]
fn occupancy_bound_holds() {
    const THREAD_CHOICES: [u32; 5] = [64, 128, 256, 512, 1024];
    check(
        "occupancy_bound_holds",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            (
                rng.uniform_u64(0, 4),         // index into THREAD_CHOICES
                rng.uniform_u64(8, 63) as u32, // regs
                rng.uniform_u64(1, 599),       // ctas
            )
        },
        |&(threads_idx, regs, ctas)| {
            assume!(threads_idx < 5 && (8..64).contains(&regs) && ctas >= 1);
            let threads = THREAD_CHOICES[threads_idx as usize];
            let cfg = clean_cfg();
            let usage = ResourceUsage {
                threads_per_cta: threads,
                regs_per_thread: regs,
                smem_per_cta: 0,
            };
            let occ = cfg.occupancy_per_sm(&usage);
            assume!(occ > 0);
            let capacity = cfg.device_capacity(&usage);
            let mut sc = Scenario::new(cfg);
            sc.launch_at(
                SimTime::ZERO,
                LaunchDesc::new(
                    "o",
                    GridShape::Original { ctas },
                    TaskCost::fixed(SimTime::from_us(10)),
                )
                .with_tag(1)
                .with_resources(usage),
            );
            let result = sc.run();
            require!(result.records[&1].completed_at.is_some());
            // Concurrency check: at any instant, at most `capacity` CTAs run.
            let spans = result.device.busy_spans();
            let mut events: Vec<(u64, i64)> = Vec::new();
            for s in spans {
                events.push((s.start.as_ns(), 1));
                events.push((s.end.as_ns(), -1));
            }
            events.sort();
            let mut live = 0i64;
            for (_, delta) in events {
                live += delta;
                require!(
                    live as u64 <= capacity,
                    "{live} concurrent CTAs > capacity {capacity}"
                );
            }
            Ok(())
        },
    );
}

/// The SM-placement index picks exactly the SM the naive filtered
/// `min_by_key((resident_count, sm_id))` scan would pick, under random
/// interleavings of CTA placements, CTA removals, and preemption-signal
/// flips. This pins the index's total order — buckets ascending by count,
/// SM ids ascending within a bucket — against the specification it
/// replaced on the dispatch hot path.
#[test]
fn placement_index_matches_naive_scan() {
    use flep_gpu_sim::{GridId, PlacementIndex, ResidentCta, ResourceUsage, Sm};

    check(
        "placement_index_matches_naive_scan",
        CheckConfig::default(),
        |rng: &mut SimRng| (rng.uniform_u64(0, u64::MAX - 1), rng.uniform_u64(50, 299)),
        |&(seed, ops)| {
            let cfg = GpuConfig::k40();
            let usage = ResourceUsage::typical_256();
            let mut rng = SimRng::seed_from(seed);
            let mut sms: Vec<Sm> = (0..cfg.num_sms).map(Sm::new).collect();
            let mut idx = PlacementIndex::new(cfg.num_sms, cfg.max_ctas_per_sm);
            let mut sig = PreemptSignal::None;
            let mut resident: Vec<(u32, u64)> = Vec::new(); // (sm, cta)
            let mut next_cta = 0u64;

            for _ in 0..ops {
                // Both answers must agree at every step, for the exact
                // predicate the dispatcher uses: fits && !must_exit.
                let got =
                    idx.least_loaded(|i| sms[i as usize].fits(&cfg, &usage) && !sig.must_exit(i));
                let want = sms
                    .iter()
                    .enumerate()
                    .filter(|(i, sm)| sm.fits(&cfg, &usage) && !sig.must_exit(*i as u32))
                    .min_by_key(|(i, sm)| (sm.resident_count(), *i))
                    .map(|(i, _)| i as u32);
                require_eq!(got, want);
                for (i, sm) in sms.iter().enumerate() {
                    require_eq!(idx.count(i as u32), sm.resident_count(), "SM {i} count");
                }

                match rng.uniform_u64(0, 9) {
                    // Place a CTA on the chosen least-loaded SM (if any).
                    0..=4 => {
                        if let Some(sm) = got {
                            let cta = next_cta;
                            next_cta += 1;
                            sms[sm as usize].place(
                                &cfg,
                                &usage,
                                ResidentCta {
                                    grid: GridId(1),
                                    cta,
                                    since: SimTime::ZERO,
                                    threads: usage.threads_per_cta,
                                },
                            );
                            idx.on_place(sm);
                            resident.push((sm, cta));
                        }
                    }
                    // Remove a random resident CTA.
                    5..=7 => {
                        if !resident.is_empty() {
                            let pick = rng.uniform_u64(0, resident.len() as u64 - 1) as usize;
                            let (sm, cta) = resident.swap_remove(pick);
                            sms[sm as usize].remove(&usage, GridId(1), cta);
                            idx.on_remove(sm);
                        }
                    }
                    // Flip the preemption signal: None or YieldSms(1..=15).
                    _ => {
                        let n = rng.uniform_u64(0, u64::from(cfg.num_sms)) as u32;
                        sig = if n == 0 {
                            PreemptSignal::None
                        } else {
                            PreemptSignal::YieldSms(n)
                        };
                    }
                }
            }
            Ok(())
        },
    );
}
