//! The streaming-multiprocessor model: resource slots, residency, and the
//! intra-SM contention model.

use flep_sim_core::SimTime;

use crate::config::{GpuConfig, ResourceUsage};
use crate::grid::GridId;

/// One CTA currently resident on an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentCta {
    /// The grid the CTA belongs to.
    pub grid: GridId,
    /// CTA index within its grid.
    pub cta: u64,
    /// When the CTA was dispatched onto this SM.
    pub since: SimTime,
    /// Thread count of this CTA (cached for load computation).
    pub threads: u32,
}

/// A streaming multiprocessor: tracks resource usage and resident CTAs.
#[derive(Debug, Clone)]
pub struct Sm {
    id: u32,
    used_threads: u32,
    used_regs: u32,
    used_smem: u32,
    resident: Vec<ResidentCta>,
}

impl Sm {
    /// Creates an empty SM with the given hardware index (`%smid`).
    #[must_use]
    pub fn new(id: u32) -> Self {
        Sm {
            id,
            used_threads: 0,
            used_regs: 0,
            used_smem: 0,
            resident: Vec::new(),
        }
    }

    /// The `%smid` of this SM.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The CTAs currently resident.
    #[must_use]
    pub fn resident(&self) -> &[ResidentCta] {
        &self.resident
    }

    /// Number of resident CTAs.
    #[must_use]
    pub fn resident_count(&self) -> u32 {
        self.resident.len() as u32
    }

    /// Total threads of all resident CTAs.
    #[must_use]
    pub fn used_threads(&self) -> u32 {
        self.used_threads
    }

    /// True when no CTAs are resident.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.resident.is_empty()
    }

    /// Whether a CTA with `usage` fits on this SM right now.
    #[must_use]
    pub fn fits(&self, cfg: &GpuConfig, usage: &ResourceUsage) -> bool {
        if self.resident.len() as u32 >= cfg.max_ctas_per_sm {
            return false;
        }
        let regs = usage.regs_per_thread.saturating_mul(usage.threads_per_cta);
        usage.threads_per_cta > 0
            && self.used_threads + usage.threads_per_cta <= cfg.threads_per_sm
            && self.used_regs.saturating_add(regs) <= cfg.regs_per_sm
            && self.used_smem + usage.smem_per_cta <= cfg.smem_per_sm
    }

    /// Places a CTA on this SM.
    ///
    /// # Panics
    ///
    /// Panics if the CTA does not fit — callers must check [`Sm::fits`]
    /// first; a failure here is a dispatcher bug.
    pub fn place(&mut self, cfg: &GpuConfig, usage: &ResourceUsage, cta: ResidentCta) {
        assert!(
            self.fits(cfg, usage),
            "dispatcher bug: CTA placed on full SM {}",
            self.id
        );
        self.used_threads += usage.threads_per_cta;
        self.used_regs += usage.regs_per_thread.saturating_mul(usage.threads_per_cta);
        self.used_smem += usage.smem_per_cta;
        self.resident.push(cta);
    }

    /// Removes a CTA, returning its residency record.
    ///
    /// # Panics
    ///
    /// Panics if the CTA is not resident — a failure here is a device
    /// bookkeeping bug.
    pub fn remove(&mut self, usage: &ResourceUsage, grid: GridId, cta: u64) -> ResidentCta {
        let pos = self
            .resident
            .iter()
            .position(|r| r.grid == grid && r.cta == cta)
            .unwrap_or_else(|| panic!("CTA {cta} of grid {grid:?} not resident on SM {}", self.id));
        self.used_threads -= usage.threads_per_cta;
        self.used_regs -= usage.regs_per_thread.saturating_mul(usage.threads_per_cta);
        self.used_smem -= usage.smem_per_cta;
        self.resident.swap_remove(pos)
    }

    /// Forcibly removes every resident CTA of `grid`, returning their
    /// residency records (in no particular order). Used by the device's
    /// kill path: unlike [`Sm::remove`], absence is not an error — a kill
    /// must succeed whatever the grid's residency looks like.
    pub fn evict_grid(&mut self, usage: &ResourceUsage, grid: GridId) -> Vec<ResidentCta> {
        let mut evicted = Vec::new();
        let mut i = 0;
        while i < self.resident.len() {
            if self.resident[i].grid == grid {
                self.used_threads -= usage.threads_per_cta;
                self.used_regs -= usage.regs_per_thread.saturating_mul(usage.threads_per_cta);
                self.used_smem -= usage.smem_per_cta;
                evicted.push(self.resident.swap_remove(i));
            } else {
                i += 1;
            }
        }
        evicted
    }

    /// Fraction of the SM's thread slots currently occupied, in `[0, 1]`.
    #[must_use]
    pub fn thread_load(&self, cfg: &GpuConfig) -> f64 {
        f64::from(self.used_threads) / f64::from(cfg.threads_per_sm)
    }

    /// The contention slowdown factor applied to work executing on this SM
    /// for a kernel with the given resource usage and memory intensity.
    ///
    /// The model: per-task duration grows linearly with the SM's thread
    /// load, with slope `mem_intensity` (memory-bound kernels suffer more
    /// from co-residents than compute-bound ones). The factor is normalized
    /// to `1.0` at the load the kernel would itself create at full
    /// single-kernel occupancy, so that the standalone calibrated times of
    /// Table 1 are invariant to `mem_intensity`:
    ///
    /// ```text
    /// factor = (1 + c * load_now) / (1 + c * load_full_own)
    /// ```
    ///
    /// Consequences the evaluation relies on:
    /// * fewer co-resident CTAs than standalone ⇒ factor < 1 (tasks speed
    ///   up) — the effect behind Fig. 16;
    /// * an SM packed beyond the kernel's own standalone load by another
    ///   kernel's CTAs ⇒ factor > 1 (cross-kernel interference).
    #[must_use]
    pub fn contention_factor(
        &self,
        cfg: &GpuConfig,
        usage: &ResourceUsage,
        mem_intensity: f64,
    ) -> f64 {
        let c = mem_intensity.max(0.0);
        let occ = cfg.occupancy_per_sm(usage);
        let full_own_load = f64::from(occ * usage.threads_per_cta) / f64::from(cfg.threads_per_sm);
        let load = self.thread_load(cfg);
        (1.0 + c * load) / (1.0 + c * full_own_load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage() -> ResourceUsage {
        ResourceUsage::typical_256()
    }

    fn resident(grid: u64, cta: u64) -> ResidentCta {
        ResidentCta {
            grid: GridId(grid),
            cta,
            since: SimTime::ZERO,
            threads: 256,
        }
    }

    #[test]
    fn fits_until_occupancy_exhausted() {
        let cfg = GpuConfig::k40();
        let mut sm = Sm::new(0);
        for i in 0..8 {
            assert!(sm.fits(&cfg, &usage()), "iteration {i}");
            sm.place(&cfg, &usage(), resident(1, i));
        }
        assert!(!sm.fits(&cfg, &usage()));
        assert_eq!(sm.resident_count(), 8);
    }

    #[test]
    fn remove_frees_resources() {
        let cfg = GpuConfig::k40();
        let mut sm = Sm::new(0);
        for i in 0..8 {
            sm.place(&cfg, &usage(), resident(1, i));
        }
        sm.remove(&usage(), GridId(1), 3);
        assert!(sm.fits(&cfg, &usage()));
        assert_eq!(sm.resident_count(), 7);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn remove_missing_cta_panics() {
        let mut sm = Sm::new(0);
        sm.remove(&usage(), GridId(9), 0);
    }

    #[test]
    #[should_panic(expected = "dispatcher bug")]
    fn place_on_full_sm_panics() {
        let cfg = GpuConfig::k40();
        let mut sm = Sm::new(0);
        for i in 0..8 {
            sm.place(&cfg, &usage(), resident(1, i));
        }
        sm.place(&cfg, &usage(), resident(1, 8));
    }

    #[test]
    fn contention_factor_is_one_at_full_own_occupancy() {
        let cfg = GpuConfig::k40();
        let mut sm = Sm::new(0);
        for i in 0..8 {
            sm.place(&cfg, &usage(), resident(1, i));
        }
        let f = sm.contention_factor(&cfg, &usage(), 1.4);
        assert!((f - 1.0).abs() < 1e-12, "{f}");
    }

    #[test]
    fn contention_factor_below_one_when_underloaded() {
        let cfg = GpuConfig::k40();
        let mut sm = Sm::new(0);
        sm.place(&cfg, &usage(), resident(1, 0));
        let f = sm.contention_factor(&cfg, &usage(), 1.4);
        assert!(f < 1.0, "{f}");
        // Max speedup from a dedicated SM is bounded by (1 + c) / (1 + c/8).
        assert!(f > 1.0 / (1.0 + 1.4), "{f}");
    }

    #[test]
    fn contention_factor_ignores_negative_intensity() {
        let cfg = GpuConfig::k40();
        let sm = Sm::new(0);
        assert_eq!(sm.contention_factor(&cfg, &usage(), -3.0), 1.0);
    }

    #[test]
    fn compute_bound_kernel_insensitive_to_load() {
        let cfg = GpuConfig::k40();
        let mut sm = Sm::new(0);
        sm.place(&cfg, &usage(), resident(1, 0));
        let f = sm.contention_factor(&cfg, &usage(), 0.0);
        assert_eq!(f, 1.0);
    }
}
