//! A discrete-event simulator of a Kepler-class GPU, built as the hardware
//! substrate for the FLEP reproduction.
//!
//! The simulator models exactly the execution semantics the FLEP paper's
//! techniques depend on (§2.1 of the paper):
//!
//! * **SMs with occupancy limits** — threads, registers, shared memory, and
//!   a hardware CTA cap determine how many CTAs an SM hosts
//!   ([`GpuConfig::occupancy_per_sm`]).
//! * **A non-preemptive hardware dispatcher** — grids enter one FIFO; the
//!   front grid's CTAs must all be dispatched before any later grid's CTAs
//!   get a chance (head-of-line blocking), which is why unmodified kernels
//!   cannot be preempted. Leftover-resource backfill near a grid's tail
//!   models MPS co-scheduling.
//! * **Persistent-thread grids** ([`GridShape::Persistent`]) — the FLEP
//!   compiled form: `min(capacity, tasks)` CTAs pull tasks from a shared
//!   counter and poll a pinned host flag every `L` tasks, paying the poll
//!   and pull costs of the transformed code.
//! * **Pinned-flag preemption** ([`PreemptSignal`]) — a single integer
//!   encodes both temporal (yield all SMs) and spatial (yield SMs with
//!   `%smid < n`) preemption, exactly as in Fig. 4(c).
//! * **An intra-SM contention model** ([`Sm::contention_factor`]) — per-task
//!   durations scale with SM thread load, giving spatial co-runs and
//!   Fig. 16's SM-sweep their characteristic behaviour.
//!
//! # Quickstart
//!
//! ```
//! use flep_gpu_sim::{
//!     GpuConfig, GridShape, LaunchDesc, PreemptSignal, Scenario, TaskCost,
//! };
//! use flep_sim_core::SimTime;
//!
//! // A persistent-thread kernel with 60,000 tasks, polling every 5 tasks.
//! let desc = LaunchDesc::new(
//!     "demo",
//!     GridShape::Persistent { total_tasks: 60_000, amortize: 5 },
//!     TaskCost::fixed(SimTime::from_us(20)),
//! )
//! .with_tag(7);
//!
//! let mut sc = Scenario::new(GpuConfig::k40());
//! sc.launch_at(SimTime::ZERO, desc);
//! // Preempt the whole device at t = 1ms.
//! sc.signal_at(SimTime::from_ms(1), 7, PreemptSignal::YieldSms(15));
//! let result = sc.run();
//! let record = &result.records[&7];
//! assert_eq!(record.preemptions.len(), 1);
//! assert!(record.preemptions[0].remaining > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod device;
mod fault;
mod grid;
mod memory;
mod placement;
mod scenario;
mod sm;
mod swap;
mod topology;

pub use config::{GpuConfig, ResourceUsage};
pub use device::{GpuDevice, GpuEvent, GpuHarness, HostNotification, LaunchError, ResetGrid};
pub use fault::{
    DeviceFaultConfig, DeviceFaultKind, DeviceFaultPlan, FaultConfig, FaultEvent, FaultKind,
    FaultPlan, DEVICE_FAULT_STREAM, FAULT_STREAM,
};
pub use grid::{GridId, GridPhase, GridShape, LaunchDesc, PreemptSignal, TaskCost, TaskFn};
pub use memory::{AllocId, DeviceMemory, MemoryError, TransferDir};
pub use placement::PlacementIndex;
pub use scenario::{
    run_single, CollectorHarness, LaunchRecord, PreemptionRecord, Scenario, ScenarioResult,
};
pub use sm::{ResidentCta, Sm};
pub use swap::{SwapManager, SwapStats, WorkingSetTooLarge};
pub use topology::{
    CorrelatedFaultConfig, CorrelatedFaultKind, CorrelatedFaultPlan, FailureTopology,
    CORRELATED_FAULT_STREAM,
};
