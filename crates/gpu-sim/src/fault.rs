//! Deterministic fault injection for the device model.
//!
//! FLEP's flag-based preemption depends on cooperation from every layer
//! that production GPU stacks routinely fail to provide: the host's flag
//! write must reach device memory, every victim CTA must actually poll
//! the flag, launches must be accepted, and completion interrupts must
//! reach the driver. A [`FaultPlan`] injects exactly those failures —
//! deterministically, from a seed — so the runtime's recovery ladder can
//! be exercised and regression-tested like any other code path.
//!
//! # Determinism contract
//!
//! All fault decisions draw from a dedicated RNG stream
//! ([`SimRng::stream`] with [`FAULT_STREAM`]) that is independent of
//! every workload noise stream. Two consequences, both load-bearing:
//!
//! * The same `(fault seed, scenario)` pair replays the identical fault
//!   sequence, so any failing run is replayable from its seed.
//! * When the device has no plan installed (`faults disabled`), **no
//!   fault code draws randomness and no event timing changes**: golden
//!   traces and `FLEP_JSON` bytes are bit-identical to a build without
//!   the fault layer. The device only consults the plan behind an
//!   `Option`, and a plan with all rates at zero draws but never fires.

use std::fmt;

use flep_sim_core::{SimRng, SimTime};

/// Stream id of the fault-injection RNG (see [`SimRng::stream`]): chosen
/// once, never reused by another subsystem.
pub const FAULT_STREAM: u64 = 0xFA_17_57_BE_A1;

/// Stream id of the *device-scoped* fault RNG. Each device's plan XORs
/// its device id into the stream, so every failure domain replays its own
/// independent fault sequence from one cluster seed.
pub const DEVICE_FAULT_STREAM: u64 = 0xDE_71_CE_FA_11;

/// Probabilities and magnitudes for each injectable failure class.
///
/// All rates are per-opportunity probabilities in `[0, 1]`; zero disables
/// the class. The default configuration (via [`FaultConfig::quiet`])
/// injects nothing, which is useful for asserting that merely installing
/// a plan does not perturb a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault RNG stream (`FLEP_FAULT_SEED` in the tools).
    pub seed: u64,
    /// Probability that a launch is rejected with a transient
    /// [`crate::LaunchError::Transient`] (driver queue full / OOM blip).
    pub launch_reject: f64,
    /// Probability that a preempt doorbell (flag write) is lost entirely.
    pub signal_drop: f64,
    /// Probability that a preempt doorbell is delayed by
    /// [`FaultConfig::signal_delay_by`] on top of the normal visibility
    /// latency.
    pub signal_delay: f64,
    /// Extra visibility latency applied to delayed doorbells.
    pub signal_delay_by: SimTime,
    /// Probability that a persistent grid is a *stuck victim*: its CTAs
    /// never poll the preemption flag (e.g. the transformed kernel's poll
    /// was compiled out or the amortizing factor is effectively infinite).
    /// Flag preemption has no effect; a forced drain still works because
    /// it evicts at batch boundaries below the poll.
    pub stuck_flag: f64,
    /// Probability that a persistent grid wedges one CTA at its first
    /// preemption-exit point: the CTA sees the flag but never completes
    /// the exit (livelocked loop body). Neither flag preemption nor a
    /// forced drain can retire the grid; only a kill does.
    pub stuck_exit: f64,
    /// Probability that a host notification (dispatch/completion/preempt
    /// interrupt) is dropped.
    pub note_drop: f64,
    /// Probability that a host notification is delayed by
    /// [`FaultConfig::note_delay_by`].
    pub note_delay: f64,
    /// Extra delivery latency applied to delayed notifications.
    pub note_delay_by: SimTime,
}

impl FaultConfig {
    /// A plan seed with every fault class disabled. Installing this must
    /// be observationally identical to installing no plan at all.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            launch_reject: 0.0,
            signal_drop: 0.0,
            signal_delay: 0.0,
            signal_delay_by: SimTime::from_us(200),
            stuck_flag: 0.0,
            stuck_exit: 0.0,
            note_drop: 0.0,
            note_delay: 0.0,
            note_delay_by: SimTime::from_us(100),
        }
    }

    /// Sets the transient launch-rejection rate (builder style).
    #[must_use]
    pub fn with_launch_reject(mut self, p: f64) -> Self {
        self.launch_reject = p;
        self
    }

    /// Sets the lost-doorbell rate (builder style).
    #[must_use]
    pub fn with_signal_drop(mut self, p: f64) -> Self {
        self.signal_drop = p;
        self
    }

    /// Sets the delayed-doorbell rate and delay (builder style).
    #[must_use]
    pub fn with_signal_delay(mut self, p: f64, by: SimTime) -> Self {
        self.signal_delay = p;
        self.signal_delay_by = by;
        self
    }

    /// Sets the stuck-victim (never polls) rate (builder style).
    #[must_use]
    pub fn with_stuck_flag(mut self, p: f64) -> Self {
        self.stuck_flag = p;
        self
    }

    /// Sets the wedged-exit (sees flag, never exits) rate (builder
    /// style).
    #[must_use]
    pub fn with_stuck_exit(mut self, p: f64) -> Self {
        self.stuck_exit = p;
        self
    }

    /// Sets the dropped-notification rate (builder style).
    #[must_use]
    pub fn with_note_drop(mut self, p: f64) -> Self {
        self.note_drop = p;
        self
    }

    /// Sets the delayed-notification rate and delay (builder style).
    #[must_use]
    pub fn with_note_delay(mut self, p: f64, by: SimTime) -> Self {
        self.note_delay = p;
        self.note_delay_by = by;
        self
    }
}

/// One injected fault, as recorded in the device's fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A launch was rejected with a transient error.
    LaunchRejected,
    /// A preempt doorbell (flag write) was lost.
    SignalDropped,
    /// A preempt doorbell's visibility was delayed by the given extra
    /// latency.
    SignalDelayed(SimTime),
    /// The grid was marked a stuck victim at launch: its CTAs will never
    /// observe the preemption flag.
    StuckVictim,
    /// The grid was marked wedge-on-exit at launch: one CTA will hang at
    /// its first preemption exit instead of leaving the SM.
    WedgedExit,
    /// The wedge armed by [`FaultKind::WedgedExit`] fired: a CTA that
    /// should have exited is now hung and will never produce an event.
    CtaWedged,
    /// A host notification was dropped.
    NoteDropped,
    /// A host notification's delivery was delayed by the given extra
    /// latency.
    NoteDelayed(SimTime),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LaunchRejected => write!(f, "launch_rejected"),
            FaultKind::SignalDropped => write!(f, "signal_dropped"),
            FaultKind::SignalDelayed(by) => write!(f, "signal_delayed+{by}"),
            FaultKind::StuckVictim => write!(f, "stuck_victim"),
            FaultKind::WedgedExit => write!(f, "wedged_exit"),
            FaultKind::CtaWedged => write!(f, "cta_wedged"),
            FaultKind::NoteDropped => write!(f, "note_dropped"),
            FaultKind::NoteDelayed(by) => write!(f, "note_delayed+{by}"),
        }
    }
}

/// A fault that fired, stamped with when and against which host tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation time at which the fault was injected.
    pub at: SimTime,
    /// Host correlation tag of the affected grid/launch.
    pub tag: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// What the plan decided for one launch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaunchFault {
    /// Accept the launch normally.
    None,
    /// Reject with a transient error.
    Reject,
    /// Accept, but the grid's CTAs never poll the flag.
    StuckVictim,
    /// Accept, but one CTA wedges at its first preemption exit.
    WedgedExit,
}

/// What the plan decided for one doorbell write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SignalFault {
    None,
    Drop,
    Delay(SimTime),
}

/// What the plan decided for one host notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NoteFault {
    None,
    Drop,
    Delay(SimTime),
}

/// The seeded fault injector installed on a [`crate::GpuDevice`].
///
/// Consulted at each fault *opportunity* (launch, signal, notification);
/// draws from its private stream in a fixed order so the decision
/// sequence depends only on the seed and the order of opportunities.
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
    log: Vec<FaultEvent>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("cfg", &self.cfg)
            .field("log", &self.log.len())
            .finish()
    }
}

impl FaultPlan {
    /// Builds the injector for a configuration, deriving its RNG from the
    /// dedicated fault stream.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            rng: SimRng::stream(cfg.seed, FAULT_STREAM),
            log: Vec::new(),
        }
    }

    /// The configuration this plan injects.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Every fault injected so far, in injection order.
    #[must_use]
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    fn roll(&mut self, p: f64) -> bool {
        // Zero-rate classes draw anyway: the draw sequence must depend
        // only on the opportunity order, not on which rates are enabled,
        // so tightening one rate never reshuffles another class's faults.
        self.rng.f64() < p
    }

    fn record(&mut self, at: SimTime, tag: u64, kind: FaultKind) {
        self.log.push(FaultEvent { at, tag, kind });
    }

    /// Decides the fate of one launch attempt. `persistent` gates the
    /// stuck-victim classes (original-shape grids have no poll loop to
    /// get stuck in, but their draws still happen — see `roll`).
    pub(crate) fn on_launch(&mut self, at: SimTime, tag: u64, persistent: bool) -> LaunchFault {
        let reject = self.roll(self.cfg.launch_reject);
        let stuck = self.roll(self.cfg.stuck_flag);
        let wedged = self.roll(self.cfg.stuck_exit);
        if reject {
            self.record(at, tag, FaultKind::LaunchRejected);
            return LaunchFault::Reject;
        }
        if persistent && stuck {
            self.record(at, tag, FaultKind::StuckVictim);
            return LaunchFault::StuckVictim;
        }
        if persistent && wedged {
            self.record(at, tag, FaultKind::WedgedExit);
            return LaunchFault::WedgedExit;
        }
        LaunchFault::None
    }

    /// Decides the fate of one doorbell write.
    pub(crate) fn on_signal(&mut self, at: SimTime, tag: u64) -> SignalFault {
        let drop = self.roll(self.cfg.signal_drop);
        let delay = self.roll(self.cfg.signal_delay);
        if drop {
            self.record(at, tag, FaultKind::SignalDropped);
            return SignalFault::Drop;
        }
        if delay {
            let by = self.cfg.signal_delay_by;
            self.record(at, tag, FaultKind::SignalDelayed(by));
            return SignalFault::Delay(by);
        }
        SignalFault::None
    }

    /// Decides the fate of one host notification.
    pub(crate) fn on_note(&mut self, at: SimTime, tag: u64) -> NoteFault {
        let drop = self.roll(self.cfg.note_drop);
        let delay = self.roll(self.cfg.note_delay);
        if drop {
            self.record(at, tag, FaultKind::NoteDropped);
            return NoteFault::Drop;
        }
        if delay {
            let by = self.cfg.note_delay_by;
            self.record(at, tag, FaultKind::NoteDelayed(by));
            return NoteFault::Delay(by);
        }
        NoteFault::None
    }

    /// Records that an armed wedge fired (called by the device when the
    /// wedged CTA reaches its exit point).
    pub(crate) fn record_wedge_fired(&mut self, at: SimTime, tag: u64) {
        self.record(at, tag, FaultKind::CtaWedged);
    }
}

/// One injected *device-level* fault class: the whole device, not a
/// single grid, is the failure domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeviceFaultKind {
    /// The device hangs: every doorbell write is lost until the hang
    /// clears (simulating a wedged command processor). Resident work
    /// keeps executing; only host→device signalling is dead.
    Hang,
    /// The device is lost transiently (driver reset / ECC storm): all
    /// resident grids are evicted and the device rejoins after the
    /// configured reset latency.
    TransientLoss,
    /// The device dies permanently: all resident grids are evicted and
    /// the device never rejoins.
    Death,
}

impl fmt::Display for DeviceFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceFaultKind::Hang => write!(f, "device_hang"),
            DeviceFaultKind::TransientLoss => write!(f, "device_transient_loss"),
            DeviceFaultKind::Death => write!(f, "device_death"),
        }
    }
}

/// Rates and magnitudes for device-scoped fault injection.
///
/// Rates are events per simulated second of wall time; zero disables the
/// class. As with [`FaultConfig`], the all-zero configuration draws no
/// randomness and perturbs nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceFaultConfig {
    /// Seed of the device-fault RNG stream.
    pub seed: u64,
    /// Device hangs per simulated second.
    pub hang_per_s: f64,
    /// Transient device losses per simulated second.
    pub loss_per_s: f64,
    /// Permanent device deaths per simulated second.
    pub death_per_s: f64,
    /// How long a hang lasts before doorbells recover.
    pub hang_duration: SimTime,
    /// How long a transient loss keeps the device out (simulated driver
    /// reset latency).
    pub reset_latency: SimTime,
}

impl DeviceFaultConfig {
    /// A device-fault seed with every class disabled.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        DeviceFaultConfig {
            seed,
            hang_per_s: 0.0,
            loss_per_s: 0.0,
            death_per_s: 0.0,
            hang_duration: SimTime::from_ms(1),
            reset_latency: SimTime::from_ms(5),
        }
    }

    /// Sets the hang rate and duration (builder style).
    #[must_use]
    pub fn with_hangs(mut self, per_s: f64, duration: SimTime) -> Self {
        self.hang_per_s = per_s;
        self.hang_duration = duration;
        self
    }

    /// Sets the transient-loss rate and reset latency (builder style).
    #[must_use]
    pub fn with_losses(mut self, per_s: f64, reset_latency: SimTime) -> Self {
        self.loss_per_s = per_s;
        self.reset_latency = reset_latency;
        self
    }

    /// Sets the permanent-death rate (builder style).
    #[must_use]
    pub fn with_deaths(mut self, per_s: f64) -> Self {
        self.death_per_s = per_s;
        self
    }

    /// Total event rate across all classes, in events per second.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.hang_per_s + self.loss_per_s + self.death_per_s
    }
}

/// The per-device fault schedule: a Poisson process over the combined
/// rate, with each arrival classified by a second draw. Both draws happen
/// for every arrival regardless of which classes are enabled, so (as with
/// [`FaultPlan`]) tightening one rate never reshuffles another class.
pub struct DeviceFaultPlan {
    cfg: DeviceFaultConfig,
    rng: SimRng,
    /// Time of the last scheduled arrival (the process is sampled
    /// lazily, strictly forward).
    cursor: SimTime,
}

impl fmt::Debug for DeviceFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceFaultPlan")
            .field("cfg", &self.cfg)
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl DeviceFaultPlan {
    /// Builds the schedule for one device. The RNG stream folds the
    /// device id in so sibling devices fail independently.
    #[must_use]
    pub fn new(cfg: DeviceFaultConfig, device_id: u32) -> Self {
        DeviceFaultPlan {
            cfg,
            rng: SimRng::stream(cfg.seed, DEVICE_FAULT_STREAM ^ u64::from(device_id)),
            cursor: SimTime::ZERO,
        }
    }

    /// The configuration this plan follows.
    #[must_use]
    pub fn config(&self) -> &DeviceFaultConfig {
        &self.cfg
    }

    /// Draws the next device fault strictly after the current cursor, or
    /// `None` if every class is disabled. Exactly two draws per arrival
    /// (inter-arrival + class), always in that order.
    pub fn next_fault(&mut self) -> Option<(SimTime, DeviceFaultKind)> {
        let total = self.cfg.total_rate();
        if total <= 0.0 {
            return None;
        }
        let gap_us = -(1.0 - self.rng.f64()).ln() / total * 1e6;
        let pick = self.rng.f64() * total;
        let at = self.cursor + SimTime::from_us_f64(gap_us).max(SimTime::from_ns(1));
        self.cursor = at;
        let kind = if pick < self.cfg.hang_per_s {
            DeviceFaultKind::Hang
        } else if pick < self.cfg.hang_per_s + self.cfg.loss_per_s {
            DeviceFaultKind::TransientLoss
        } else {
            DeviceFaultKind::Death
        };
        Some((at, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let mut plan = FaultPlan::new(FaultConfig::quiet(7));
        for i in 0..100 {
            let t = SimTime::from_us(i);
            assert_eq!(plan.on_launch(t, i, true), LaunchFault::None);
            assert_eq!(plan.on_signal(t, i), SignalFault::None);
            assert_eq!(plan.on_note(t, i), NoteFault::None);
        }
        assert!(plan.log().is_empty());
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let cfg = FaultConfig::quiet(123)
            .with_launch_reject(0.3)
            .with_signal_drop(0.4)
            .with_note_drop(0.2);
        let run = |cfg: FaultConfig| {
            let mut plan = FaultPlan::new(cfg);
            let mut out = Vec::new();
            for i in 0..64 {
                let t = SimTime::from_us(i);
                out.push((
                    plan.on_launch(t, i, true),
                    plan.on_signal(t, i),
                    plan.on_note(t, i),
                ));
            }
            (out, plan.log().len())
        };
        assert_eq!(run(cfg), run(cfg));
        let other = FaultConfig { seed: 124, ..cfg };
        assert_ne!(run(cfg).0, run(other).0, "fault stream must track the seed");
    }

    #[test]
    fn draw_order_is_independent_of_enabled_classes() {
        // Enabling one class must not reshuffle another's decisions: with
        // identical seeds, the signal decisions match whether or not
        // launch rejection is enabled.
        let base = FaultConfig::quiet(9).with_signal_drop(0.5);
        let more = base.with_launch_reject(0.5);
        let signals = |cfg: FaultConfig| {
            let mut plan = FaultPlan::new(cfg);
            (0..64)
                .map(|i| {
                    let _ = plan.on_launch(SimTime::from_us(i), i, true);
                    plan.on_signal(SimTime::from_us(i), i)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(signals(base), signals(more));
    }

    #[test]
    fn quiet_device_plan_draws_nothing() {
        let mut plan = DeviceFaultPlan::new(DeviceFaultConfig::quiet(11), 0);
        for _ in 0..8 {
            assert_eq!(plan.next_fault(), None);
        }
    }

    #[test]
    fn device_plan_is_seed_and_device_deterministic() {
        let cfg = DeviceFaultConfig::quiet(42)
            .with_hangs(50.0, SimTime::from_ms(1))
            .with_losses(20.0, SimTime::from_ms(5))
            .with_deaths(5.0);
        let seq = |cfg: DeviceFaultConfig, dev: u32| {
            let mut plan = DeviceFaultPlan::new(cfg, dev);
            (0..32)
                .map(|_| plan.next_fault().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(cfg, 3), seq(cfg, 3));
        assert_ne!(seq(cfg, 3), seq(cfg, 4), "devices must fail independently");
        let other = DeviceFaultConfig { seed: 43, ..cfg };
        assert_ne!(seq(cfg, 3), seq(other, 3));
    }

    #[test]
    fn device_plan_arrivals_advance_strictly() {
        let cfg = DeviceFaultConfig::quiet(7).with_deaths(1000.0);
        let mut plan = DeviceFaultPlan::new(cfg, 1);
        let mut last = SimTime::ZERO;
        for _ in 0..64 {
            let (at, kind) = plan.next_fault().unwrap();
            assert!(at > last);
            assert_eq!(kind, DeviceFaultKind::Death);
            last = at;
        }
    }

    #[test]
    fn device_plan_class_mix_tracks_rates() {
        let cfg = DeviceFaultConfig::quiet(99)
            .with_hangs(30.0, SimTime::from_ms(1))
            .with_losses(30.0, SimTime::from_ms(2))
            .with_deaths(30.0);
        let mut plan = DeviceFaultPlan::new(cfg, 0);
        let mut counts = [0u32; 3];
        for _ in 0..600 {
            match plan.next_fault().unwrap().1 {
                DeviceFaultKind::Hang => counts[0] += 1,
                DeviceFaultKind::TransientLoss => counts[1] += 1,
                DeviceFaultKind::Death => counts[2] += 1,
            }
        }
        for c in counts {
            assert!((100..300).contains(&c), "class mix skewed: {counts:?}");
        }
    }

    #[test]
    fn original_grids_never_get_stuck() {
        let cfg = FaultConfig::quiet(5)
            .with_stuck_flag(1.0)
            .with_stuck_exit(1.0);
        let mut plan = FaultPlan::new(cfg);
        for i in 0..32 {
            assert_eq!(plan.on_launch(SimTime::ZERO, i, false), LaunchFault::None);
        }
    }
}
