//! Deterministic fault injection for the device model.
//!
//! FLEP's flag-based preemption depends on cooperation from every layer
//! that production GPU stacks routinely fail to provide: the host's flag
//! write must reach device memory, every victim CTA must actually poll
//! the flag, launches must be accepted, and completion interrupts must
//! reach the driver. A [`FaultPlan`] injects exactly those failures —
//! deterministically, from a seed — so the runtime's recovery ladder can
//! be exercised and regression-tested like any other code path.
//!
//! # Determinism contract
//!
//! All fault decisions draw from a dedicated RNG stream
//! ([`SimRng::stream`] with [`FAULT_STREAM`]) that is independent of
//! every workload noise stream. Two consequences, both load-bearing:
//!
//! * The same `(fault seed, scenario)` pair replays the identical fault
//!   sequence, so any failing run is replayable from its seed.
//! * When the device has no plan installed (`faults disabled`), **no
//!   fault code draws randomness and no event timing changes**: golden
//!   traces and `FLEP_JSON` bytes are bit-identical to a build without
//!   the fault layer. The device only consults the plan behind an
//!   `Option`, and a plan with all rates at zero draws but never fires.

use std::fmt;

use flep_sim_core::{SimRng, SimTime};

/// Stream id of the fault-injection RNG (see [`SimRng::stream`]): chosen
/// once, never reused by another subsystem.
pub const FAULT_STREAM: u64 = 0xFA_17_57_BE_A1;

/// Probabilities and magnitudes for each injectable failure class.
///
/// All rates are per-opportunity probabilities in `[0, 1]`; zero disables
/// the class. The default configuration (via [`FaultConfig::quiet`])
/// injects nothing, which is useful for asserting that merely installing
/// a plan does not perturb a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault RNG stream (`FLEP_FAULT_SEED` in the tools).
    pub seed: u64,
    /// Probability that a launch is rejected with a transient
    /// [`crate::LaunchError::Transient`] (driver queue full / OOM blip).
    pub launch_reject: f64,
    /// Probability that a preempt doorbell (flag write) is lost entirely.
    pub signal_drop: f64,
    /// Probability that a preempt doorbell is delayed by
    /// [`FaultConfig::signal_delay_by`] on top of the normal visibility
    /// latency.
    pub signal_delay: f64,
    /// Extra visibility latency applied to delayed doorbells.
    pub signal_delay_by: SimTime,
    /// Probability that a persistent grid is a *stuck victim*: its CTAs
    /// never poll the preemption flag (e.g. the transformed kernel's poll
    /// was compiled out or the amortizing factor is effectively infinite).
    /// Flag preemption has no effect; a forced drain still works because
    /// it evicts at batch boundaries below the poll.
    pub stuck_flag: f64,
    /// Probability that a persistent grid wedges one CTA at its first
    /// preemption-exit point: the CTA sees the flag but never completes
    /// the exit (livelocked loop body). Neither flag preemption nor a
    /// forced drain can retire the grid; only a kill does.
    pub stuck_exit: f64,
    /// Probability that a host notification (dispatch/completion/preempt
    /// interrupt) is dropped.
    pub note_drop: f64,
    /// Probability that a host notification is delayed by
    /// [`FaultConfig::note_delay_by`].
    pub note_delay: f64,
    /// Extra delivery latency applied to delayed notifications.
    pub note_delay_by: SimTime,
}

impl FaultConfig {
    /// A plan seed with every fault class disabled. Installing this must
    /// be observationally identical to installing no plan at all.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            launch_reject: 0.0,
            signal_drop: 0.0,
            signal_delay: 0.0,
            signal_delay_by: SimTime::from_us(200),
            stuck_flag: 0.0,
            stuck_exit: 0.0,
            note_drop: 0.0,
            note_delay: 0.0,
            note_delay_by: SimTime::from_us(100),
        }
    }

    /// Sets the transient launch-rejection rate (builder style).
    #[must_use]
    pub fn with_launch_reject(mut self, p: f64) -> Self {
        self.launch_reject = p;
        self
    }

    /// Sets the lost-doorbell rate (builder style).
    #[must_use]
    pub fn with_signal_drop(mut self, p: f64) -> Self {
        self.signal_drop = p;
        self
    }

    /// Sets the delayed-doorbell rate and delay (builder style).
    #[must_use]
    pub fn with_signal_delay(mut self, p: f64, by: SimTime) -> Self {
        self.signal_delay = p;
        self.signal_delay_by = by;
        self
    }

    /// Sets the stuck-victim (never polls) rate (builder style).
    #[must_use]
    pub fn with_stuck_flag(mut self, p: f64) -> Self {
        self.stuck_flag = p;
        self
    }

    /// Sets the wedged-exit (sees flag, never exits) rate (builder
    /// style).
    #[must_use]
    pub fn with_stuck_exit(mut self, p: f64) -> Self {
        self.stuck_exit = p;
        self
    }

    /// Sets the dropped-notification rate (builder style).
    #[must_use]
    pub fn with_note_drop(mut self, p: f64) -> Self {
        self.note_drop = p;
        self
    }

    /// Sets the delayed-notification rate and delay (builder style).
    #[must_use]
    pub fn with_note_delay(mut self, p: f64, by: SimTime) -> Self {
        self.note_delay = p;
        self.note_delay_by = by;
        self
    }
}

/// One injected fault, as recorded in the device's fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A launch was rejected with a transient error.
    LaunchRejected,
    /// A preempt doorbell (flag write) was lost.
    SignalDropped,
    /// A preempt doorbell's visibility was delayed by the given extra
    /// latency.
    SignalDelayed(SimTime),
    /// The grid was marked a stuck victim at launch: its CTAs will never
    /// observe the preemption flag.
    StuckVictim,
    /// The grid was marked wedge-on-exit at launch: one CTA will hang at
    /// its first preemption exit instead of leaving the SM.
    WedgedExit,
    /// The wedge armed by [`FaultKind::WedgedExit`] fired: a CTA that
    /// should have exited is now hung and will never produce an event.
    CtaWedged,
    /// A host notification was dropped.
    NoteDropped,
    /// A host notification's delivery was delayed by the given extra
    /// latency.
    NoteDelayed(SimTime),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LaunchRejected => write!(f, "launch_rejected"),
            FaultKind::SignalDropped => write!(f, "signal_dropped"),
            FaultKind::SignalDelayed(by) => write!(f, "signal_delayed+{by}"),
            FaultKind::StuckVictim => write!(f, "stuck_victim"),
            FaultKind::WedgedExit => write!(f, "wedged_exit"),
            FaultKind::CtaWedged => write!(f, "cta_wedged"),
            FaultKind::NoteDropped => write!(f, "note_dropped"),
            FaultKind::NoteDelayed(by) => write!(f, "note_delayed+{by}"),
        }
    }
}

/// A fault that fired, stamped with when and against which host tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation time at which the fault was injected.
    pub at: SimTime,
    /// Host correlation tag of the affected grid/launch.
    pub tag: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// What the plan decided for one launch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaunchFault {
    /// Accept the launch normally.
    None,
    /// Reject with a transient error.
    Reject,
    /// Accept, but the grid's CTAs never poll the flag.
    StuckVictim,
    /// Accept, but one CTA wedges at its first preemption exit.
    WedgedExit,
}

/// What the plan decided for one doorbell write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SignalFault {
    None,
    Drop,
    Delay(SimTime),
}

/// What the plan decided for one host notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NoteFault {
    None,
    Drop,
    Delay(SimTime),
}

/// The seeded fault injector installed on a [`crate::GpuDevice`].
///
/// Consulted at each fault *opportunity* (launch, signal, notification);
/// draws from its private stream in a fixed order so the decision
/// sequence depends only on the seed and the order of opportunities.
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
    log: Vec<FaultEvent>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("cfg", &self.cfg)
            .field("log", &self.log.len())
            .finish()
    }
}

impl FaultPlan {
    /// Builds the injector for a configuration, deriving its RNG from the
    /// dedicated fault stream.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            rng: SimRng::stream(cfg.seed, FAULT_STREAM),
            log: Vec::new(),
        }
    }

    /// The configuration this plan injects.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Every fault injected so far, in injection order.
    #[must_use]
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    fn roll(&mut self, p: f64) -> bool {
        // Zero-rate classes draw anyway: the draw sequence must depend
        // only on the opportunity order, not on which rates are enabled,
        // so tightening one rate never reshuffles another class's faults.
        self.rng.f64() < p
    }

    fn record(&mut self, at: SimTime, tag: u64, kind: FaultKind) {
        self.log.push(FaultEvent { at, tag, kind });
    }

    /// Decides the fate of one launch attempt. `persistent` gates the
    /// stuck-victim classes (original-shape grids have no poll loop to
    /// get stuck in, but their draws still happen — see `roll`).
    pub(crate) fn on_launch(&mut self, at: SimTime, tag: u64, persistent: bool) -> LaunchFault {
        let reject = self.roll(self.cfg.launch_reject);
        let stuck = self.roll(self.cfg.stuck_flag);
        let wedged = self.roll(self.cfg.stuck_exit);
        if reject {
            self.record(at, tag, FaultKind::LaunchRejected);
            return LaunchFault::Reject;
        }
        if persistent && stuck {
            self.record(at, tag, FaultKind::StuckVictim);
            return LaunchFault::StuckVictim;
        }
        if persistent && wedged {
            self.record(at, tag, FaultKind::WedgedExit);
            return LaunchFault::WedgedExit;
        }
        LaunchFault::None
    }

    /// Decides the fate of one doorbell write.
    pub(crate) fn on_signal(&mut self, at: SimTime, tag: u64) -> SignalFault {
        let drop = self.roll(self.cfg.signal_drop);
        let delay = self.roll(self.cfg.signal_delay);
        if drop {
            self.record(at, tag, FaultKind::SignalDropped);
            return SignalFault::Drop;
        }
        if delay {
            let by = self.cfg.signal_delay_by;
            self.record(at, tag, FaultKind::SignalDelayed(by));
            return SignalFault::Delay(by);
        }
        SignalFault::None
    }

    /// Decides the fate of one host notification.
    pub(crate) fn on_note(&mut self, at: SimTime, tag: u64) -> NoteFault {
        let drop = self.roll(self.cfg.note_drop);
        let delay = self.roll(self.cfg.note_delay);
        if drop {
            self.record(at, tag, FaultKind::NoteDropped);
            return NoteFault::Drop;
        }
        if delay {
            let by = self.cfg.note_delay_by;
            self.record(at, tag, FaultKind::NoteDelayed(by));
            return NoteFault::Delay(by);
        }
        NoteFault::None
    }

    /// Records that an armed wedge fired (called by the device when the
    /// wedged CTA reaches its exit point).
    pub(crate) fn record_wedge_fired(&mut self, at: SimTime, tag: u64) {
        self.record(at, tag, FaultKind::CtaWedged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let mut plan = FaultPlan::new(FaultConfig::quiet(7));
        for i in 0..100 {
            let t = SimTime::from_us(i);
            assert_eq!(plan.on_launch(t, i, true), LaunchFault::None);
            assert_eq!(plan.on_signal(t, i), SignalFault::None);
            assert_eq!(plan.on_note(t, i), NoteFault::None);
        }
        assert!(plan.log().is_empty());
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let cfg = FaultConfig::quiet(123)
            .with_launch_reject(0.3)
            .with_signal_drop(0.4)
            .with_note_drop(0.2);
        let run = |cfg: FaultConfig| {
            let mut plan = FaultPlan::new(cfg);
            let mut out = Vec::new();
            for i in 0..64 {
                let t = SimTime::from_us(i);
                out.push((
                    plan.on_launch(t, i, true),
                    plan.on_signal(t, i),
                    plan.on_note(t, i),
                ));
            }
            (out, plan.log().len())
        };
        assert_eq!(run(cfg), run(cfg));
        let other = FaultConfig { seed: 124, ..cfg };
        assert_ne!(run(cfg).0, run(other).0, "fault stream must track the seed");
    }

    #[test]
    fn draw_order_is_independent_of_enabled_classes() {
        // Enabling one class must not reshuffle another's decisions: with
        // identical seeds, the signal decisions match whether or not
        // launch rejection is enabled.
        let base = FaultConfig::quiet(9).with_signal_drop(0.5);
        let more = base.with_launch_reject(0.5);
        let signals = |cfg: FaultConfig| {
            let mut plan = FaultPlan::new(cfg);
            (0..64)
                .map(|i| {
                    let _ = plan.on_launch(SimTime::from_us(i), i, true);
                    plan.on_signal(SimTime::from_us(i), i)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(signals(base), signals(more));
    }

    #[test]
    fn original_grids_never_get_stuck() {
        let cfg = FaultConfig::quiet(5)
            .with_stuck_flag(1.0)
            .with_stuck_exit(1.0);
        let mut plan = FaultPlan::new(cfg);
        for i in 0..32 {
            assert_eq!(plan.on_launch(SimTime::ZERO, i, false), LaunchFault::None);
        }
    }
}
