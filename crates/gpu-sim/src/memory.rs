//! Device-memory management and host↔device transfer timing.
//!
//! FLEP assumes the combined working set fits in device memory (§8); this
//! module provides the allocator and PCIe transfer model the examples use
//! to stage data, and enforces that assumption with explicit errors.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use flep_sim_core::SimTime;

/// Identifier of a device-memory allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(u64);

/// Direction of a host↔device copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Host to device.
    HostToDevice,
    /// Device to host.
    DeviceToHost,
}

/// Errors from the device-memory manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// The allocation would exceed device capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// The allocation id is unknown (double free or stale handle).
    UnknownAllocation(AllocId),
    /// A copy was larger than its target allocation.
    CopyOutOfBounds {
        /// Bytes in the copy.
        len: u64,
        /// Size of the allocation.
        capacity: u64,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, free {free} B"
                )
            }
            MemoryError::UnknownAllocation(id) => write!(f, "unknown allocation {id:?}"),
            MemoryError::CopyOutOfBounds { len, capacity } => {
                write!(f, "copy of {len} B exceeds allocation of {capacity} B")
            }
        }
    }
}

impl Error for MemoryError {}

/// A simple first-fit device-memory manager with PCIe-gen3-like transfer
/// timing.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    capacity: u64,
    used: u64,
    next_id: u64,
    allocations: HashMap<AllocId, Allocation>,
    /// Effective PCIe bandwidth in bytes per microsecond.
    bandwidth_bytes_per_us: f64,
    /// Fixed per-transfer latency (driver + DMA setup).
    transfer_latency: SimTime,
}

#[derive(Debug, Clone)]
struct Allocation {
    size: u64,
    data: Option<Vec<u8>>,
}

impl DeviceMemory {
    /// A 12 GB K40-like device with ~10 GB/s effective PCIe bandwidth.
    #[must_use]
    pub fn k40() -> Self {
        DeviceMemory::new(12 * 1024 * 1024 * 1024, 10_000.0, SimTime::from_us(10))
    }

    /// Creates a memory manager with explicit capacity (bytes), bandwidth
    /// (bytes/us), and per-transfer latency.
    #[must_use]
    pub fn new(capacity: u64, bandwidth_bytes_per_us: f64, transfer_latency: SimTime) -> Self {
        DeviceMemory {
            capacity,
            used: 0,
            next_id: 0,
            allocations: HashMap::new(),
            bandwidth_bytes_per_us,
            transfer_latency,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Allocates `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfMemory`] when the device cannot satisfy
    /// the request — FLEP's working-set assumption (§8) is then violated.
    pub fn alloc(&mut self, size: u64) -> Result<AllocId, MemoryError> {
        if size > self.free_bytes() {
            return Err(MemoryError::OutOfMemory {
                requested: size,
                free: self.free_bytes(),
            });
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.used += size;
        self.allocations.insert(id, Allocation { size, data: None });
        Ok(id)
    }

    /// Frees an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::UnknownAllocation`] on double free.
    pub fn dealloc(&mut self, id: AllocId) -> Result<(), MemoryError> {
        let alloc = self
            .allocations
            .remove(&id)
            .ok_or(MemoryError::UnknownAllocation(id))?;
        self.used -= alloc.size;
        Ok(())
    }

    /// Stores host bytes into a device allocation, returning the simulated
    /// transfer time.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown allocations or when the payload exceeds
    /// the allocation.
    pub fn copy_to_device(&mut self, id: AllocId, data: Vec<u8>) -> Result<SimTime, MemoryError> {
        let len = data.len() as u64;
        let alloc = self
            .allocations
            .get_mut(&id)
            .ok_or(MemoryError::UnknownAllocation(id))?;
        if len > alloc.size {
            return Err(MemoryError::CopyOutOfBounds {
                len,
                capacity: alloc.size,
            });
        }
        alloc.data = Some(data);
        Ok(self.transfer_time(len))
    }

    /// Reads back the bytes stored in an allocation, returning them with
    /// the simulated transfer time. Allocations never written read back as
    /// empty.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::UnknownAllocation`] for stale handles.
    pub fn copy_to_host(&self, id: AllocId) -> Result<(Vec<u8>, SimTime), MemoryError> {
        let alloc = self
            .allocations
            .get(&id)
            .ok_or(MemoryError::UnknownAllocation(id))?;
        let data = alloc.data.clone().unwrap_or_default();
        let t = self.transfer_time(data.len() as u64);
        Ok((data, t))
    }

    /// The simulated duration of transferring `bytes` in either direction.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.transfer_latency + SimTime::from_us_f64(bytes as f64 / self.bandwidth_bytes_per_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> DeviceMemory {
        DeviceMemory::new(1024, 100.0, SimTime::from_us(5))
    }

    #[test]
    fn alloc_and_free_track_usage() {
        let mut m = mem();
        let a = m.alloc(300).unwrap();
        let b = m.alloc(500).unwrap();
        assert_eq!(m.used(), 800);
        m.dealloc(a).unwrap();
        assert_eq!(m.used(), 500);
        m.dealloc(b).unwrap();
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut m = mem();
        m.alloc(1000).unwrap();
        let err = m.alloc(100).unwrap_err();
        assert_eq!(
            err,
            MemoryError::OutOfMemory {
                requested: 100,
                free: 24
            }
        );
    }

    #[test]
    fn double_free_is_an_error() {
        let mut m = mem();
        let a = m.alloc(10).unwrap();
        m.dealloc(a).unwrap();
        assert!(matches!(
            m.dealloc(a),
            Err(MemoryError::UnknownAllocation(_))
        ));
    }

    #[test]
    fn round_trip_preserves_bytes() {
        let mut m = mem();
        let a = m.alloc(16).unwrap();
        let t_up = m.copy_to_device(a, b"hello".to_vec()).unwrap();
        assert!(t_up > SimTime::from_us(5));
        let (data, _) = m.copy_to_host(a).unwrap();
        assert_eq!(&data[..], b"hello");
    }

    #[test]
    fn oversized_copy_rejected() {
        let mut m = mem();
        let a = m.alloc(2).unwrap();
        assert!(matches!(
            m.copy_to_device(a, b"abc".to_vec()),
            Err(MemoryError::CopyOutOfBounds {
                len: 3,
                capacity: 2
            })
        ));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let m = mem();
        let t0 = m.transfer_time(0);
        let t1 = m.transfer_time(1000);
        assert_eq!(t0, SimTime::from_us(5));
        assert_eq!(t1, SimTime::from_us(15));
    }

    #[test]
    fn unwritten_allocation_reads_back_empty() {
        let mut m = mem();
        let a = m.alloc(8).unwrap();
        let (data, t) = m.copy_to_host(a).unwrap();
        assert!(data.is_empty());
        assert_eq!(t, SimTime::from_us(5));
    }
}
