//! Device configuration, per-CTA resource usage, and occupancy computation.

use flep_sim_core::SimTime;

/// Static description of the simulated GPU.
///
/// Defaults model the NVIDIA Tesla K40 used in the paper's evaluation:
/// 15 SMs, 2048 threads / 65536 registers / 48 KiB shared memory per SM and
/// a hardware cap of 16 resident CTAs per SM. With the paper's 256-thread
/// CTAs this yields 8 CTAs/SM, i.e. the "120 active CTAs" the paper quotes.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident threads per SM.
    pub threads_per_sm: u32,
    /// Register file size per SM (32-bit registers).
    pub regs_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u32,
    /// Hardware limit on resident CTAs per SM regardless of resources.
    pub max_ctas_per_sm: u32,
    /// Host-side latency from a kernel launch call until the grid enters the
    /// device's dispatch FIFO (driver + command processor).
    pub launch_overhead: SimTime,
    /// GPU-side cost for one read of a pinned host-memory flag (the
    /// `temp_P`/`spa_P` poll in the transformed kernels).
    pub poll_cost: SimTime,
    /// GPU-side cost of one global-memory atomic task pull.
    pub pull_cost: SimTime,
    /// Latency from the CPU writing a pinned flag until GPU-side polls
    /// observe the new value.
    pub flag_visibility_latency: SimTime,
}

impl GpuConfig {
    /// The K40 configuration used throughout the evaluation.
    #[must_use]
    pub fn k40() -> Self {
        GpuConfig {
            num_sms: 15,
            threads_per_sm: 2048,
            regs_per_sm: 65_536,
            smem_per_sm: 48 * 1024,
            max_ctas_per_sm: 16,
            launch_overhead: SimTime::from_us(8),
            poll_cost: SimTime::from_ns(1_800),
            pull_cost: SimTime::from_ns(80),
            flag_visibility_latency: SimTime::from_us(2),
        }
    }

    /// A tiny 2-SM device matching the paper's Figure 2 illustration
    /// (two SMs, two concurrent CTAs each); handy for unit tests.
    #[must_use]
    pub fn figure2() -> Self {
        GpuConfig {
            num_sms: 2,
            threads_per_sm: 512,
            regs_per_sm: 65_536,
            smem_per_sm: 48 * 1024,
            max_ctas_per_sm: 2,
            launch_overhead: SimTime::from_us(1),
            poll_cost: SimTime::from_ns(500),
            pull_cost: SimTime::from_ns(50),
            flag_visibility_latency: SimTime::from_ns(500),
        }
    }

    /// Maximum number of CTAs with the given resource usage that one SM can
    /// host simultaneously (the paper's `max_CTAs_per_SM`).
    ///
    /// Returns 0 when a single CTA exceeds any SM resource, in which case
    /// the kernel is unlaunchable on this device.
    #[must_use]
    pub fn occupancy_per_sm(&self, usage: &ResourceUsage) -> u32 {
        let by_threads = self
            .threads_per_sm
            .checked_div(usage.threads_per_cta)
            .unwrap_or(0);
        let regs_per_cta = usage.regs_per_thread.saturating_mul(usage.threads_per_cta);
        let by_regs = self
            .regs_per_sm
            .checked_div(regs_per_cta)
            .unwrap_or(self.max_ctas_per_sm);
        let by_smem = self
            .smem_per_sm
            .checked_div(usage.smem_per_cta)
            .unwrap_or(self.max_ctas_per_sm);
        by_threads
            .min(by_regs)
            .min(by_smem)
            .min(self.max_ctas_per_sm)
    }

    /// Device-wide capacity of simultaneously active CTAs for this usage:
    /// `num_SMs * max_CTAs_per_SM`, the persistent-kernel grid size (§4.1).
    #[must_use]
    pub fn device_capacity(&self, usage: &ResourceUsage) -> u64 {
        u64::from(self.num_sms) * u64::from(self.occupancy_per_sm(usage))
    }

    /// Number of SMs needed to host `ctas` CTAs of the given usage, capped
    /// at the device size. Returns `num_sms` when occupancy is zero.
    #[must_use]
    pub fn sms_needed(&self, usage: &ResourceUsage, ctas: u64) -> u32 {
        let occ = u64::from(self.occupancy_per_sm(usage));
        if occ == 0 {
            return self.num_sms;
        }
        let sms = ctas.div_ceil(occ);
        sms.min(u64::from(self.num_sms)) as u32
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::k40()
    }
}

/// Per-CTA hardware resource requirements, as derived by the compiler's
/// linear scan of the kernel (§4.1) or supplied by the workload spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceUsage {
    /// Threads per CTA (the CUDA block size).
    pub threads_per_cta: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per CTA in bytes.
    pub smem_per_cta: u32,
}

impl ResourceUsage {
    /// The common 256-thread CTA with moderate register pressure used by
    /// most of the paper's benchmarks; yields 8 CTAs/SM on the K40.
    #[must_use]
    pub fn typical_256() -> Self {
        ResourceUsage {
            threads_per_cta: 256,
            regs_per_thread: 32,
            smem_per_cta: 0,
        }
    }
}

impl Default for ResourceUsage {
    fn default() -> Self {
        ResourceUsage::typical_256()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_hosts_120_typical_ctas() {
        let cfg = GpuConfig::k40();
        let usage = ResourceUsage::typical_256();
        assert_eq!(cfg.occupancy_per_sm(&usage), 8);
        assert_eq!(cfg.device_capacity(&usage), 120);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let cfg = GpuConfig::k40();
        let usage = ResourceUsage {
            threads_per_cta: 128,
            regs_per_thread: 255,
            smem_per_cta: 0,
        };
        // 128*255 = 32640 regs/CTA -> 65536/32640 = 2 CTAs by registers,
        // though threads would allow 16.
        assert_eq!(cfg.occupancy_per_sm(&usage), 2);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let cfg = GpuConfig::k40();
        let usage = ResourceUsage {
            threads_per_cta: 64,
            regs_per_thread: 16,
            smem_per_cta: 16 * 1024,
        };
        assert_eq!(cfg.occupancy_per_sm(&usage), 3);
    }

    #[test]
    fn occupancy_limited_by_hw_cap() {
        let cfg = GpuConfig::k40();
        let usage = ResourceUsage {
            threads_per_cta: 32,
            regs_per_thread: 8,
            smem_per_cta: 0,
        };
        // Threads would allow 64, but the hardware cap is 16.
        assert_eq!(cfg.occupancy_per_sm(&usage), 16);
    }

    #[test]
    fn zero_thread_cta_is_unlaunchable() {
        let cfg = GpuConfig::k40();
        let usage = ResourceUsage {
            threads_per_cta: 0,
            regs_per_thread: 8,
            smem_per_cta: 0,
        };
        assert_eq!(cfg.occupancy_per_sm(&usage), 0);
    }

    #[test]
    fn oversized_cta_is_unlaunchable() {
        let cfg = GpuConfig::k40();
        let usage = ResourceUsage {
            threads_per_cta: 4096,
            regs_per_thread: 8,
            smem_per_cta: 0,
        };
        assert_eq!(cfg.occupancy_per_sm(&usage), 0);
        assert_eq!(cfg.device_capacity(&usage), 0);
    }

    #[test]
    fn sms_needed_rounds_up_and_caps() {
        let cfg = GpuConfig::k40();
        let usage = ResourceUsage::typical_256(); // 8 per SM
        assert_eq!(cfg.sms_needed(&usage, 1), 1);
        assert_eq!(cfg.sms_needed(&usage, 8), 1);
        assert_eq!(cfg.sms_needed(&usage, 9), 2);
        assert_eq!(cfg.sms_needed(&usage, 40), 5);
        assert_eq!(cfg.sms_needed(&usage, 10_000), 15);
    }

    #[test]
    fn figure2_device_shape() {
        let cfg = GpuConfig::figure2();
        let usage = ResourceUsage {
            threads_per_cta: 256,
            regs_per_thread: 16,
            smem_per_cta: 0,
        };
        assert_eq!(cfg.occupancy_per_sm(&usage), 2);
        assert_eq!(cfg.device_capacity(&usage), 4);
    }
}
