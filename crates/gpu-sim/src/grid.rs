//! Grids (kernel launches) and their device-side bookkeeping.

use std::fmt;

use flep_sim_core::{SimRng, SimTime};

use crate::config::ResourceUsage;

/// Identifier of a grid (one kernel launch) on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GridId(pub u64);

impl fmt::Display for GridId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grid#{}", self.0)
    }
}

/// How the grid executes on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridShape {
    /// The untransformed kernel: one CTA per task, dispatched by the
    /// hardware FIFO; not preemptable.
    Original {
        /// Number of CTAs (= tasks) in the grid.
        ctas: u64,
    },
    /// A FLEP persistent-threads kernel (Fig. 4): `min(device capacity,
    /// total_tasks)` CTAs each pull tasks from a shared counter and poll the
    /// preemption flag every `amortize` tasks.
    Persistent {
        /// Total number of tasks the grid must process.
        total_tasks: u64,
        /// The amortizing factor `L`: tasks processed per flag poll.
        amortize: u32,
    },
}

impl GridShape {
    /// Total tasks this grid represents, independent of shape.
    #[must_use]
    pub fn total_tasks(&self) -> u64 {
        match *self {
            GridShape::Original { ctas } => ctas,
            GridShape::Persistent { total_tasks, .. } => total_tasks,
        }
    }
}

/// The cost model for one task: a base duration plus multiplicative noise.
///
/// `rel_noise` is the relative standard deviation of a per-task factor
/// centered at 1. Irregular kernels (SPMV, MD) get larger values; perfectly
/// regular ones (VA) get ~0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost {
    /// Mean duration of a task at full single-kernel occupancy.
    pub base: SimTime,
    /// Relative per-task duration noise (std dev of the factor around 1).
    pub rel_noise: f64,
}

impl TaskCost {
    /// A fixed-cost task model with no noise.
    #[must_use]
    pub fn fixed(base: SimTime) -> Self {
        TaskCost {
            base,
            rel_noise: 0.0,
        }
    }

    /// Samples the duration of one task (before contention scaling).
    pub fn sample(&self, rng: &mut SimRng) -> SimTime {
        if self.rel_noise <= 0.0 {
            return self.base;
        }
        self.base.scale(rng.noise_factor(self.rel_noise))
    }
}

/// A per-task side effect, used by functional workloads to perform real
/// computation (so tests can assert that preempted + resumed execution
/// produces exactly the results of an uninterrupted run).
pub type TaskFn = Box<dyn FnMut(u64) + Send>;

/// Everything the device needs to execute one kernel launch.
pub struct LaunchDesc {
    /// Kernel name (diagnostics and traces).
    pub name: String,
    /// Host-side correlation tag; resumed launches of the same logical
    /// kernel invocation share a tag.
    pub tag: u64,
    /// Per-CTA resource requirements.
    pub resources: ResourceUsage,
    /// Execution shape (original vs persistent-threads).
    pub shape: GridShape,
    /// Task cost model.
    pub task_cost: TaskCost,
    /// Contention-model slope for this kernel (see
    /// [`crate::Sm::contention_factor`]).
    pub mem_intensity: f64,
    /// Seed for this grid's private noise stream.
    pub seed: u64,
    /// Optional per-task side effect.
    pub task_fn: Option<TaskFn>,
    /// Index of the first task in this launch. Zero for fresh launches;
    /// resumed launches carry the victim's task offset so functional
    /// workloads see globally consistent task indices.
    pub first_task: u64,
    /// CUDA stream: grids in the same stream execute strictly in launch
    /// order (a grid waits until its predecessor retires). `None` models
    /// an independent stream per launch — the MPS default, where commands
    /// from different processes may run concurrently (§2.1).
    pub stream: Option<u32>,
    /// Additional latency before the grid reaches the device FIFO, on top
    /// of the configured launch overhead. The runtime uses this to charge
    /// working-set swap-in time (GPUSwap integration).
    pub extra_launch_delay: SimTime,
}

impl LaunchDesc {
    /// Convenience constructor with unit tag/seed and no task function.
    #[must_use]
    pub fn new(name: impl Into<String>, shape: GridShape, task_cost: TaskCost) -> Self {
        LaunchDesc {
            name: name.into(),
            tag: 0,
            resources: ResourceUsage::typical_256(),
            shape,
            task_cost,
            mem_intensity: 0.0,
            seed: 0,
            task_fn: None,
            first_task: 0,
            stream: None,
            extra_launch_delay: SimTime::ZERO,
        }
    }

    /// Sets the host correlation tag (builder style).
    #[must_use]
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Sets the resource usage (builder style).
    #[must_use]
    pub fn with_resources(mut self, resources: ResourceUsage) -> Self {
        self.resources = resources;
        self
    }

    /// Sets the contention slope (builder style).
    #[must_use]
    pub fn with_mem_intensity(mut self, c: f64) -> Self {
        self.mem_intensity = c;
        self
    }

    /// Sets the grid's noise seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a per-task side effect (builder style).
    #[must_use]
    pub fn with_task_fn(mut self, f: TaskFn) -> Self {
        self.task_fn = Some(f);
        self
    }

    /// Sets the first task index (builder style); used on resume.
    #[must_use]
    pub fn with_first_task(mut self, first: u64) -> Self {
        self.first_task = first;
        self
    }

    /// Assigns the launch to a CUDA stream (builder style): same-stream
    /// grids serialize in launch order.
    #[must_use]
    pub fn with_stream(mut self, stream: u32) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Adds pre-FIFO launch latency (builder style); used for swap-in
    /// charges.
    #[must_use]
    pub fn with_extra_launch_delay(mut self, delay: SimTime) -> Self {
        self.extra_launch_delay = delay;
        self
    }

    /// A copy of this descriptor without the task closure (task functions
    /// are not cloneable; slices/resumes re-attach their own).
    #[must_use]
    pub fn clone_without_task_fn(&self) -> LaunchDesc {
        LaunchDesc {
            name: self.name.clone(),
            tag: self.tag,
            resources: self.resources,
            shape: self.shape,
            task_cost: self.task_cost,
            mem_intensity: self.mem_intensity,
            seed: self.seed,
            task_fn: None,
            first_task: self.first_task,
            stream: self.stream,
            extra_launch_delay: self.extra_launch_delay,
        }
    }
}

impl fmt::Debug for LaunchDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaunchDesc")
            .field("name", &self.name)
            .field("tag", &self.tag)
            .field("resources", &self.resources)
            .field("shape", &self.shape)
            .field("task_cost", &self.task_cost)
            .field("mem_intensity", &self.mem_intensity)
            .field("seed", &self.seed)
            .field("task_fn", &self.task_fn.as_ref().map(|_| "<fn>"))
            .field("first_task", &self.first_task)
            .field("stream", &self.stream)
            .finish()
    }
}

/// The preemption signal the host writes into the pinned flag.
///
/// Following Fig. 4(c), a single integer (`spa_P`) encodes both temporal and
/// spatial preemption: CTAs whose `%smid` is below the value exit. A value
/// of at least the SM count is therefore equivalent to temporal preemption
/// (yield everything); the paper notes this equivalence explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptSignal {
    /// No preemption requested; CTAs keep pulling tasks.
    None,
    /// CTAs on SMs with `%smid < n` must exit at the next poll.
    YieldSms(u32),
}

impl PreemptSignal {
    /// Whether a CTA hosted on `sm_id` must exit under this signal.
    #[must_use]
    pub fn must_exit(&self, sm_id: u32) -> bool {
        match *self {
            PreemptSignal::None => false,
            PreemptSignal::YieldSms(n) => sm_id < n,
        }
    }
}

/// Lifecycle of a grid as observable from outside the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridPhase {
    /// Launched, still in flight to the device (launch overhead).
    InFlight,
    /// In the device FIFO, no CTA dispatched yet.
    Queued,
    /// At least one CTA dispatched and work remains.
    Running,
    /// All tasks processed; grid retired.
    Completed,
    /// Preempted before finishing; grid retired with tasks remaining.
    Preempted,
}

/// How (if at all) a grid's CTAs misbehave around preemption, decided at
/// launch time by the device's [`crate::FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StuckMode {
    /// Healthy: CTAs poll the flag and exit when told to.
    Responsive,
    /// CTAs never observe the preemption flag (polls compiled out or the
    /// amortizing factor is effectively infinite). Flag writes are inert;
    /// a forced drain still evicts at batch boundaries.
    IgnoreFlag,
    /// CTAs see the flag, but the first `stall_left` of them that should
    /// exit hang instead of leaving the SM. Only a kill recovers.
    WedgeOnExit,
}

/// Device-internal grid state.
pub(crate) struct Grid {
    pub(crate) id: GridId,
    pub(crate) name: String,
    pub(crate) tag: u64,
    pub(crate) resources: ResourceUsage,
    pub(crate) shape: GridShape,
    pub(crate) task_cost: TaskCost,
    pub(crate) mem_intensity: f64,
    pub(crate) rng: SimRng,
    pub(crate) task_fn: Option<TaskFn>,
    pub(crate) first_task: u64,
    pub(crate) phase: GridPhase,
    /// CTAs not yet dispatched (original: remaining CTAs; persistent:
    /// remaining persistent workers to place).
    pub(crate) pending_ctas: u64,
    /// CTAs currently resident on SMs.
    pub(crate) active_ctas: u64,
    /// Original shape: CTAs fully executed. Persistent: unused.
    pub(crate) completed_ctas: u64,
    /// Persistent shape: next unclaimed task index (relative to launch).
    pub(crate) next_task: u64,
    /// Persistent shape: tasks whose batches have completed.
    pub(crate) completed_tasks: u64,
    /// Persistent shape: per-round claim quota, keyed by the timestamp of
    /// the round's first claim (see `GpuDevice::start_batch`).
    pub(crate) round_quota: Option<(SimTime, u64)>,
    /// Latest host-written preemption signal and when it becomes visible
    /// to GPU-side polls.
    pub(crate) signal: PreemptSignal,
    pub(crate) signal_visible_at: SimTime,
    /// When the first CTA was dispatched.
    pub(crate) dispatch_started: Option<SimTime>,
    /// When the launch call happened on the host.
    pub(crate) launched_at: SimTime,
    /// Total CTAs this grid will try to place.
    pub(crate) planned_ctas: u64,
    /// Index of the launch's interned stream lane on the device, if the
    /// launch named a stream.
    pub(crate) stream_lane: Option<u32>,
    /// Resident thread total per SM, maintained on CTA place/remove so
    /// contention queries need not walk residents.
    pub(crate) threads_on_sm: Vec<u32>,
    /// Cached `occupancy * threads_per_cta / threads_per_sm` — the thread
    /// load this kernel puts on an SM it fully owns. A pure function of
    /// the launch resources and the device config, so it is computed once
    /// at launch (with the exact expression the per-batch contention
    /// query used) instead of on every batch claim.
    pub(crate) full_own_load: f64,
    /// Fault-injected preemption misbehavior (always `Responsive` without
    /// an active fault plan).
    pub(crate) stuck: StuckMode,
    /// With [`StuckMode::WedgeOnExit`]: how many more exiting CTAs will
    /// wedge instead of leaving.
    pub(crate) stall_left: u32,
    /// Set by a forced drain: overrides the flag (and `IgnoreFlag`
    /// stuckness) with an unconditional yield-everything, modelling the
    /// driver's slice-boundary eviction fallback.
    pub(crate) forced_exit: bool,
}

impl Grid {
    /// Signal value visible to a poll happening at `now`.
    pub(crate) fn visible_signal(&self, now: SimTime) -> PreemptSignal {
        if now >= self.signal_visible_at {
            self.signal
        } else {
            PreemptSignal::None
        }
    }

    /// Remaining unclaimed tasks (persistent shape).
    pub(crate) fn unclaimed_tasks(&self) -> u64 {
        self.shape.total_tasks() - self.next_task
    }

    /// The signal a CTA's poll actually *acts on* at `now`: what
    /// [`Grid::visible_signal`] returns, filtered through fault-injected
    /// stuckness and overridden by a forced drain. Without faults this is
    /// exactly `visible_signal` (the default `Responsive`/`forced_exit ==
    /// false` path), so fault-free behavior is untouched.
    pub(crate) fn poll_signal(&self, now: SimTime) -> PreemptSignal {
        if self.forced_exit {
            return PreemptSignal::YieldSms(u32::MAX);
        }
        if self.stuck == StuckMode::IgnoreFlag {
            return PreemptSignal::None;
        }
        self.visible_signal(now)
    }
}

impl fmt::Debug for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Grid")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("tag", &self.tag)
            .field("phase", &self.phase)
            .field("shape", &self.shape)
            .field("pending_ctas", &self.pending_ctas)
            .field("active_ctas", &self.active_ctas)
            .field("next_task", &self.next_task)
            .field("completed_tasks", &self.completed_tasks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preempt_signal_thresholds() {
        let none = PreemptSignal::None;
        assert!(!none.must_exit(0));
        let spatial = PreemptSignal::YieldSms(5);
        assert!(spatial.must_exit(0));
        assert!(spatial.must_exit(4));
        assert!(!spatial.must_exit(5));
        assert!(!spatial.must_exit(14));
        let temporal = PreemptSignal::YieldSms(15);
        assert!((0..15).all(|sm| temporal.must_exit(sm)));
    }

    #[test]
    fn task_cost_fixed_has_no_noise() {
        let mut rng = SimRng::seed_from(1);
        let cost = TaskCost::fixed(SimTime::from_us(5));
        for _ in 0..10 {
            assert_eq!(cost.sample(&mut rng), SimTime::from_us(5));
        }
    }

    #[test]
    fn task_cost_noise_varies_but_stays_positive() {
        let mut rng = SimRng::seed_from(2);
        let cost = TaskCost {
            base: SimTime::from_us(10),
            rel_noise: 0.3,
        };
        let samples: Vec<SimTime> = (0..100).map(|_| cost.sample(&mut rng)).collect();
        assert!(samples.iter().any(|&s| s != samples[0]));
        assert!(samples.iter().all(|s| !s.is_zero()));
    }

    #[test]
    fn shape_total_tasks() {
        assert_eq!(GridShape::Original { ctas: 7 }.total_tasks(), 7);
        assert_eq!(
            GridShape::Persistent {
                total_tasks: 9,
                amortize: 4
            }
            .total_tasks(),
            9
        );
    }

    #[test]
    fn launch_desc_builder_chain() {
        let desc = LaunchDesc::new(
            "k",
            GridShape::Original { ctas: 1 },
            TaskCost::fixed(SimTime::from_us(1)),
        )
        .with_tag(7)
        .with_seed(3)
        .with_mem_intensity(0.5)
        .with_first_task(10);
        assert_eq!(desc.tag, 7);
        assert_eq!(desc.seed, 3);
        assert_eq!(desc.first_task, 10);
        assert!(format!("{desc:?}").contains("\"k\""));
    }
}
