//! The SM-placement index: a resident-count-bucketed bitmap over SMs that
//! answers "least-loaded SM passing a filter" without scanning every SM.
//!
//! The hardware CTA dispatcher places each CTA on the SM with the fewest
//! resident CTAs (lowest `%smid` breaking ties) among those that fit it and
//! are not excluded by a visible preemption signal. The naive formulation is
//! a `min_by_key` over all SMs per placed CTA; on the hot path that scan
//! runs once per CTA placement. This index maintains, per exact resident
//! count `c`, a bitmap of the SMs currently hosting `c` CTAs, so a query
//! walks counts in ascending order and SM ids in ascending order within a
//! count — the identical total order `(resident_count, sm_id)` — and stops
//! at the first SM the caller's filter accepts.

/// Index over SMs keyed by `(resident_count, sm_id)`, kept in sync by the
/// device on every CTA place/remove.
#[derive(Debug, Clone)]
pub struct PlacementIndex {
    /// `buckets[c]` is a bitmap (64 SMs per word) of the SMs with exactly
    /// `c` resident CTAs.
    buckets: Vec<Vec<u64>>,
    /// Current resident count per SM (mirror of the bucket an SM is in).
    counts: Vec<u32>,
}

impl PlacementIndex {
    /// Creates the index for `num_sms` SMs, all idle, with resident counts
    /// bounded by `max_ctas_per_sm`.
    #[must_use]
    pub fn new(num_sms: u32, max_ctas_per_sm: u32) -> Self {
        let words = (num_sms as usize).div_ceil(64).max(1);
        let mut buckets = vec![vec![0u64; words]; max_ctas_per_sm as usize + 1];
        for sm in 0..num_sms {
            buckets[0][sm as usize / 64] |= 1u64 << (sm % 64);
        }
        PlacementIndex {
            buckets,
            counts: vec![0; num_sms as usize],
        }
    }

    /// The resident count the index currently holds for `sm`.
    #[must_use]
    pub fn count(&self, sm: u32) -> u32 {
        self.counts[sm as usize]
    }

    /// Records a CTA placed on `sm`, moving it one bucket up.
    ///
    /// # Panics
    ///
    /// Panics if the SM is already at the maximum resident count — the
    /// dispatcher must have checked `fits` first.
    pub fn on_place(&mut self, sm: u32) {
        let c = self.counts[sm as usize] as usize;
        assert!(
            c + 1 < self.buckets.len(),
            "placement index: SM {sm} beyond max resident count"
        );
        let (word, bit) = (sm as usize / 64, 1u64 << (sm % 64));
        self.buckets[c][word] &= !bit;
        self.buckets[c + 1][word] |= bit;
        self.counts[sm as usize] += 1;
    }

    /// Records a CTA removed from `sm`, moving it one bucket down.
    ///
    /// # Panics
    ///
    /// Panics if the index holds no CTAs for the SM — a device bookkeeping
    /// bug.
    pub fn on_remove(&mut self, sm: u32) {
        let c = self.counts[sm as usize] as usize;
        assert!(c > 0, "placement index: remove from empty SM {sm}");
        let (word, bit) = (sm as usize / 64, 1u64 << (sm % 64));
        self.buckets[c][word] &= !bit;
        self.buckets[c - 1][word] |= bit;
        self.counts[sm as usize] -= 1;
    }

    /// The first SM in ascending `(resident_count, sm_id)` order accepted
    /// by `pred` — exactly the SM a filtered
    /// `min_by_key(|(id, sm)| (sm.resident_count(), id))` scan would pick.
    #[must_use]
    pub fn least_loaded(&self, mut pred: impl FnMut(u32) -> bool) -> Option<u32> {
        for bucket in &self.buckets {
            for (wi, &word) in bucket.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let sm = (wi as u32) * 64 + bits.trailing_zeros();
                    if pred(sm) {
                        return Some(sm);
                    }
                    bits &= bits - 1;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The naive scan the index replaces, over explicit counts.
    fn naive(counts: &[u32], mut pred: impl FnMut(u32) -> bool) -> Option<u32> {
        (0..counts.len() as u32)
            .filter(|&i| pred(i))
            .min_by_key(|&i| (counts[i as usize], i))
    }

    #[test]
    fn empty_index_prefers_lowest_id() {
        let idx = PlacementIndex::new(15, 16);
        assert_eq!(idx.least_loaded(|_| true), Some(0));
        assert_eq!(idx.least_loaded(|sm| sm >= 7), Some(7));
        assert_eq!(idx.least_loaded(|_| false), None);
    }

    #[test]
    fn tracks_counts_and_matches_naive_order() {
        let mut idx = PlacementIndex::new(4, 8);
        // Load SM 0 twice, SM 1 once.
        idx.on_place(0);
        idx.on_place(0);
        idx.on_place(1);
        let counts = [2, 1, 0, 0];
        for lo in 0..4 {
            let got = idx.least_loaded(|sm| sm >= lo);
            assert_eq!(got, naive(&counts, |sm| sm >= lo), "lo={lo}");
        }
        idx.on_remove(0);
        idx.on_remove(0);
        assert_eq!(idx.count(0), 0);
        assert_eq!(idx.least_loaded(|_| true), Some(0));
    }

    #[test]
    fn spans_multiple_bitmap_words() {
        let mut idx = PlacementIndex::new(130, 4);
        for sm in 0..129 {
            idx.on_place(sm);
        }
        assert_eq!(idx.least_loaded(|_| true), Some(129));
        idx.on_place(129);
        assert_eq!(idx.least_loaded(|_| true), Some(0));
        assert_eq!(idx.least_loaded(|sm| sm > 100), Some(101));
    }

    #[test]
    #[should_panic(expected = "remove from empty")]
    fn remove_from_idle_sm_panics() {
        let mut idx = PlacementIndex::new(2, 4);
        idx.on_remove(1);
    }

    /// Every SM at `max_ctas_per_sm`: the index keeps answering queries
    /// from the top bucket (the caller's fit predicate is what rules a
    /// full SM out), a capacity-aware predicate sees no candidate, and
    /// freeing a single slot anywhere makes exactly that SM the answer.
    #[test]
    fn saturated_device_keeps_order_and_recovers_freed_slot() {
        const SMS: u32 = 15;
        const MAX: u32 = 8;
        let mut idx = PlacementIndex::new(SMS, MAX);
        for sm in 0..SMS {
            for _ in 0..MAX {
                idx.on_place(sm);
            }
        }
        for sm in 0..SMS {
            assert_eq!(idx.count(sm), MAX);
        }
        // Unfiltered: lowest SM id of the (uniform) top bucket.
        assert_eq!(idx.least_loaded(|_| true), Some(0));
        assert_eq!(idx.least_loaded(|sm| sm >= 9), Some(9));
        // A predicate that respects capacity finds nothing to place on.
        assert_eq!(idx.least_loaded(|sm| idx.count(sm) < MAX), None);
        // Free one CTA mid-range: that SM becomes the unique least-loaded
        // answer, in both the filtered and unfiltered views.
        idx.on_remove(7);
        assert_eq!(idx.least_loaded(|_| true), Some(7));
        assert_eq!(idx.least_loaded(|sm| idx.count(sm) < MAX), Some(7));
        // Re-saturate: back to the full-device answers.
        idx.on_place(7);
        assert_eq!(idx.least_loaded(|_| true), Some(0));
        assert_eq!(idx.least_loaded(|sm| idx.count(sm) < MAX), None);
    }
}
