//! GPUSwap-style device-memory oversubscription (the paper's stated
//! future-work integration, §8): treat device memory as a cache over host
//! memory, transparently swapping kernels' working sets in and out.
//!
//! FLEP itself assumes the combined working set fits in device memory;
//! this module lifts that assumption the way Kehne et al.'s GPUSwap does —
//! at kernel-launch granularity, with LRU eviction and PCIe-modelled
//! transfer costs. The FLEP runtime consults a [`SwapManager`] before each
//! (re)launch and charges the swap-in time as extra launch latency.

use std::collections::HashMap;

use flep_sim_core::SimTime;

/// Aggregate swap statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Working sets moved host→device.
    pub swap_ins: u64,
    /// Working sets evicted device→host.
    pub swap_outs: u64,
    /// Bytes transferred host→device.
    pub bytes_in: u64,
    /// Bytes transferred device→host.
    pub bytes_out: u64,
    /// Launches whose working set was already resident.
    pub hits: u64,
}

/// Errors from working-set registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkingSetTooLarge {
    /// Bytes requested.
    pub requested: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for WorkingSetTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "working set of {} B exceeds device memory of {} B",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for WorkingSetTooLarge {}

/// An LRU working-set cache over device memory.
///
/// Keys are owner ids (the runtime uses job indices). `acquire` makes an
/// owner's working set resident — evicting least-recently-used other sets
/// as needed — and returns the simulated transfer time (swap-outs of dirty
/// victims plus the swap-in), which the caller adds to its launch latency.
///
/// # Example
///
/// ```
/// use flep_gpu_sim::SwapManager;
/// use flep_sim_core::SimTime;
///
/// // 1 GiB device, 10 GB/s PCIe.
/// let mut swap = SwapManager::new(1 << 30, 10_000.0, SimTime::from_us(10));
/// let a = swap.acquire(1, 700 << 20, SimTime::ZERO).unwrap();
/// assert!(a > SimTime::ZERO); // cold swap-in
/// let b = swap.acquire(1, 700 << 20, SimTime::from_ms(1)).unwrap();
/// assert!(b.is_zero()); // hit
/// // A second large set forces the first out.
/// let c = swap.acquire(2, 700 << 20, SimTime::from_ms(2)).unwrap();
/// assert!(c > a); // eviction + swap-in
/// ```
#[derive(Debug, Clone)]
pub struct SwapManager {
    capacity: u64,
    used: u64,
    resident: HashMap<u64, Resident>,
    bandwidth_bytes_per_us: f64,
    transfer_latency: SimTime,
    stats: SwapStats,
}

#[derive(Debug, Clone, Copy)]
struct Resident {
    bytes: u64,
    last_use: SimTime,
}

impl SwapManager {
    /// Creates a manager over `capacity` bytes of device memory with the
    /// given PCIe bandwidth (bytes/µs) and per-transfer latency.
    #[must_use]
    pub fn new(capacity: u64, bandwidth_bytes_per_us: f64, transfer_latency: SimTime) -> Self {
        SwapManager {
            capacity,
            used: 0,
            resident: HashMap::new(),
            bandwidth_bytes_per_us,
            transfer_latency,
            stats: SwapStats::default(),
        }
    }

    /// A 12 GB K40 with ~10 GB/s effective PCIe bandwidth.
    #[must_use]
    pub fn k40() -> Self {
        SwapManager::new(12 * 1024 * 1024 * 1024, 10_000.0, SimTime::from_us(10))
    }

    /// Swap statistics so far.
    #[must_use]
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Bytes currently resident.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Whether `owner`'s working set is resident.
    #[must_use]
    pub fn is_resident(&self, owner: u64) -> bool {
        self.resident.contains_key(&owner)
    }

    fn transfer_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.transfer_latency + SimTime::from_us_f64(bytes as f64 / self.bandwidth_bytes_per_us)
    }

    /// Makes `owner`'s working set of `bytes` resident, evicting LRU
    /// victims as needed. Returns the total transfer time (evictions +
    /// swap-in; zero on a hit).
    ///
    /// # Errors
    ///
    /// Returns [`WorkingSetTooLarge`] when a single working set exceeds
    /// device capacity.
    pub fn acquire(
        &mut self,
        owner: u64,
        bytes: u64,
        now: SimTime,
    ) -> Result<SimTime, WorkingSetTooLarge> {
        if bytes > self.capacity {
            return Err(WorkingSetTooLarge {
                requested: bytes,
                capacity: self.capacity,
            });
        }
        if let Some(r) = self.resident.get_mut(&owner) {
            if r.bytes == bytes {
                r.last_use = now;
                self.stats.hits += 1;
                return Ok(SimTime::ZERO);
            }
            // Size changed: drop and re-acquire.
            let old = *r;
            self.resident.remove(&owner);
            self.used -= old.bytes;
        }

        let mut cost = SimTime::ZERO;
        // Evict LRU sets until the new one fits.
        while self.used + bytes > self.capacity {
            let victim = self
                .resident
                .iter()
                .min_by_key(|(id, r)| (r.last_use, **id))
                .map(|(&id, _)| id)
                .expect("oversubscribed with no resident victims");
            let evicted = self.resident.remove(&victim).expect("victim resident");
            self.used -= evicted.bytes;
            self.stats.swap_outs += 1;
            self.stats.bytes_out += evicted.bytes;
            cost += self.transfer_time(evicted.bytes);
        }

        self.used += bytes;
        self.resident.insert(
            owner,
            Resident {
                bytes,
                last_use: now,
            },
        );
        self.stats.swap_ins += 1;
        self.stats.bytes_in += bytes;
        cost += self.transfer_time(bytes);
        Ok(cost)
    }

    /// Marks a use of an already-resident working set (LRU refresh).
    pub fn touch(&mut self, owner: u64, now: SimTime) {
        if let Some(r) = self.resident.get_mut(&owner) {
            r.last_use = now;
        }
    }

    /// Releases an owner's working set without a transfer (the data is
    /// dead — e.g. the process exited).
    pub fn release(&mut self, owner: u64) {
        if let Some(r) = self.resident.remove(&owner) {
            self.used -= r.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(capacity: u64) -> SwapManager {
        SwapManager::new(capacity, 100.0, SimTime::from_us(5))
    }

    #[test]
    fn cold_acquire_pays_transfer() {
        let mut m = mgr(1000);
        let t = m.acquire(1, 500, SimTime::ZERO).unwrap();
        assert_eq!(t, SimTime::from_us(10)); // 5us latency + 500/100
        assert!(m.is_resident(1));
        assert_eq!(m.stats().swap_ins, 1);
    }

    #[test]
    fn warm_acquire_is_free() {
        let mut m = mgr(1000);
        m.acquire(1, 500, SimTime::ZERO).unwrap();
        let t = m.acquire(1, 500, SimTime::from_us(100)).unwrap();
        assert!(t.is_zero());
        assert_eq!(m.stats().hits, 1);
    }

    #[test]
    fn eviction_follows_lru() {
        let mut m = mgr(1000);
        m.acquire(1, 400, SimTime::from_us(0)).unwrap();
        m.acquire(2, 400, SimTime::from_us(1)).unwrap();
        m.touch(1, SimTime::from_us(2)); // 2 is now least recent
        m.acquire(3, 400, SimTime::from_us(3)).unwrap();
        assert!(m.is_resident(1));
        assert!(!m.is_resident(2), "LRU victim must be owner 2");
        assert!(m.is_resident(3));
        assert_eq!(m.stats().swap_outs, 1);
    }

    #[test]
    fn eviction_cost_counts_both_directions() {
        let mut m = mgr(1000);
        m.acquire(1, 1000, SimTime::ZERO).unwrap();
        let t = m.acquire(2, 1000, SimTime::from_us(1)).unwrap();
        // Evict 1000 out (15us) + bring 1000 in (15us).
        assert_eq!(t, SimTime::from_us(30));
        assert_eq!(m.stats().bytes_out, 1000);
    }

    #[test]
    fn oversized_set_rejected() {
        let mut m = mgr(1000);
        assert!(m.acquire(1, 2000, SimTime::ZERO).is_err());
    }

    #[test]
    fn resize_reacquires() {
        let mut m = mgr(1000);
        m.acquire(1, 300, SimTime::ZERO).unwrap();
        let t = m.acquire(1, 600, SimTime::from_us(1)).unwrap();
        assert!(t > SimTime::ZERO);
        assert_eq!(m.used(), 600);
    }

    #[test]
    fn release_frees_without_transfer() {
        let mut m = mgr(1000);
        m.acquire(1, 800, SimTime::ZERO).unwrap();
        m.release(1);
        assert_eq!(m.used(), 0);
        assert_eq!(m.stats().swap_outs, 0);
    }
}
