//! Failure topology and correlated outage injection.
//!
//! The per-device fault plans in [`crate::fault`] treat every device as
//! an independent failure domain. Real fleets do not fail that way:
//! devices share racks (one power feed, one PDU breaker) and racks share
//! zones (one network spine, one cooling loop), so faults arrive in
//! correlated bursts — a rack power-cycles and every device in it resets
//! with slightly staggered bring-up latencies, or a whole zone drops for
//! the duration of a network partition. [`FailureTopology`] describes the
//! `zone → rack → device` tree and [`CorrelatedFaultPlan`] draws those
//! burst events from a dedicated RNG stream.
//!
//! # Determinism contract
//!
//! Identical to [`crate::FaultPlan`]'s: the plan draws from its own
//! stream ([`CORRELATED_FAULT_STREAM`]), independent of every workload
//! and per-device fault stream, with a fixed number of draws per arrival
//! (inter-arrival gap, class, target — always all three, in that order).
//! A quiet configuration draws nothing, so correlated-faults-off runs
//! are byte-identical to builds without this module; any chaos run
//! replays exactly from its seed.

use std::fmt;
use std::ops::Range;

use flep_sim_core::{SimRng, SimTime};

/// Stream id of the correlated-outage RNG (see [`SimRng::stream`]):
/// chosen once, never reused by another subsystem.
pub const CORRELATED_FAULT_STREAM: u64 = 0xC0_44_E1_A7_ED;

/// The `zone → rack → device` failure-domain tree. Devices are numbered
/// row-major: device ids `[0, devices_per_rack)` form rack 0, racks
/// `[0, racks_per_zone)` form zone 0, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureTopology {
    /// Number of zones (at least 1).
    pub zones: u32,
    /// Racks per zone (at least 1).
    pub racks_per_zone: u32,
    /// Devices per rack (at least 1).
    pub devices_per_rack: u32,
}

impl FailureTopology {
    /// Builds a topology, clamping every level to at least 1.
    #[must_use]
    pub fn new(zones: u32, racks_per_zone: u32, devices_per_rack: u32) -> Self {
        FailureTopology {
            zones: zones.max(1),
            racks_per_zone: racks_per_zone.max(1),
            devices_per_rack: devices_per_rack.max(1),
        }
    }

    /// A topology with every device in one rack of one zone — the
    /// degenerate tree in which correlated faults hit everything.
    #[must_use]
    pub fn flat(devices: u32) -> Self {
        FailureTopology::new(1, 1, devices)
    }

    /// Total devices in the tree.
    #[must_use]
    pub fn devices(&self) -> u32 {
        self.zones * self.racks_per_zone * self.devices_per_rack
    }

    /// Total racks in the tree.
    #[must_use]
    pub fn racks(&self) -> u32 {
        self.zones * self.racks_per_zone
    }

    /// The rack a device belongs to (global rack id).
    #[must_use]
    pub fn rack_of(&self, device: u32) -> u32 {
        (device / self.devices_per_rack).min(self.racks().saturating_sub(1))
    }

    /// The zone a device belongs to.
    #[must_use]
    pub fn zone_of(&self, device: u32) -> u32 {
        (self.rack_of(device) / self.racks_per_zone).min(self.zones - 1)
    }

    /// Device ids of one rack, in ascending order.
    #[must_use]
    pub fn rack_devices(&self, rack: u32) -> Range<u32> {
        let rack = rack.min(self.racks().saturating_sub(1));
        let start = rack * self.devices_per_rack;
        start..start + self.devices_per_rack
    }

    /// Device ids of one zone, in ascending order.
    #[must_use]
    pub fn zone_devices(&self, zone: u32) -> Range<u32> {
        let zone = zone.min(self.zones - 1);
        let per_zone = self.racks_per_zone * self.devices_per_rack;
        let start = zone * per_zone;
        start..start + per_zone
    }
}

impl fmt::Display for FailureTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}",
            self.zones, self.racks_per_zone, self.devices_per_rack
        )
    }
}

/// One correlated outage event: a whole failure domain, not a single
/// device, is the blast radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CorrelatedFaultKind {
    /// A zone drops transiently (network partition / cooling trip): every
    /// device in the zone is lost and every one rejoins together after
    /// the configured outage duration.
    ZoneOutage {
        /// The affected zone.
        zone: u32,
    },
    /// A rack power-cycles: every device in the rack is lost and each
    /// rejoins with its own staggered bring-up latency (position in the
    /// rack × the configured stagger, on top of the base reset).
    RackPowerCycle {
        /// The affected (global) rack id.
        rack: u32,
    },
}

impl fmt::Display for CorrelatedFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrelatedFaultKind::ZoneOutage { zone } => write!(f, "zone_outage@z{zone}"),
            CorrelatedFaultKind::RackPowerCycle { rack } => write!(f, "rack_power_cycle@r{rack}"),
        }
    }
}

/// Rates and magnitudes for correlated outage injection. Rates are events
/// per simulated second across the whole fleet; zero disables the class.
/// The all-zero configuration draws no randomness and perturbs nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedFaultConfig {
    /// Seed of the correlated-outage RNG stream.
    pub seed: u64,
    /// Zone outages per simulated second (fleet-wide; the zone is drawn
    /// uniformly per event).
    pub zone_outage_per_s: f64,
    /// How long a zone outage keeps its devices out.
    pub zone_outage_duration: SimTime,
    /// Rack power-cycles per simulated second (fleet-wide; the rack is
    /// drawn uniformly per event).
    pub rack_cycle_per_s: f64,
    /// Base bring-up latency after a rack power-cycle.
    pub rack_reset_base: SimTime,
    /// Extra bring-up latency per device position within the rack, so
    /// rack members rejoin staggered instead of thundering back at once.
    pub rack_reset_stagger: SimTime,
}

impl CorrelatedFaultConfig {
    /// A correlated-outage seed with every class disabled.
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        CorrelatedFaultConfig {
            seed,
            zone_outage_per_s: 0.0,
            zone_outage_duration: SimTime::from_ms(4),
            rack_cycle_per_s: 0.0,
            rack_reset_base: SimTime::from_ms(2),
            rack_reset_stagger: SimTime::from_us(250),
        }
    }

    /// Sets the zone-outage rate and duration (builder style).
    #[must_use]
    pub fn with_zone_outages(mut self, per_s: f64, duration: SimTime) -> Self {
        self.zone_outage_per_s = per_s;
        self.zone_outage_duration = duration;
        self
    }

    /// Sets the rack power-cycle rate and bring-up latencies (builder
    /// style).
    #[must_use]
    pub fn with_rack_cycles(mut self, per_s: f64, base: SimTime, stagger: SimTime) -> Self {
        self.rack_cycle_per_s = per_s;
        self.rack_reset_base = base;
        self.rack_reset_stagger = stagger;
        self
    }

    /// Total event rate across all classes, in events per second.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.zone_outage_per_s + self.rack_cycle_per_s
    }
}

/// The fleet-wide correlated outage schedule: a Poisson process over the
/// combined rate, each arrival classified and targeted by further draws.
/// Exactly three draws per arrival (gap, class, target), always in that
/// order, so tightening one rate never reshuffles the other class — the
/// same discipline as [`crate::DeviceFaultPlan`].
pub struct CorrelatedFaultPlan {
    cfg: CorrelatedFaultConfig,
    topo: FailureTopology,
    rng: SimRng,
    cursor: SimTime,
}

impl fmt::Debug for CorrelatedFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CorrelatedFaultPlan")
            .field("cfg", &self.cfg)
            .field("topo", &self.topo)
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl CorrelatedFaultPlan {
    /// Builds the fleet schedule, deriving its RNG from the dedicated
    /// correlated-outage stream.
    #[must_use]
    pub fn new(cfg: CorrelatedFaultConfig, topo: FailureTopology) -> Self {
        CorrelatedFaultPlan {
            cfg,
            topo,
            rng: SimRng::stream(cfg.seed, CORRELATED_FAULT_STREAM),
            cursor: SimTime::ZERO,
        }
    }

    /// The configuration this plan follows.
    #[must_use]
    pub fn config(&self) -> &CorrelatedFaultConfig {
        &self.cfg
    }

    /// The topology events are targeted at.
    #[must_use]
    pub fn topology(&self) -> &FailureTopology {
        &self.topo
    }

    /// Draws the next correlated outage strictly after the cursor, or
    /// `None` if every class is disabled.
    pub fn next_event(&mut self) -> Option<(SimTime, CorrelatedFaultKind)> {
        let total = self.cfg.total_rate();
        if total <= 0.0 {
            return None;
        }
        let gap_us = -(1.0 - self.rng.f64()).ln() / total * 1e6;
        let pick = self.rng.f64() * total;
        let target = self.rng.f64();
        let at = self.cursor + SimTime::from_us_f64(gap_us).max(SimTime::from_ns(1));
        self.cursor = at;
        let kind = if pick < self.cfg.zone_outage_per_s {
            let zone = ((target * f64::from(self.topo.zones)) as u32).min(self.topo.zones - 1);
            CorrelatedFaultKind::ZoneOutage { zone }
        } else {
            let racks = self.topo.racks();
            let rack = ((target * f64::from(racks)) as u32).min(racks - 1);
            CorrelatedFaultKind::RackPowerCycle { rack }
        };
        Some((at, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_maps_devices_row_major() {
        let t = FailureTopology::new(2, 3, 4);
        assert_eq!(t.devices(), 24);
        assert_eq!(t.racks(), 6);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(7), 1);
        assert_eq!(t.zone_of(11), 0);
        assert_eq!(t.zone_of(12), 1);
        assert_eq!(t.rack_devices(1), 4..8);
        assert_eq!(t.zone_devices(1), 12..24);
        for d in 0..t.devices() {
            assert!(t.rack_devices(t.rack_of(d)).contains(&d));
            assert!(t.zone_devices(t.zone_of(d)).contains(&d));
        }
    }

    #[test]
    fn degenerate_levels_clamp_to_one() {
        let t = FailureTopology::new(0, 0, 0);
        assert_eq!(t.devices(), 1);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.zone_of(0), 0);
        assert_eq!(FailureTopology::flat(8).to_string(), "1x1x8");
    }

    #[test]
    fn quiet_plan_draws_nothing() {
        let mut plan = CorrelatedFaultPlan::new(
            CorrelatedFaultConfig::quiet(3),
            FailureTopology::new(2, 2, 2),
        );
        for _ in 0..8 {
            assert_eq!(plan.next_event(), None);
        }
    }

    #[test]
    fn plan_is_seed_deterministic_and_strictly_advancing() {
        let cfg = CorrelatedFaultConfig::quiet(11)
            .with_zone_outages(40.0, SimTime::from_ms(4))
            .with_rack_cycles(80.0, SimTime::from_ms(2), SimTime::from_us(250));
        let topo = FailureTopology::new(2, 2, 2);
        let seq = |cfg: CorrelatedFaultConfig| {
            let mut plan = CorrelatedFaultPlan::new(cfg, topo);
            (0..64)
                .map(|_| plan.next_event().unwrap())
                .collect::<Vec<_>>()
        };
        let a = seq(cfg);
        assert_eq!(a, seq(cfg));
        assert_ne!(a, seq(CorrelatedFaultConfig { seed: 12, ..cfg }));
        let mut last = SimTime::ZERO;
        for (at, _) in a {
            assert!(at > last);
            last = at;
        }
    }

    #[test]
    fn targets_stay_inside_the_topology() {
        let cfg = CorrelatedFaultConfig::quiet(7)
            .with_zone_outages(50.0, SimTime::from_ms(1))
            .with_rack_cycles(50.0, SimTime::from_ms(1), SimTime::from_us(100));
        let topo = FailureTopology::new(3, 2, 2);
        let mut plan = CorrelatedFaultPlan::new(cfg, topo);
        let mut zones = 0u32;
        let mut racks = 0u32;
        for _ in 0..400 {
            match plan.next_event().unwrap().1 {
                CorrelatedFaultKind::ZoneOutage { zone } => {
                    assert!(zone < topo.zones);
                    zones += 1;
                }
                CorrelatedFaultKind::RackPowerCycle { rack } => {
                    assert!(rack < topo.racks());
                    racks += 1;
                }
            }
        }
        assert!(
            zones > 100 && racks > 100,
            "class mix skewed: {zones}/{racks}"
        );
    }

    #[test]
    fn enabling_one_class_never_reshuffles_the_other() {
        // With both classes enabled vs only racks, the arrival times drawn
        // are identical (the class draw happens either way).
        let topo = FailureTopology::new(2, 2, 1);
        let racks_only = CorrelatedFaultConfig::quiet(5).with_rack_cycles(
            60.0,
            SimTime::from_ms(1),
            SimTime::from_us(50),
        );
        let times = |cfg: CorrelatedFaultConfig, scale: f64| {
            let mut plan = CorrelatedFaultPlan::new(cfg, topo);
            (0..32)
                .map(|_| plan.next_event().unwrap().0.as_ns() as f64 * scale)
                .collect::<Vec<_>>()
        };
        // Same total rate split differently: gap draws come from the same
        // stream positions, so the arrival sequence matches.
        let both = racks_only
            .with_zone_outages(30.0, SimTime::from_ms(1))
            .with_rack_cycles(30.0, SimTime::from_ms(1), SimTime::from_us(50));
        assert_eq!(times(racks_only, 1.0), times(both, 1.0));
    }
}
