//! The GPU device: launch intake, the non-preemptive hardware CTA
//! dispatcher, and the persistent-threads batch engine.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use flep_sim_core::{GenSlab, SimTime, Span, TraceLog};

use crate::config::GpuConfig;
use crate::fault::{FaultEvent, FaultPlan, LaunchFault, NoteFault, SignalFault};
use crate::grid::{Grid, GridId, GridPhase, GridShape, LaunchDesc, PreemptSignal, StuckMode};
use crate::placement::PlacementIndex;
use crate::sm::{ResidentCta, Sm};

/// Device-internal events. The embedding world routes these back into
/// [`GpuDevice::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuEvent {
    /// A launch command has crossed the driver and reached the device FIFO.
    LaunchArrived(GridId),
    /// A CTA of an original-shape grid finished its (single) task.
    CtaDone {
        /// Owning grid.
        grid: GridId,
        /// CTA index within the grid.
        cta: u64,
        /// Hosting SM.
        sm: u32,
    },
    /// A persistent CTA finished a batch of tasks and polls the flag.
    BatchDone {
        /// Owning grid.
        grid: GridId,
        /// CTA index within the grid.
        cta: u64,
        /// Hosting SM.
        sm: u32,
        /// First task index (grid-relative) of the completed batch.
        first_task: u64,
        /// Number of tasks in the completed batch.
        n_tasks: u64,
    },
}

/// Notifications delivered to the host side (the FLEP runtime or a baseline
/// driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostNotification {
    /// The grid's first CTA was dispatched onto an SM.
    DispatchStarted {
        /// The grid.
        grid: GridId,
        /// Host correlation tag.
        tag: u64,
    },
    /// The grid processed all of its tasks and retired.
    Completed {
        /// The grid.
        grid: GridId,
        /// Host correlation tag.
        tag: u64,
        /// Tasks processed by this grid (counting from the grid's
        /// `first_task` offset).
        tasks_done: u64,
    },
    /// All of the grid's CTAs exited due to a preemption signal while tasks
    /// remained; the grid retired early.
    Preempted {
        /// The grid.
        grid: GridId,
        /// Host correlation tag.
        tag: u64,
        /// Tasks processed before the preemption took effect.
        tasks_done: u64,
        /// Tasks left unprocessed (to be resumed later).
        remaining_tasks: u64,
    },
}

impl HostNotification {
    /// The host correlation tag carried by any notification variant.
    #[must_use]
    pub fn tag(&self) -> u64 {
        match *self {
            HostNotification::DispatchStarted { tag, .. }
            | HostNotification::Completed { tag, .. }
            | HostNotification::Preempted { tag, .. } => tag,
        }
    }

    /// The grid the notification refers to.
    #[must_use]
    pub fn grid(&self) -> GridId {
        match *self {
            HostNotification::DispatchStarted { grid, .. }
            | HostNotification::Completed { grid, .. }
            | HostNotification::Preempted { grid, .. } => grid,
        }
    }
}

/// The device's link to the embedding simulation: schedules device events
/// and delivers host notifications.
pub trait GpuHarness {
    /// Schedules a device event at absolute time `at`.
    fn schedule_gpu(&mut self, at: SimTime, ev: GpuEvent);
    /// Delivers a notification to the host side at time `at`.
    fn notify_host(&mut self, at: SimTime, note: HostNotification);
}

/// Errors returned by [`GpuDevice::launch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// A single CTA of the kernel exceeds the SM's resources, so occupancy
    /// is zero and the kernel can never be dispatched.
    Unlaunchable {
        /// The kernel name.
        name: String,
    },
    /// The grid contains no work.
    EmptyGrid {
        /// The kernel name.
        name: String,
    },
    /// A persistent grid was configured with a zero amortizing factor.
    ZeroAmortize {
        /// The kernel name.
        name: String,
    },
    /// The launch was rejected by a transient condition (driver command
    /// queue full, momentary allocation failure). Unlike the other
    /// variants this is retryable: the same launch may succeed later.
    /// Only produced under fault injection.
    Transient {
        /// The kernel name.
        name: String,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::Unlaunchable { name } => {
                write!(f, "kernel `{name}`: a single CTA exceeds SM resources")
            }
            LaunchError::EmptyGrid { name } => {
                write!(f, "kernel `{name}`: grid contains no tasks")
            }
            LaunchError::ZeroAmortize { name } => {
                write!(f, "kernel `{name}`: amortizing factor must be at least 1")
            }
            LaunchError::Transient { name } => {
                write!(f, "kernel `{name}`: transient launch rejection (retryable)")
            }
        }
    }
}

impl LaunchError {
    /// Whether retrying the same launch later can succeed.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, LaunchError::Transient { .. })
    }
}

impl Error for LaunchError {}

/// The simulated GPU device.
///
/// The device is driven by an embedding world: the world calls
/// [`GpuDevice::launch`] / [`GpuDevice::signal`] on host actions and routes
/// every [`GpuEvent`] it scheduled through [`GpuDevice::handle`].
///
/// Scheduling semantics (faithful to §2.1 of the paper): grids enter a
/// single device FIFO in launch-arrival order; the dispatcher places CTAs
/// of the front grid onto SMs as resources permit and **only** advances to
/// a later grid once the front grid has no undispatched CTAs left. This is
/// the head-of-line blocking that makes unmodified GPUs non-preemptable,
/// and the leftover-resource backfill MPS provides.
pub struct GpuDevice {
    cfg: GpuConfig,
    sms: Vec<Sm>,
    /// Dense grid table: a [`GridId`] is the grid's generational slab key,
    /// so every lookup on the event hot path is an array index.
    grids: GenSlab<Grid>,
    fifo: VecDeque<GridId>,
    /// SMs indexed by `(resident_count, sm_id)` for least-loaded placement.
    placement: PlacementIndex,
    /// Persistent grids carrying a non-`None` preemption signal. Visibility
    /// (`signal_visible_at`) is checked per query, so membership changes
    /// only at signal/restore/retire time.
    signalled: Vec<GridId>,
    /// Reusable phase-two placement buffer (see [`GpuDevice::dispatch`]).
    placed_buf: Vec<(GridId, u64, u32)>,
    busy_spans: Vec<Span>,
    /// Whether per-span residency records are kept (totals always are).
    collect_spans: bool,
    /// Total busy time per owner tag, maintained regardless of
    /// `collect_spans` so long runs get accounting without unbounded spans.
    busy_totals: Vec<(u64, SimTime)>,
    trace: TraceLog,
    /// Per-stream lanes (interned from the launches' stream ids): the live
    /// grid (head of the stream) and grids parked behind it, in launch
    /// order.
    streams: Vec<StreamLane>,
    /// Seeded fault injector. `None` (the default) means the fault layer
    /// is entirely inert: no RNG draws, no timing changes, bit-identical
    /// behavior to a build without it.
    fault: Option<FaultPlan>,
    /// Device-hang state: while set, every doorbell write is lost before
    /// it reaches the flag (the command processor is wedged). Resident
    /// CTAs keep executing. Set/cleared by the cluster's device-fault
    /// layer; never consults the RNG, so it cannot perturb fault draws.
    doorbells_lost: bool,
}

/// One grid's progress snapshot returned by [`GpuDevice::reset`], the
/// host-side record the cluster uses to migrate work to a survivor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetGrid {
    /// The grid that was evicted (its id is dead after the reset).
    pub grid: GridId,
    /// Host correlation tag.
    pub tag: u64,
    /// Tasks (or CTAs, for original-shape grids) completed before the
    /// reset — the exactly-once resume point.
    pub tasks_done: u64,
    /// Tasks left unprocessed; zero means the grid had actually finished.
    pub remaining_tasks: u64,
}

/// State of one CUDA stream on the device.
#[derive(Debug)]
struct StreamLane {
    /// The user-visible stream id this lane was interned from.
    stream: u32,
    /// The stream's live grid (the one allowed on the device), if any.
    live: Option<GridId>,
    /// Grids launched behind the live one, in launch order.
    parked: VecDeque<GridId>,
}

impl fmt::Debug for GpuDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GpuDevice")
            .field("cfg", &self.cfg)
            .field("fifo", &self.fifo)
            .field("grids", &self.grids.len())
            .field("busy_spans", &self.busy_spans.len())
            .finish()
    }
}

/// Invariant message for grid lookups on the dispatch path: an id is only
/// in the device FIFO while its grid is live (retirement and kill both
/// remove it before the slab slot could be reused), so a miss here is a
/// bookkeeping bug, not a recoverable condition.
const FIFO_INVARIANT: &str =
    "invariant: a grid id in the device FIFO resolves; retire/kill remove it first";
/// Invariant message for grid lookups when (re)starting a batch: batches
/// are only started for CTAs placed in this same call chain, while the
/// grid is necessarily live.
const BATCH_INVARIANT: &str =
    "invariant: batches are only started for freshly placed CTAs of a live grid";

impl GpuDevice {
    /// Creates an idle device.
    #[must_use]
    pub fn new(cfg: GpuConfig) -> Self {
        let sms = (0..cfg.num_sms).map(Sm::new).collect();
        let placement = PlacementIndex::new(cfg.num_sms, cfg.max_ctas_per_sm);
        GpuDevice {
            cfg,
            sms,
            grids: GenSlab::new(),
            fifo: VecDeque::new(),
            placement,
            signalled: Vec::new(),
            placed_buf: Vec::new(),
            busy_spans: Vec::new(),
            collect_spans: true,
            busy_totals: Vec::new(),
            trace: TraceLog::disabled(),
            streams: Vec::new(),
            fault: None,
            doorbells_lost: false,
        }
    }

    /// Installs (or removes, with `None`) the seeded fault injector.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// Every fault injected so far (empty without a plan).
    #[must_use]
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.fault.as_ref().map_or(&[], FaultPlan::log)
    }

    /// Enables event tracing (disabled by default to bound memory).
    pub fn enable_trace(&mut self) {
        self.trace = TraceLog::new();
    }

    /// The trace log (empty unless [`GpuDevice::enable_trace`] was called).
    #[must_use]
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Read-only view of the SMs.
    #[must_use]
    pub fn sms(&self) -> &[Sm] {
        &self.sms
    }

    /// CTA-residency spans recorded so far (owner = host tag). Used for
    /// GPU-share accounting (Fig. 13). Empty when span collection is
    /// disabled via [`GpuDevice::set_span_collection`].
    #[must_use]
    pub fn busy_spans(&self) -> &[Span] {
        &self.busy_spans
    }

    /// Enables or disables per-span residency recording (on by default).
    /// Per-owner busy totals ([`GpuDevice::busy_totals`]) are maintained
    /// either way; disabling spans bounds memory on long runs that only
    /// need totals.
    pub fn set_span_collection(&mut self, on: bool) {
        self.collect_spans = on;
    }

    /// Total CTA-residency time per owner tag, accumulated since device
    /// creation. Always maintained, even with span collection off.
    #[must_use]
    pub fn busy_totals(&self) -> &[(u64, SimTime)] {
        &self.busy_totals
    }

    /// True when no grid is queued, running, or in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.grids
            .values()
            .all(|g| matches!(g.phase, GridPhase::Completed | GridPhase::Preempted))
    }

    /// The externally observable phase of a grid, if it exists.
    #[must_use]
    pub fn grid_phase(&self, grid: GridId) -> Option<GridPhase> {
        self.grids.get(grid.0).map(|g| g.phase)
    }

    /// Tasks completed so far by a grid.
    #[must_use]
    pub fn grid_tasks_done(&self, grid: GridId) -> Option<u64> {
        self.grids.get(grid.0).map(|g| match g.shape {
            GridShape::Original { .. } => g.completed_ctas,
            GridShape::Persistent { .. } => g.completed_tasks,
        })
    }

    /// Total threads the grid currently holds on SMs with `%smid < n_sms`.
    /// The watchdog's compliance probe: after `YieldSms(n)` a healthy
    /// victim drains this to zero; a stuck one does not.
    #[must_use]
    pub fn grid_threads_below(&self, grid: GridId, n_sms: u32) -> u32 {
        self.grids.get(grid.0).map_or(0, |g| {
            g.threads_on_sm.iter().take(n_sms as usize).copied().sum()
        })
    }

    /// When the grid's first CTA was dispatched.
    #[must_use]
    pub fn grid_dispatch_started(&self, grid: GridId) -> Option<SimTime> {
        self.grids.get(grid.0).and_then(|g| g.dispatch_started)
    }

    /// When the host issued the grid's launch call.
    #[must_use]
    pub fn grid_launched_at(&self, grid: GridId) -> Option<SimTime> {
        self.grids.get(grid.0).map(|g| g.launched_at)
    }

    /// Drops retired grids' bookkeeping to bound memory in long experiments.
    /// Phases queried after pruning return `None` (the slab's generation
    /// check catches stale ids even after slot reuse).
    pub fn prune_retired(&mut self) {
        self.grids
            .retain(|_, g| !matches!(g.phase, GridPhase::Completed | GridPhase::Preempted));
        let grids = &self.grids;
        self.signalled.retain(|&g| grids.get(g.0).is_some());
    }

    /// Issues a kernel launch. The grid reaches the device FIFO after the
    /// configured launch overhead.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError`] when the kernel can never be dispatched
    /// (zero occupancy), the grid is empty, or a persistent grid has a zero
    /// amortizing factor.
    pub fn launch<H: GpuHarness + ?Sized>(
        &mut self,
        now: SimTime,
        desc: LaunchDesc,
        harness: &mut H,
    ) -> Result<GridId, LaunchError> {
        let occ = self.cfg.occupancy_per_sm(&desc.resources);
        if occ == 0 {
            return Err(LaunchError::Unlaunchable { name: desc.name });
        }
        if desc.shape.total_tasks() == 0 {
            return Err(LaunchError::EmptyGrid { name: desc.name });
        }
        if let GridShape::Persistent { amortize, .. } = desc.shape {
            if amortize == 0 {
                return Err(LaunchError::ZeroAmortize { name: desc.name });
            }
        }

        let persistent = matches!(desc.shape, GridShape::Persistent { .. });
        let mut stuck = StuckMode::Responsive;
        if let Some(plan) = self.fault.as_mut() {
            match plan.on_launch(now, desc.tag, persistent) {
                LaunchFault::None => {}
                LaunchFault::Reject => {
                    self.trace.record(now, "launch_rejected", desc.tag);
                    return Err(LaunchError::Transient { name: desc.name });
                }
                LaunchFault::StuckVictim => stuck = StuckMode::IgnoreFlag,
                LaunchFault::WedgedExit => stuck = StuckMode::WedgeOnExit,
            }
        }

        let extra_delay = desc.extra_launch_delay;
        let stream_lane = desc.stream.map(|s| self.lane_index(s));

        let planned_ctas = match desc.shape {
            GridShape::Original { ctas } => ctas,
            GridShape::Persistent { total_tasks, .. } => {
                total_tasks.min(self.cfg.device_capacity(&desc.resources))
            }
        };

        let grid = Grid {
            id: GridId(0), // patched below, once the slab assigns the key
            name: desc.name,
            tag: desc.tag,
            resources: desc.resources,
            shape: desc.shape,
            task_cost: desc.task_cost,
            mem_intensity: desc.mem_intensity,
            rng: flep_sim_core::SimRng::seed_from(desc.seed),
            task_fn: desc.task_fn,
            first_task: desc.first_task,
            phase: GridPhase::InFlight,
            pending_ctas: planned_ctas,
            active_ctas: 0,
            completed_ctas: 0,
            next_task: 0,
            completed_tasks: 0,
            round_quota: None,
            signal: PreemptSignal::None,
            signal_visible_at: SimTime::ZERO,
            dispatch_started: None,
            launched_at: now,
            planned_ctas,
            stream_lane,
            threads_on_sm: vec![0; self.cfg.num_sms as usize],
            full_own_load: f64::from(occ * desc.resources.threads_per_cta)
                / f64::from(self.cfg.threads_per_sm),
            stuck,
            stall_left: if stuck == StuckMode::WedgeOnExit {
                1
            } else {
                0
            },
            forced_exit: false,
        };
        self.trace.record(now, "launch", grid.tag);
        let id = GridId(self.grids.insert(grid));
        self.grids
            .get_mut(id.0)
            .expect("invariant: a slab key returned by insert is live until removed")
            .id = id;
        harness.schedule_gpu(
            now + self.cfg.launch_overhead + extra_delay,
            GpuEvent::LaunchArrived(id),
        );
        Ok(id)
    }

    /// The lane index for a user stream id, interning a new lane on first
    /// use.
    fn lane_index(&mut self, stream: u32) -> u32 {
        if let Some(i) = self.streams.iter().position(|l| l.stream == stream) {
            return i as u32;
        }
        self.streams.push(StreamLane {
            stream,
            live: None,
            parked: VecDeque::new(),
        });
        (self.streams.len() - 1) as u32
    }

    /// Writes the pinned preemption flag for a grid. The new value becomes
    /// visible to GPU-side polls after the configured visibility latency.
    ///
    /// Signalling a retired or unknown grid is a no-op (the host may race
    /// with completion; the paper's runtime tolerates this too).
    pub fn signal(&mut self, now: SimTime, grid: GridId, signal: PreemptSignal) {
        let mut latency = self.cfg.flag_visibility_latency;
        let Some(g) = self.grids.get_mut(grid.0) else {
            return;
        };
        if matches!(g.phase, GridPhase::Completed | GridPhase::Preempted) {
            return;
        }
        let tag = g.tag;
        if self.doorbells_lost {
            // Device hang: the write never crosses the bus. Checked before
            // the per-signal fault draw so a hung device's lost doorbells
            // do not consume (and thereby reshuffle) the fault stream.
            self.trace.record(now, "signal_lost", tag);
            return;
        }
        if let Some(plan) = self.fault.as_mut() {
            match plan.on_signal(now, tag) {
                SignalFault::None => {}
                SignalFault::Drop => {
                    // The doorbell write never lands: the grid's flag (and
                    // the signalled-grid list) stay exactly as they were.
                    self.trace.record(now, "signal_lost", tag);
                    return;
                }
                SignalFault::Delay(by) => latency += by,
            }
        }
        let g = self
            .grids
            .get_mut(grid.0)
            .expect("grid checked above; fault bookkeeping cannot remove grids");
        g.signal = signal;
        g.signal_visible_at = now + latency;
        let persistent = matches!(g.shape, GridShape::Persistent { .. });
        self.trace.record(now, "signal", tag);
        // Keep the signalled-grid list in sync: only persistent grids with
        // a live signal contribute "leaving" CTAs to contention queries.
        if persistent && signal != PreemptSignal::None {
            if !self.signalled.contains(&grid) {
                self.signalled.push(grid);
            }
        } else {
            self.signalled.retain(|&x| x != grid);
        }
    }

    /// Restores a spatially preempted persistent grid: clears its
    /// preemption signal and launches supplementary persistent CTAs (up to
    /// device capacity, bounded by unclaimed work) that pull from the same
    /// task counter. This is how the FLEP runtime gives a spatial victim
    /// its yielded SMs back once the preemptor finishes -- in the real
    /// system, a follow-up launch of the transformed kernel sharing the
    /// original grid's task-counter allocation.
    ///
    /// No-op for retired, original-shape, or unknown grids.
    pub fn restore_grid<H: GpuHarness + ?Sized>(
        &mut self,
        now: SimTime,
        grid: GridId,
        harness: &mut H,
    ) {
        let Some(g) = self.grids.get_mut(grid.0) else {
            return;
        };
        if !matches!(g.phase, GridPhase::Running | GridPhase::Queued) {
            return;
        }
        let GridShape::Persistent { .. } = g.shape else {
            return;
        };
        g.signal = PreemptSignal::None;
        g.signal_visible_at = now;
        g.forced_exit = false;
        let capacity = self.cfg.device_capacity(&g.resources);
        let live = g.active_ctas + g.pending_ctas;
        let refill = capacity.saturating_sub(live).min(g.unclaimed_tasks());
        if refill > 0 {
            g.pending_ctas += refill;
            g.planned_ctas += refill;
        }
        let tag = g.tag;
        self.signalled.retain(|&x| x != grid);
        if refill == 0 {
            return;
        }
        self.trace.record(now, "restore", tag);
        if !self.fifo.contains(&grid) {
            self.fifo.push_back(grid);
        }
        self.dispatch(now, harness);
    }

    /// Escalation level 2: forces a persistent grid to drain at its next
    /// batch boundaries regardless of the preemption flag, modelling the
    /// driver's kernel-slicing-style fallback (evict at instrumented slice
    /// boundaries below the flag poll). Effective even when the victim's
    /// flag polls are broken ([`StuckMode::IgnoreFlag`]); a CTA wedged in
    /// its exit path ([`StuckMode::WedgeOnExit`]) still survives this and
    /// needs a kill.
    ///
    /// No-op for retired, original-shape, or unknown grids.
    pub fn force_drain(&mut self, now: SimTime, grid: GridId) {
        let Some(g) = self.grids.get_mut(grid.0) else {
            return;
        };
        if matches!(g.phase, GridPhase::Completed | GridPhase::Preempted) {
            return;
        }
        let GridShape::Persistent { .. } = g.shape else {
            return;
        };
        if g.forced_exit {
            return;
        }
        g.forced_exit = true;
        let tag = g.tag;
        self.trace.record(now, "force_drain", tag);
        // Forced grids are "leaving" for contention purposes, exactly like
        // flag-signalled ones.
        if !self.signalled.contains(&grid) {
            self.signalled.push(grid);
        }
    }

    /// Escalation level 3: immediately evicts every CTA of the grid and
    /// retires it, the moral equivalent of `cudaDeviceReset` scoped to one
    /// grid. Work claimed but not completed is discarded — FLEP's
    /// task-pulling makes the completed-task counter the resume point, so
    /// a relaunch re-executes only the discarded tasks (task side effects
    /// fire on batch *completion*, preserving exactly-once execution).
    ///
    /// Emits [`HostNotification::Preempted`] (or `Completed` if the grid
    /// had in fact finished all tasks) through the normal — fault-prone —
    /// notification path. No-op for retired or unknown grids.
    pub fn kill_grid<H: GpuHarness + ?Sized>(
        &mut self,
        now: SimTime,
        grid: GridId,
        harness: &mut H,
    ) {
        let Some(g) = self.grids.get_mut(grid.0) else {
            return;
        };
        if matches!(g.phase, GridPhase::Completed | GridPhase::Preempted) {
            return;
        }
        let usage = g.resources;
        let tag = g.tag;
        g.pending_ctas = 0;
        g.active_ctas = 0;
        // Claimed-but-unfinished batches are lost; roll the claim counter
        // back so the completed-task counter is the single source of truth
        // for the resume point.
        g.next_task = g.completed_tasks;
        for sm_idx in 0..self.sms.len() {
            self.grids
                .get_mut(grid.0)
                .expect("grid checked above; eviction cannot remove grids")
                .threads_on_sm[sm_idx] = 0;
            for evicted in self.sms[sm_idx].evict_grid(&usage, grid) {
                self.placement.on_remove(sm_idx as u32);
                self.record_busy(evicted.since, now, tag);
            }
        }
        self.trace.record(now, "kill", tag);
        let g = self
            .grids
            .get_mut(grid.0)
            .expect("grid checked above; eviction cannot remove grids");
        let (done, total) = match g.shape {
            GridShape::Original { ctas } => (g.completed_ctas, ctas),
            GridShape::Persistent { total_tasks, .. } => (g.completed_tasks, total_tasks),
        };
        let note = if done == total {
            g.phase = GridPhase::Completed;
            HostNotification::Completed {
                grid,
                tag,
                tasks_done: done,
            }
        } else {
            g.phase = GridPhase::Preempted;
            HostNotification::Preempted {
                grid,
                tag,
                tasks_done: done,
                remaining_tasks: total - done,
            }
        };
        self.signalled.retain(|&x| x != grid);
        self.fifo.retain(|&x| x != grid);
        self.emit_note(now, note, harness);
        self.advance_stream(now, grid, harness);
        // The eviction freed SM resources; let queued grids use them.
        self.dispatch(now, harness);
    }

    /// Sets or clears the device-hang doorbell gate (see
    /// [`GpuDevice::signal`]). Installed by the cluster layer when a
    /// device-scoped hang fault fires.
    pub fn set_doorbells_lost(&mut self, lost: bool) {
        self.doorbells_lost = lost;
    }

    /// Whether doorbell writes are currently being lost to a device hang.
    #[must_use]
    pub fn doorbells_lost(&self) -> bool {
        self.doorbells_lost
    }

    /// Total threads resident across all SMs right now: the cluster
    /// placement layer's load metric (least-loaded device first).
    #[must_use]
    pub fn resident_threads(&self) -> u64 {
        self.sms.iter().map(|sm| u64::from(sm.used_threads())).sum()
    }

    /// Device-level reset: evicts every CTA, retires every live grid, and
    /// clears the FIFO, stream lanes, and signal state — the simulated
    /// equivalent of a driver-level device reset (transient loss) or the
    /// final state of a dead device.
    ///
    /// Unlike [`GpuDevice::kill_grid`] this emits **no** host
    /// notifications: a lost device cannot interrupt the host. The host
    /// learns each grid's resume point from the returned snapshots
    /// (slab-slot order, so deterministic). Work claimed but not completed
    /// is rolled back exactly as in a kill, preserving exactly-once task
    /// execution across a migration.
    pub fn reset(&mut self, now: SimTime) -> Vec<ResetGrid> {
        let live: Vec<GridId> = self
            .grids
            .iter()
            .filter(|(_, g)| !matches!(g.phase, GridPhase::Completed | GridPhase::Preempted))
            .map(|(k, _)| GridId(k))
            .collect();
        let mut out = Vec::with_capacity(live.len());
        for gid in live {
            let g = self
                .grids
                .get_mut(gid.0)
                .expect("invariant: ids collected above are live; nothing removes them here");
            let usage = g.resources;
            let tag = g.tag;
            g.pending_ctas = 0;
            g.active_ctas = 0;
            g.next_task = g.completed_tasks;
            for sm_idx in 0..self.sms.len() {
                self.grids
                    .get_mut(gid.0)
                    .expect("invariant: eviction cannot remove grids")
                    .threads_on_sm[sm_idx] = 0;
                for evicted in self.sms[sm_idx].evict_grid(&usage, gid) {
                    self.placement.on_remove(sm_idx as u32);
                    self.record_busy(evicted.since, now, tag);
                }
            }
            let g = self
                .grids
                .get_mut(gid.0)
                .expect("invariant: eviction cannot remove grids");
            let (done, total) = match g.shape {
                GridShape::Original { ctas } => (g.completed_ctas, ctas),
                GridShape::Persistent { total_tasks, .. } => (g.completed_tasks, total_tasks),
            };
            g.phase = if done == total {
                GridPhase::Completed
            } else {
                GridPhase::Preempted
            };
            self.trace.record(now, "device_reset_evict", tag);
            out.push(ResetGrid {
                grid: gid,
                tag,
                tasks_done: done,
                remaining_tasks: total - done,
            });
        }
        self.fifo.clear();
        self.signalled.clear();
        for lane in &mut self.streams {
            lane.live = None;
            lane.parked.clear();
        }
        self.doorbells_lost = false;
        out
    }

    /// The contention factor a kernel with `usage`/`mem_intensity` sees on
    /// SM `sm_idx` at `now`, counting only co-residents that are *staying*:
    /// persistent CTAs already signalled to yield this SM are about to
    /// leave, so they do not contribute to the sustained load an incoming
    /// batch experiences.
    ///
    /// Computed from the SM's total thread occupancy minus the per-SM
    /// thread totals of signalled persistent grids (see
    /// [`GpuDevice::signalled`]) — O(signalled grids) instead of a hash
    /// lookup per resident CTA, with identical integer arithmetic.
    /// `full_own_load` is the kernel's cached own-SM thread load
    /// ([`Grid::full_own_load`]) — a launch-time constant, so passing it
    /// in keeps this query free of per-call occupancy arithmetic.
    fn effective_contention_factor(
        &self,
        now: SimTime,
        sm_idx: usize,
        full_own_load: f64,
        mem_intensity: f64,
    ) -> f64 {
        let sm = &self.sms[sm_idx];
        let mut threads = sm.used_threads();
        if !self.signalled.is_empty() {
            for &gid in &self.signalled {
                if let Some(g) = self.grids.get(gid.0) {
                    // What the CTAs will act on, not what the host wrote: a
                    // fault-stuck grid that ignores its flag is *not* leaving,
                    // so its threads still count toward sustained load.
                    if g.poll_signal(now).must_exit(sm.id()) {
                        threads -= g.threads_on_sm[sm_idx];
                    }
                }
            }
        }
        let load = f64::from(threads) / f64::from(self.cfg.threads_per_sm);
        let c = mem_intensity.max(0.0);
        (1.0 + c * load) / (1.0 + c * full_own_load)
    }

    /// Delivers a host notification through the fault layer: it may be
    /// dropped or delayed. All device-originated notifications go through
    /// here so the interrupt path has a single fault opportunity per note.
    fn emit_note<H: GpuHarness + ?Sized>(
        &mut self,
        now: SimTime,
        note: HostNotification,
        harness: &mut H,
    ) {
        if let Some(plan) = self.fault.as_mut() {
            match plan.on_note(now, note.tag()) {
                NoteFault::None => {}
                NoteFault::Drop => {
                    self.trace.record(now, "note_lost", note.tag());
                    return;
                }
                NoteFault::Delay(by) => {
                    self.trace.record(now, "note_delayed", note.tag());
                    harness.notify_host(now + by, note);
                    return;
                }
            }
        }
        harness.notify_host(now, note);
    }

    /// Routes a previously scheduled device event.
    pub fn handle<H: GpuHarness + ?Sized>(&mut self, now: SimTime, ev: GpuEvent, harness: &mut H) {
        match ev {
            GpuEvent::LaunchArrived(id) => self.on_launch_arrived(now, id, harness),
            GpuEvent::CtaDone { grid, cta, sm } => self.on_cta_done(now, grid, cta, sm, harness),
            GpuEvent::BatchDone {
                grid,
                cta,
                sm,
                first_task,
                n_tasks,
            } => self.on_batch_done(now, grid, cta, sm, first_task, n_tasks, harness),
        }
    }

    fn on_launch_arrived<H: GpuHarness + ?Sized>(
        &mut self,
        now: SimTime,
        id: GridId,
        harness: &mut H,
    ) {
        // A grid killed (or pruned) while its launch was in flight simply
        // never arrives.
        let Some(grid) = self.grids.get_mut(id.0) else {
            return;
        };
        if matches!(grid.phase, GridPhase::Completed | GridPhase::Preempted) {
            return;
        }
        debug_assert_eq!(grid.phase, GridPhase::InFlight);
        // Same-stream ordering: a grid whose stream still has a live
        // predecessor parks until that predecessor retires.
        if let Some(lane_idx) = grid.stream_lane {
            let lane = &mut self.streams[lane_idx as usize];
            match lane.live {
                Some(live) if live != id => {
                    lane.parked.push_back(id);
                    return;
                }
                Some(_) => {}
                None => lane.live = Some(id),
            }
        }
        let grid = self
            .grids
            .get_mut(id.0)
            .expect("invariant: stream-lane bookkeeping never removes grids");
        grid.phase = GridPhase::Queued;
        self.fifo.push_back(id);
        self.dispatch(now, harness);
    }

    /// On retire of a stream's live grid, release its successor into the
    /// device FIFO.
    fn advance_stream<H: GpuHarness + ?Sized>(
        &mut self,
        now: SimTime,
        retired: GridId,
        harness: &mut H,
    ) {
        let Some(lane_idx) = self.grids.get(retired.0).and_then(|g| g.stream_lane) else {
            return;
        };
        let lane = &mut self.streams[lane_idx as usize];
        if lane.live != Some(retired) {
            return;
        }
        lane.live = None;
        if let Some(next_id) = lane.parked.pop_front() {
            // The successor pays the launch overhead again: starting a
            // dependent kernel involves command-processor work that cannot
            // overlap its predecessor (this is exactly the per-slice cost
            // that makes kernel slicing expensive, Fig. 17).
            lane.live = Some(next_id);
            harness.schedule_gpu(
                now + self.cfg.launch_overhead,
                GpuEvent::LaunchArrived(next_id),
            );
        }
    }

    /// The hardware CTA dispatcher: front-to-back over the FIFO with strict
    /// head-of-line blocking.
    ///
    /// Dispatch is two-phase within one call: all CTAs that fit are
    /// *placed* first (onto the least-loaded fitting SM, modelling the
    /// hardware's round-robin CTA distribution), and only then is their
    /// initial work scheduled, so the contention factor every simultaneous
    /// CTA sees reflects the full post-placement co-residency.
    fn dispatch<H: GpuHarness + ?Sized>(&mut self, now: SimTime, harness: &mut H) {
        if self.fifo.is_empty() {
            return; // Invoked after every CTA/batch exit; usually no-op.
        }
        let mut placed = std::mem::take(&mut self.placed_buf);
        debug_assert!(placed.is_empty());
        while let Some(&gid) = self.fifo.front() {
            self.place_grid(now, gid, harness, &mut placed);
            let fully_dispatched = self.grids.get(gid.0).expect(FIFO_INVARIANT).pending_ctas == 0;
            if fully_dispatched {
                self.fifo.pop_front();
                self.maybe_retire(now, gid, harness);
            } else {
                break;
            }
        }
        for &(gid, cta_idx, sm_idx) in &placed {
            let grid = self.grids.get(gid.0).expect(FIFO_INVARIANT);
            match grid.shape {
                GridShape::Original { .. } => {
                    let (own, mem) = (grid.full_own_load, grid.mem_intensity);
                    let factor = self.effective_contention_factor(now, sm_idx as usize, own, mem);
                    let grid = self.grids.get_mut(gid.0).expect(FIFO_INVARIANT);
                    let dur = grid.task_cost.sample(&mut grid.rng).scale(factor);
                    harness.schedule_gpu(
                        now + dur,
                        GpuEvent::CtaDone {
                            grid: gid,
                            cta: cta_idx,
                            sm: sm_idx,
                        },
                    );
                }
                GridShape::Persistent { .. } => {
                    self.start_batch(now, gid, cta_idx, sm_idx, harness);
                }
            }
        }
        placed.clear();
        self.placed_buf = placed;
    }

    /// Places as many pending CTAs of `gid` as fit right now, appending the
    /// placements to `placed` for phase-two scheduling.
    fn place_grid<H: GpuHarness + ?Sized>(
        &mut self,
        now: SimTime,
        gid: GridId,
        harness: &mut H,
        placed: &mut Vec<(GridId, u64, u32)>,
    ) {
        loop {
            let grid = self.grids.get_mut(gid.0).expect(FIFO_INVARIANT);
            if grid.pending_ctas == 0 {
                return;
            }

            // A persistent grid already signalled for full preemption will
            // have its not-yet-dispatched CTAs observe the flag on entry and
            // return immediately; model that by dropping them.
            if let GridShape::Persistent { .. } = grid.shape {
                let sig = grid.poll_signal(now);
                if (0..self.cfg.num_sms).all(|s| sig.must_exit(s)) {
                    grid.pending_ctas = 0;
                    return;
                }
            }

            let usage = grid.resources;
            let sig = match grid.shape {
                GridShape::Persistent { .. } => grid.poll_signal(now),
                GridShape::Original { .. } => PreemptSignal::None,
            };
            // Least-loaded fitting SM (lowest id breaks ties): the hardware
            // scheduler distributes CTAs across SMs rather than packing.
            // The placement index walks SMs in exactly the
            // `(resident_count, sm_id)` order the old full scan minimized.
            let cfg = &self.cfg;
            let sms = &self.sms;
            let Some(sm) = self
                .placement
                .least_loaded(|i| sms[i as usize].fits(cfg, &usage) && !sig.must_exit(i))
            else {
                return;
            };
            let sm_idx = sm as usize;

            let grid = self.grids.get_mut(gid.0).expect(FIFO_INVARIANT);
            let cta_idx = grid.planned_ctas - grid.pending_ctas;
            grid.pending_ctas -= 1;
            grid.active_ctas += 1;
            grid.threads_on_sm[sm_idx] += usage.threads_per_cta;
            if grid.dispatch_started.is_none() {
                grid.dispatch_started = Some(now);
                grid.phase = GridPhase::Running;
                let tag = grid.tag;
                self.trace.record(now, "dispatch_start", tag);
                self.emit_note(
                    now,
                    HostNotification::DispatchStarted { grid: gid, tag },
                    harness,
                );
            }

            let resident = ResidentCta {
                grid: gid,
                cta: cta_idx,
                since: now,
                threads: usage.threads_per_cta,
            };
            self.sms[sm_idx].place(&self.cfg, &usage, resident);
            self.placement.on_place(sm);
            placed.push((gid, cta_idx, sm));
        }
    }

    /// Claims the next batch of up to `L` tasks for a persistent CTA and
    /// schedules its completion.
    fn start_batch<H: GpuHarness + ?Sized>(
        &mut self,
        now: SimTime,
        gid: GridId,
        cta: u64,
        sm: u32,
        harness: &mut H,
    ) {
        let factor = {
            let grid = self.grids.get(gid.0).expect(BATCH_INVARIANT);
            let (own, mem) = (grid.full_own_load, grid.mem_intensity);
            self.effective_contention_factor(now, sm as usize, own, mem)
        };
        let grid = self.grids.get_mut(gid.0).expect(BATCH_INVARIANT);
        let GridShape::Persistent { amortize, .. } = grid.shape else {
            unreachable!("start_batch on original grid");
        };
        // The real transformed kernel pulls tasks one at a time (one
        // atomicAdd per task) and polls the flag once per `L` tasks, so
        // CTAs stay load-balanced to within a single task. Claiming `L`
        // tasks per simulation event would instead create an artificial
        // tail imbalance of up to `L-1` tasks per CTA. Model the per-task
        // pull's balance while keeping events batched: all claims made at
        // the same instant (one synchronized round) share a quota of
        // `min(L, ceil(unclaimed / active))` computed at the round's first
        // claim, so the final round splits the leftover work evenly.
        // Quota denominator: every worker that exists or is about to be
        // placed, so a lone early CTA cannot claim the whole pool while its
        // siblings are still being dispatched.
        let workers = grid.active_ctas.saturating_add(grid.pending_ctas).max(1);
        let unclaimed = grid.unclaimed_tasks();
        let l = u64::from(amortize);
        let n = if unclaimed == 0 {
            0
        } else {
            let quota = match grid.round_quota {
                Some((t, q)) if t == now => q,
                _ => {
                    let q = l.min(unclaimed.div_ceil(workers)).max(1);
                    grid.round_quota = Some((now, q));
                    q
                }
            };
            quota.min(unclaimed)
        };
        let first_task = grid.next_task;
        grid.next_task += n;

        let mut work = SimTime::ZERO;
        if grid.task_cost.rel_noise <= 0.0 {
            work = grid.task_cost.base * n;
        } else {
            for _ in 0..n {
                work += grid.task_cost.sample(&mut grid.rng);
            }
        }
        let dur = work.scale(factor) + self.cfg.poll_cost + self.cfg.pull_cost * n;
        harness.schedule_gpu(
            now + dur,
            GpuEvent::BatchDone {
                grid: gid,
                cta,
                sm,
                first_task,
                n_tasks: n,
            },
        );
    }

    fn on_cta_done<H: GpuHarness + ?Sized>(
        &mut self,
        now: SimTime,
        gid: GridId,
        cta: u64,
        sm: u32,
        harness: &mut H,
    ) {
        // Same stale-event gate as `on_batch_done`: a killed grid's
        // in-flight completions must be dropped, not processed.
        let Some(grid) = self.grids.get_mut(gid.0) else {
            return;
        };
        if matches!(grid.phase, GridPhase::Completed | GridPhase::Preempted) {
            return;
        }
        let first_task = grid.first_task;
        if let Some(f) = grid.task_fn.as_mut() {
            f(first_task + cta);
        }
        grid.completed_ctas += 1;
        grid.active_ctas -= 1;
        let usage = grid.resources;
        let tag = grid.tag;
        grid.threads_on_sm[sm as usize] -= usage.threads_per_cta;
        let removed = self.sms[sm as usize].remove(&usage, gid, cta);
        self.placement.on_remove(sm);
        self.record_busy(removed.since, now, tag);
        self.maybe_retire(now, gid, harness);
        self.dispatch(now, harness);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_batch_done<H: GpuHarness + ?Sized>(
        &mut self,
        now: SimTime,
        gid: GridId,
        cta: u64,
        sm: u32,
        first_task: u64,
        n_tasks: u64,
        harness: &mut H,
    ) {
        // A kill (watchdog escalation) retires a grid while its CTAs'
        // completion events are still in the queue; those events refer to
        // work that was forcibly discarded and must be ignored. Without
        // faults every grid outlives all of its scheduled events, so this
        // gate never fires.
        let Some(grid) = self.grids.get_mut(gid.0) else {
            return;
        };
        if matches!(grid.phase, GridPhase::Completed | GridPhase::Preempted) {
            return;
        }
        grid.completed_tasks += n_tasks;
        let offset = grid.first_task;
        if let Some(f) = grid.task_fn.as_mut() {
            for t in first_task..first_task + n_tasks {
                f(offset + t);
            }
        }

        let must_exit = grid.poll_signal(now).must_exit(sm);
        if must_exit && grid.stuck == StuckMode::WedgeOnExit && grid.stall_left > 0 {
            // The injected wedge fires: the CTA saw the flag but hangs in
            // its exit path. It stays resident (still occupying the SM and
            // counting toward contention) and will never schedule another
            // event; only a kill can reclaim it.
            grid.stall_left -= 1;
            let tag = grid.tag;
            self.trace.record(now, "cta_wedged", tag);
            if let Some(plan) = self.fault.as_mut() {
                plan.record_wedge_fired(now, tag);
            }
            return;
        }
        let out_of_work = grid.unclaimed_tasks() == 0;
        if must_exit || out_of_work {
            grid.active_ctas -= 1;
            let usage = grid.resources;
            let tag = grid.tag;
            grid.threads_on_sm[sm as usize] -= usage.threads_per_cta;
            let removed = self.sms[sm as usize].remove(&usage, gid, cta);
            self.placement.on_remove(sm);
            self.record_busy(removed.since, now, tag);
            self.maybe_retire(now, gid, harness);
            self.dispatch(now, harness);
        } else {
            self.start_batch(now, gid, cta, sm, harness);
        }
    }

    /// Accrues one CTA-residency interval: always into the per-owner
    /// totals, and into the span list only when span collection is on.
    fn record_busy(&mut self, start: SimTime, end: SimTime, owner: u64) {
        let dur = end.saturating_sub(start);
        match self.busy_totals.iter_mut().find(|(t, _)| *t == owner) {
            Some(entry) => entry.1 += dur,
            None => self.busy_totals.push((owner, dur)),
        }
        if self.collect_spans {
            self.busy_spans.push(Span { start, end, owner });
        }
    }

    /// Retires a grid whose CTAs have all left the device, emitting the
    /// appropriate notification.
    fn maybe_retire<H: GpuHarness + ?Sized>(&mut self, now: SimTime, gid: GridId, harness: &mut H) {
        let grid = self
            .grids
            .get_mut(gid.0)
            .expect("invariant: retire is only attempted from paths holding a live grid id");
        if grid.active_ctas > 0 || grid.pending_ctas > 0 {
            return;
        }
        if matches!(grid.phase, GridPhase::Completed | GridPhase::Preempted) {
            return;
        }
        match grid.shape {
            GridShape::Original { ctas } => {
                if grid.completed_ctas == ctas {
                    grid.phase = GridPhase::Completed;
                    let (tag, done) = (grid.tag, grid.completed_ctas);
                    self.trace.record(now, "complete", tag);
                    self.emit_note(
                        now,
                        HostNotification::Completed {
                            grid: gid,
                            tag,
                            tasks_done: done,
                        },
                        harness,
                    );
                    self.advance_stream(now, gid, harness);
                }
            }
            GridShape::Persistent { total_tasks, .. } => {
                // All claimed batches have finished once no CTA is active,
                // so completed == next_task here.
                debug_assert_eq!(grid.completed_tasks, grid.next_task);
                if grid.completed_tasks == total_tasks {
                    grid.phase = GridPhase::Completed;
                    let (tag, done) = (grid.tag, grid.completed_tasks);
                    self.trace.record(now, "complete", tag);
                    self.emit_note(
                        now,
                        HostNotification::Completed {
                            grid: gid,
                            tag,
                            tasks_done: done,
                        },
                        harness,
                    );
                } else {
                    grid.phase = GridPhase::Preempted;
                    let (tag, done) = (grid.tag, grid.completed_tasks);
                    let remaining = total_tasks - done;
                    self.trace.record(now, "preempt", tag);
                    self.emit_note(
                        now,
                        HostNotification::Preempted {
                            grid: gid,
                            tag,
                            tasks_done: done,
                            remaining_tasks: remaining,
                        },
                        harness,
                    );
                }
                self.advance_stream(now, gid, harness);
                // A retired grid has no resident CTAs left, so it no longer
                // influences contention queries; drop it from the list.
                self.signalled.retain(|&g| g != gid);
            }
        }
    }
}
