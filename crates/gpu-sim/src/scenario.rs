//! A self-contained scenario runner: scripted launches and preemption
//! signals against a single device, with per-launch timing records.
//!
//! This is the workhorse for calibration, baselines (plain MPS co-runs),
//! and the gpu-sim test-suite. The FLEP runtime builds its own richer world
//! in `flep-runtime`, but shares the [`CollectorHarness`] adapter defined
//! here.

use std::collections::HashMap;

use flep_sim_core::{Scheduler, SimTime, Simulation, World};

use crate::device::{GpuDevice, GpuEvent, GpuHarness, HostNotification};
use crate::fault::{FaultConfig, FaultPlan};
use crate::grid::{GridId, LaunchDesc, PreemptSignal};
use crate::GpuConfig;

/// A [`GpuHarness`] that buffers scheduled events and notifications so the
/// device can be driven from inside a [`World::handle`] call, after which
/// the buffers are flushed into the real scheduler.
#[derive(Debug, Default)]
pub struct CollectorHarness {
    /// Device events to re-schedule, with their absolute fire times.
    pub gpu_events: Vec<(SimTime, GpuEvent)>,
    /// Host notifications emitted during the call.
    pub notes: Vec<(SimTime, HostNotification)>,
}

impl CollectorHarness {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        CollectorHarness::default()
    }
}

impl GpuHarness for CollectorHarness {
    fn schedule_gpu(&mut self, at: SimTime, ev: GpuEvent) {
        self.gpu_events.push((at, ev));
    }
    fn notify_host(&mut self, at: SimTime, note: HostNotification) {
        self.notes.push((at, note));
    }
}

/// One preemption observed for a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreemptionRecord {
    /// When the grid retired as preempted.
    pub at: SimTime,
    /// Tasks it had completed.
    pub tasks_done: u64,
    /// Tasks left for a future resume.
    pub remaining: u64,
}

/// Timing record for one logical launch (keyed by host tag).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaunchRecord {
    /// When the host issued the (first) launch.
    pub launched_at: Option<SimTime>,
    /// When the first CTA was dispatched.
    pub dispatch_started: Option<SimTime>,
    /// When the final grid carrying this tag completed.
    pub completed_at: Option<SimTime>,
    /// All preemptions suffered along the way.
    pub preemptions: Vec<PreemptionRecord>,
    /// All grids that carried this tag (original launch + resumes).
    pub grids: Vec<GridId>,
}

impl LaunchRecord {
    /// Turnaround time: launch to completion.
    ///
    /// Returns `None` until the launch has completed.
    #[must_use]
    pub fn turnaround(&self) -> Option<SimTime> {
        match (self.launched_at, self.completed_at) {
            (Some(l), Some(c)) => Some(c.saturating_sub(l)),
            _ => None,
        }
    }

    /// Queueing delay: launch to first CTA dispatch.
    #[must_use]
    pub fn queue_delay(&self) -> Option<SimTime> {
        match (self.launched_at, self.dispatch_started) {
            (Some(l), Some(d)) => Some(d.saturating_sub(l)),
            _ => None,
        }
    }
}

/// The scripted actions of a scenario.
#[derive(Debug)]
enum Action {
    Launch(Box<LaunchDesc>),
    Signal { tag: u64, signal: PreemptSignal },
    ForceDrain { tag: u64 },
    Kill { tag: u64 },
}

#[derive(Debug)]
enum Ev {
    Gpu(GpuEvent),
    Act(usize),
}

/// A scripted sequence of launches and flag writes against one device.
///
/// # Example
///
/// ```
/// use flep_gpu_sim::{GpuConfig, GridShape, LaunchDesc, Scenario, TaskCost};
/// use flep_sim_core::SimTime;
///
/// let mut sc = Scenario::new(GpuConfig::k40());
/// sc.launch_at(
///     SimTime::ZERO,
///     LaunchDesc::new(
///         "k",
///         GridShape::Original { ctas: 240 },
///         TaskCost::fixed(SimTime::from_us(100)),
///     )
///     .with_tag(1),
/// );
/// let result = sc.run();
/// let rec = &result.records[&1];
/// // 240 CTAs at 120-capacity = 2 waves of 100us plus 8us launch overhead.
/// assert_eq!(rec.turnaround().unwrap(), SimTime::from_us(208));
/// ```
#[derive(Debug)]
pub struct Scenario {
    config: GpuConfig,
    actions: Vec<(SimTime, Action)>,
    trace: bool,
    fault: Option<FaultConfig>,
}

impl Scenario {
    /// Creates an empty scenario for a device with the given configuration.
    #[must_use]
    pub fn new(config: GpuConfig) -> Self {
        Scenario {
            config,
            actions: Vec::new(),
            trace: false,
            fault: None,
        }
    }

    /// Installs a seeded fault-injection plan on the scenario's device.
    /// Launch attempts rejected by an injected transient fault are simply
    /// skipped (their records never complete); use the runtime's retry
    /// machinery for recovery behavior.
    pub fn with_faults(&mut self, cfg: FaultConfig) {
        self.fault = Some(cfg);
    }

    /// Records launch/signal/restore events on the device's trace log, for
    /// inspection via [`ScenarioResult::device`] after the run.
    pub fn enable_trace(&mut self) {
        self.trace = true;
    }

    /// Schedules a kernel launch at `at`. The descriptor's `tag` keys the
    /// resulting [`LaunchRecord`].
    pub fn launch_at(&mut self, at: SimTime, desc: LaunchDesc) {
        self.actions.push((at, Action::Launch(Box::new(desc))));
    }

    /// Schedules a preemption-flag write at `at` against the most recent
    /// live grid carrying `tag`.
    pub fn signal_at(&mut self, at: SimTime, tag: u64, signal: PreemptSignal) {
        self.actions.push((at, Action::Signal { tag, signal }));
    }

    /// Schedules a forced drain (escalation level 2) at `at` against the
    /// most recent live grid carrying `tag`.
    pub fn force_drain_at(&mut self, at: SimTime, tag: u64) {
        self.actions.push((at, Action::ForceDrain { tag }));
    }

    /// Schedules a kill (escalation level 3) at `at` against the most
    /// recent live grid carrying `tag`.
    pub fn kill_at(&mut self, at: SimTime, tag: u64) {
        self.actions.push((at, Action::Kill { tag }));
    }

    /// Runs the scenario to completion and returns the records.
    #[must_use]
    pub fn run(self) -> ScenarioResult {
        let times: Vec<SimTime> = self.actions.iter().map(|&(t, _)| t).collect();
        let mut device = GpuDevice::new(self.config);
        if self.trace {
            device.enable_trace();
        }
        device.set_fault_plan(self.fault.map(FaultPlan::new));
        let world = ScenarioWorld {
            device,
            actions: self.actions.into_iter().map(|(_, a)| Some(a)).collect(),
            records: HashMap::new(),
            tag_grids: HashMap::new(),
        };
        let mut sim = Simulation::new(world);
        for (idx, t) in times.into_iter().enumerate() {
            sim.schedule_at(t, Ev::Act(idx));
        }
        let end = sim.run();
        let world = sim.into_world();
        ScenarioResult {
            records: world.records,
            end_time: end,
            device: world.device,
        }
    }
}

/// Results of a [`Scenario`] run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Per-tag timing records.
    pub records: HashMap<u64, LaunchRecord>,
    /// Completion time of the last completed launch.
    pub end_time: SimTime,
    /// The device, for busy-span and trace inspection.
    pub device: GpuDevice,
}

struct ScenarioWorld {
    device: GpuDevice,
    actions: Vec<Option<Action>>,
    records: HashMap<u64, LaunchRecord>,
    tag_grids: HashMap<u64, Vec<GridId>>,
}

impl std::fmt::Debug for ScenarioWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioWorld")
            .field("records", &self.records.len())
            .finish()
    }
}

impl ScenarioWorld {
    fn flush(&mut self, collector: CollectorHarness, sched: &mut Scheduler<'_, Ev>) {
        for (at, ev) in collector.gpu_events {
            sched.schedule_at(at, Ev::Gpu(ev));
        }
        for (at, note) in collector.notes {
            self.on_note(at, note);
        }
    }

    fn on_note(&mut self, at: SimTime, note: HostNotification) {
        let rec = self.records.entry(note.tag()).or_default();
        match note {
            HostNotification::DispatchStarted { .. } => {
                if rec.dispatch_started.is_none() {
                    rec.dispatch_started = Some(at);
                }
            }
            HostNotification::Completed { .. } => {
                rec.completed_at = Some(at);
            }
            HostNotification::Preempted {
                tasks_done,
                remaining_tasks,
                ..
            } => {
                rec.preemptions.push(PreemptionRecord {
                    at,
                    tasks_done,
                    remaining: remaining_tasks,
                });
            }
        }
    }
}

impl World for ScenarioWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        let mut collector = CollectorHarness::new();
        match event {
            Ev::Gpu(gev) => {
                self.device.handle(now, gev, &mut collector);
            }
            Ev::Act(idx) => {
                let action = self.actions[idx].take().expect("action fired twice");
                match action {
                    Action::Launch(desc) => {
                        let tag = desc.tag;
                        let rec = self.records.entry(tag).or_default();
                        if rec.launched_at.is_none() {
                            rec.launched_at = Some(now);
                        }
                        match self.device.launch(now, *desc, &mut collector) {
                            Ok(gid) => {
                                rec.grids.push(gid);
                                self.tag_grids.entry(tag).or_default().push(gid);
                            }
                            // An injected transient rejection drops the
                            // scripted launch (scenarios have no retry
                            // loop; the runtime does).
                            Err(e) if e.is_transient() => {}
                            Err(e) => panic!("scenario launch rejected: {e}"),
                        }
                    }
                    Action::Signal { tag, signal } => {
                        if let Some(&gid) = self.tag_grids.get(&tag).and_then(|g| g.last()) {
                            self.device.signal(now, gid, signal);
                        }
                    }
                    Action::ForceDrain { tag } => {
                        if let Some(&gid) = self.tag_grids.get(&tag).and_then(|g| g.last()) {
                            self.device.force_drain(now, gid);
                        }
                    }
                    Action::Kill { tag } => {
                        if let Some(&gid) = self.tag_grids.get(&tag).and_then(|g| g.last()) {
                            self.device.kill_grid(now, gid, &mut collector);
                        }
                    }
                }
            }
        }
        self.flush(collector, sched);
    }
}

/// Runs a single kernel alone on a fresh device and returns its turnaround
/// time (launch call to completion).
///
/// # Panics
///
/// Panics if the launch descriptor is rejected by the device.
#[must_use]
pub fn run_single(config: GpuConfig, desc: LaunchDesc) -> SimTime {
    let tag = desc.tag;
    let mut sc = Scenario::new(config);
    sc.launch_at(SimTime::ZERO, desc);
    let result = sc.run();
    result.records[&tag]
        .turnaround()
        .expect("single kernel did not complete")
}
