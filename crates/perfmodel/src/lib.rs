//! Lightweight kernel performance models (§4.2 of the FLEP paper).
//!
//! FLEP predicts each kernel invocation's duration with a kernel-specific
//! ridge (L2-penalized) linear regression over four cheap features — grid
//! size, CTA size, input size, and shared-memory size — trained offline on
//! 100 randomly generated inputs. The preemption overhead is not modeled
//! but profiled: the average of 50 measured preemptions.
//!
//! This crate implements both pieces from scratch:
//!
//! * [`RidgeModel`] — standardized features, normal equations solved via
//!   Cholesky ([`Matrix::solve_spd`]), L2 penalty.
//! * [`OverheadProfiler`] — the running-average overhead estimate.
//!
//! The training harness that pairs this crate with the simulated
//! benchmarks lives in `flep-workloads`/`flep-runtime`; this crate is pure
//! math and carries no GPU knowledge beyond the feature names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod linalg;
mod profiler;
mod regression;

pub use linalg::{Matrix, SingularMatrix};
pub use profiler::OverheadProfiler;
pub use regression::{KernelFeatures, RidgeModel, TrainError};
