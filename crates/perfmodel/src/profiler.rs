//! Preemption-overhead profiling (§4.2): "we profile the overhead of 50
//! runs with different inputs and use the average as an estimate of the
//! online preemption overhead."

use flep_sim_core::SimTime;

/// Accumulates preemption-overhead samples and produces the running
/// estimate the scheduler consults.
#[derive(Debug, Clone, Default)]
pub struct OverheadProfiler {
    samples: Vec<SimTime>,
}

impl OverheadProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        OverheadProfiler::default()
    }

    /// Records one measured preemption overhead.
    pub fn record(&mut self, overhead: SimTime) {
        self.samples.push(overhead);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The mean overhead, or `None` before any sample exists.
    #[must_use]
    pub fn mean(&self) -> Option<SimTime> {
        if self.samples.is_empty() {
            return None;
        }
        let total_ns: u64 = self.samples.iter().map(|s| s.as_ns()).sum();
        Some(SimTime::from_ns(total_ns / self.samples.len() as u64))
    }

    /// The mean overhead, or `fallback` before any sample exists. The
    /// runtime uses the offline-profiled average as the fallback.
    #[must_use]
    pub fn mean_or(&self, fallback: SimTime) -> SimTime {
        self.mean().unwrap_or(fallback)
    }

    /// The largest sample seen, or `None` when empty; used by FFS to bound
    /// its epoch computation conservatively.
    #[must_use]
    pub fn max(&self) -> Option<SimTime> {
        self.samples.iter().copied().max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profiler_has_no_mean() {
        let p = OverheadProfiler::new();
        assert_eq!(p.mean(), None);
        assert_eq!(p.mean_or(SimTime::from_us(7)), SimTime::from_us(7));
        assert!(p.is_empty());
    }

    #[test]
    fn mean_of_samples() {
        let mut p = OverheadProfiler::new();
        p.record(SimTime::from_us(10));
        p.record(SimTime::from_us(20));
        p.record(SimTime::from_us(30));
        assert_eq!(p.mean(), Some(SimTime::from_us(20)));
        assert_eq!(p.len(), 3);
        assert_eq!(p.max(), Some(SimTime::from_us(30)));
    }

    #[test]
    fn mean_or_prefers_samples() {
        let mut p = OverheadProfiler::new();
        p.record(SimTime::from_us(4));
        assert_eq!(p.mean_or(SimTime::from_us(100)), SimTime::from_us(4));
    }
}
