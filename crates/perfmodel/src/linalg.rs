//! Minimal dense linear algebra: just enough to solve the regularized
//! normal equations of ridge regression.

use std::error::Error;
use std::fmt;

/// A dense, row-major square/rectangular matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error from a linear solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("matrix is singular or not positive definite")
    }
}

impl Error for SingularMatrix {}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "ragged rows in matrix construction"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `Aᵀ A` (Gram matrix), the left side of the normal equations.
    #[must_use]
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut acc = 0.0;
                for r in 0..self.rows {
                    acc += self.get(r, i) * self.get(r, j);
                }
                out.set(i, j, acc);
                out.set(j, i, acc);
            }
        }
        out
    }

    /// `Aᵀ y` for a vector `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    #[must_use]
    pub fn transpose_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "vector length mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &yv) in y.iter().enumerate() {
            for (c, o) in out.iter_mut().enumerate() {
                *o += self.get(r, c) * yv;
            }
        }
        out
    }

    /// Adds `lambda` to the diagonal (ridge regularization) in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, lambda: f64) {
        assert_eq!(self.rows, self.cols, "diagonal shift needs a square matrix");
        for i in 0..self.rows {
            let v = self.get(i, i);
            self.set(i, i, v + lambda);
        }
    }

    /// Solves `self * x = b` for a symmetric positive-definite `self` via
    /// Cholesky decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrix`] when the matrix is not positive definite
    /// (e.g. collinear features with zero regularization).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, SingularMatrix> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;

        // Cholesky: self = L Lᵀ.
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(SingularMatrix);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }

        // Forward substitution: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, zk) in z.iter().enumerate().take(i) {
                sum -= l.get(i, k) * zk;
            }
            z[i] = sum / l.get(i, i);
        }

        // Back substitution: Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= l.get(k, i) * xk;
            }
            x[i] = sum / l.get(i, i);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_of_identity_like() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]]);
        let g = a.gram();
        assert_eq!(g.get(0, 0), 1.0);
        assert_eq!(g.get(1, 1), 4.0);
        assert_eq!(g.get(0, 1), 0.0);
    }

    #[test]
    fn solve_spd_known_system() {
        // [[4, 2], [2, 3]] x = [10, 8]  =>  x = [1.75, 1.5]
        let m = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let x = m.solve_spd(&[10.0, 8.0]).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_non_spd() {
        let m = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0]]);
        assert_eq!(m.solve_spd(&[1.0, 1.0]), Err(SingularMatrix));
    }

    #[test]
    fn ridge_shift_fixes_singularity() {
        let mut m = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert!(m.solve_spd(&[1.0, 1.0]).is_err());
        m.add_diagonal(0.1);
        assert!(m.solve_spd(&[1.0, 1.0]).is_ok());
    }

    #[test]
    fn transpose_mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = a.transpose_mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(v, vec![9.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
