//! Ridge (L2-penalized) linear regression, the paper's kernel-duration
//! model (§4.2): four features per kernel invocation, trained on 100
//! random inputs per kernel.

use std::error::Error;
use std::fmt;

use crate::linalg::Matrix;

/// The four §4.2 features of a kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelFeatures {
    /// Grid size (number of CTAs of the original kernel).
    pub grid_size: f64,
    /// CTA size (threads per CTA).
    pub cta_size: f64,
    /// Input size (problem-specific element count).
    pub input_size: f64,
    /// Shared memory used per CTA, in bytes.
    pub smem_size: f64,
}

impl KernelFeatures {
    /// The feature vector (without the bias column).
    #[must_use]
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.grid_size,
            self.cta_size,
            self.input_size,
            self.smem_size,
        ]
    }
}

/// Errors from model training.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// No training samples supplied.
    NoSamples,
    /// Features and targets differ in length.
    LengthMismatch {
        /// Number of feature rows.
        features: usize,
        /// Number of targets.
        targets: usize,
    },
    /// The (regularized) normal equations could not be solved.
    Singular,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NoSamples => f.write_str("no training samples"),
            TrainError::LengthMismatch { features, targets } => write!(
                f,
                "feature rows ({features}) and targets ({targets}) differ in length"
            ),
            TrainError::Singular => f.write_str("normal equations are singular"),
        }
    }
}

impl Error for TrainError {}

/// A trained ridge-regression model mapping kernel features to a predicted
/// duration in microseconds.
///
/// Features are standardized (zero mean, unit variance) internally so that
/// a single `lambda` is meaningful across features with wildly different
/// scales (grid sizes in the thousands vs shared memory in KiB).
///
/// # Example
///
/// ```
/// use flep_perfmodel::{KernelFeatures, RidgeModel};
///
/// // Duration = 2 * grid_size (a perfectly linear kernel).
/// let features: Vec<KernelFeatures> = (1..=50)
///     .map(|g| KernelFeatures {
///         grid_size: g as f64,
///         cta_size: 256.0,
///         input_size: g as f64 * 256.0,
///         smem_size: 0.0,
///     })
///     .collect();
/// let targets: Vec<f64> = features.iter().map(|f| 2.0 * f.grid_size).collect();
/// let model = RidgeModel::fit(&features, &targets, 1e-6).unwrap();
/// let pred = model.predict(KernelFeatures {
///     grid_size: 100.0,
///     cta_size: 256.0,
///     input_size: 25_600.0,
///     smem_size: 0.0,
/// });
/// assert!((pred - 200.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeModel {
    /// Per-feature means used for standardization.
    means: Vec<f64>,
    /// Per-feature standard deviations used for standardization.
    stds: Vec<f64>,
    /// Learned weights over standardized features.
    weights: Vec<f64>,
    /// Learned intercept.
    intercept: f64,
    /// The regularization strength used in training.
    lambda: f64,
}

impl RidgeModel {
    /// Fits the model on feature/target pairs with L2 penalty `lambda`.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] on empty/mismatched inputs or a singular
    /// system (only possible with `lambda == 0` and collinear features).
    pub fn fit(
        features: &[KernelFeatures],
        targets: &[f64],
        lambda: f64,
    ) -> Result<Self, TrainError> {
        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.to_vec()).collect();
        Self::fit_raw(&rows, targets, lambda)
    }

    /// Fits with per-sample weights. Weighting by `1 / target²` minimizes
    /// *relative* squared error, which matches the evaluation metric for
    /// kernel-duration models (mean relative error, Fig. 7) and keeps
    /// short-kernel predictions accurate when training durations span
    /// orders of magnitude.
    ///
    /// # Errors
    ///
    /// See [`RidgeModel::fit`]; additionally returns a length-mismatch
    /// error when `weights` does not match.
    pub fn fit_weighted(
        features: &[KernelFeatures],
        targets: &[f64],
        weights: &[f64],
        lambda: f64,
    ) -> Result<Self, TrainError> {
        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.to_vec()).collect();
        Self::fit_raw_weighted(&rows, targets, Some(weights), lambda)
    }

    /// Fits on raw feature rows (any dimensionality).
    ///
    /// # Errors
    ///
    /// See [`RidgeModel::fit`].
    pub fn fit_raw(rows: &[Vec<f64>], targets: &[f64], lambda: f64) -> Result<Self, TrainError> {
        Self::fit_raw_weighted(rows, targets, None, lambda)
    }

    fn fit_raw_weighted(
        rows: &[Vec<f64>],
        targets: &[f64],
        weights: Option<&[f64]>,
        lambda: f64,
    ) -> Result<Self, TrainError> {
        if rows.is_empty() {
            return Err(TrainError::NoSamples);
        }
        if rows.len() != targets.len() {
            return Err(TrainError::LengthMismatch {
                features: rows.len(),
                targets: targets.len(),
            });
        }
        if let Some(w) = weights {
            if w.len() != rows.len() {
                return Err(TrainError::LengthMismatch {
                    features: rows.len(),
                    targets: w.len(),
                });
            }
        }
        let dim = rows[0].len();
        // Normalize weights to mean 1 so the effective sample size -- and
        // therefore the meaning of `lambda` -- is invariant to the weights'
        // absolute scale.
        let raw_total: f64 = (0..rows.len())
            .map(|i| weights.map_or(1.0, |w| w[i].max(0.0)))
            .sum();
        if raw_total <= 0.0 {
            return Err(TrainError::NoSamples);
        }
        let norm = rows.len() as f64 / raw_total;
        let w_of = move |i: usize| weights.map_or(1.0, |w| w[i].max(0.0)) * norm;
        let total_w: f64 = (0..rows.len()).map(w_of).sum();

        // Weighted standardization.
        let mut means = vec![0.0; dim];
        for (i, row) in rows.iter().enumerate() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += w_of(i) * v;
            }
        }
        for m in &mut means {
            *m /= total_w;
        }
        let mut stds = vec![0.0; dim];
        for (i, row) in rows.iter().enumerate() {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += w_of(i) * (v - m).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / total_w).sqrt();
            if *s < 1e-12 {
                // Constant feature: any weight works post-centering; pin the
                // scale so standardization is a no-op for it.
                *s = 1.0;
            }
        }

        // Standardize, then scale rows and targets by sqrt(weight): the
        // normal equations of weighted ridge.
        let standardized: Vec<Vec<f64>> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let sw = w_of(i).sqrt();
                row.iter()
                    .zip(means.iter().zip(&stds))
                    .map(|(v, (m, s))| sw * (v - m) / s)
                    .collect()
            })
            .collect();

        let target_mean = (0..rows.len()).map(|i| w_of(i) * targets[i]).sum::<f64>() / total_w;
        let centered: Vec<f64> = targets
            .iter()
            .enumerate()
            .map(|(i, t)| w_of(i).sqrt() * (t - target_mean))
            .collect();

        let x = Matrix::from_rows(&standardized);
        let mut gram = x.gram();
        gram.add_diagonal(lambda.max(0.0));
        let xty = x.transpose_mul_vec(&centered);
        let weights = gram.solve_spd(&xty).map_err(|_| TrainError::Singular)?;

        Ok(RidgeModel {
            means,
            stds,
            weights,
            intercept: target_mean,
            lambda,
        })
    }

    /// Predicts the duration (µs) for a feature vector.
    #[must_use]
    pub fn predict(&self, f: KernelFeatures) -> f64 {
        self.predict_raw(&f.to_vec())
    }

    /// Predicts for a raw feature row.
    ///
    /// # Panics
    ///
    /// Panics if the row's dimensionality differs from training.
    #[must_use]
    pub fn predict_raw(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature dimension mismatch");
        let mut acc = self.intercept;
        for ((v, w), (m, s)) in row
            .iter()
            .zip(&self.weights)
            .zip(self.means.iter().zip(&self.stds))
        {
            acc += w * (v - m) / s;
        }
        acc
    }

    /// The regularization strength the model was trained with.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean absolute relative error of the model on a labelled set, the
    /// metric of the paper's Fig. 7.
    ///
    /// Returns 0 for an empty set.
    #[must_use]
    pub fn mean_relative_error(&self, features: &[KernelFeatures], targets: &[f64]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        let total: f64 = features
            .iter()
            .zip(targets)
            .map(|(f, &t)| {
                if t.abs() < 1e-12 {
                    0.0
                } else {
                    ((self.predict(*f) - t) / t).abs()
                }
            })
            .sum();
        total / features.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(g: f64, i: f64) -> KernelFeatures {
        KernelFeatures {
            grid_size: g,
            cta_size: 256.0,
            input_size: i,
            smem_size: 0.0,
        }
    }

    #[test]
    fn recovers_linear_relationship() {
        let features: Vec<KernelFeatures> =
            (1..=100).map(|g| feat(g as f64, g as f64 * 3.0)).collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| 5.0 * f.grid_size + 0.5 * f.input_size + 10.0)
            .collect();
        let m = RidgeModel::fit(&features, &targets, 1e-9).unwrap();
        let err = m.mean_relative_error(&features, &targets);
        assert!(err < 1e-6, "err = {err}");
    }

    #[test]
    fn constant_features_do_not_break_fit() {
        // cta_size and smem_size are constant here.
        let features: Vec<KernelFeatures> = (1..=30).map(|g| feat(g as f64, 7.0)).collect();
        let targets: Vec<f64> = features.iter().map(|f| f.grid_size * 2.0).collect();
        let m = RidgeModel::fit(&features, &targets, 1e-6).unwrap();
        assert!((m.predict(feat(50.0, 7.0)) - 100.0).abs() < 0.5);
    }

    #[test]
    fn larger_lambda_shrinks_weights() {
        let features: Vec<KernelFeatures> = (1..=50).map(|g| feat(g as f64, g as f64)).collect();
        let targets: Vec<f64> = features.iter().map(|f| f.grid_size * 4.0).collect();
        let loose = RidgeModel::fit(&features, &targets, 1e-9).unwrap();
        let tight = RidgeModel::fit(&features, &targets, 1e4).unwrap();
        let w_loose: f64 = loose.weights.iter().map(|w| w * w).sum();
        let w_tight: f64 = tight.weights.iter().map(|w| w * w).sum();
        assert!(w_tight < w_loose);
    }

    #[test]
    fn empty_training_set_is_error() {
        assert_eq!(
            RidgeModel::fit(&[], &[], 1.0).unwrap_err(),
            TrainError::NoSamples
        );
    }

    #[test]
    fn mismatched_lengths_are_error() {
        let f = vec![feat(1.0, 1.0)];
        assert!(matches!(
            RidgeModel::fit(&f, &[1.0, 2.0], 1.0).unwrap_err(),
            TrainError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn relative_error_ignores_zero_targets() {
        let f = vec![feat(1.0, 1.0), feat(2.0, 2.0)];
        let m = RidgeModel::fit(&f, &[10.0, 20.0], 1e-6).unwrap();
        let err = m.mean_relative_error(&[feat(1.0, 1.0)], &[0.0]);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn noisy_fit_has_bounded_error() {
        // 10% multiplicative noise -> mean relative error should land well
        // under 20%.
        let mut state = 123u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let features: Vec<KernelFeatures> =
            (1..=100).map(|g| feat(g as f64, g as f64 * 2.0)).collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| (3.0 * f.grid_size + 20.0) * (1.0 + 0.2 * next()))
            .collect();
        let m = RidgeModel::fit(&features, &targets, 1e-3).unwrap();
        let err = m.mean_relative_error(&features, &targets);
        assert!(err < 0.2, "err = {err}");
    }
}
