//! Property-based tests: ridge regression recovers exactly-linear data and
//! the Cholesky solver inverts random SPD systems.

use proptest::prelude::*;

use flep_perfmodel::{KernelFeatures, Matrix, RidgeModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On noise-free linear data, ridge with a tiny penalty predicts
    /// within a small relative tolerance, for any positive coefficients.
    #[test]
    fn ridge_recovers_linear_functions(
        a in 0.01f64..10.0,
        b in 0.0f64..5.0,
        intercept in 0.0f64..100.0,
    ) {
        let features: Vec<KernelFeatures> = (1..=60)
            .map(|i| KernelFeatures {
                grid_size: f64::from(i) * 10.0,
                cta_size: 256.0,
                input_size: f64::from(i) * f64::from(i) * 3.0, // not collinear
                smem_size: 0.0,
            })
            .collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| a * f.grid_size + b * f.input_size + intercept)
            .collect();
        let model = RidgeModel::fit(&features, &targets, 1e-9).unwrap();
        for (f, t) in features.iter().zip(&targets) {
            let p = model.predict(*f);
            prop_assert!(
                (p - t).abs() <= 1e-6 * t.abs().max(1.0),
                "predicted {p} for target {t}"
            );
        }
    }

    /// Weighted and unweighted fits agree when all weights are equal,
    /// regardless of the (positive) common weight value.
    #[test]
    fn uniform_weights_match_unweighted_fit(w in 1e-6f64..1e6) {
        let features: Vec<KernelFeatures> = (1..=30)
            .map(|i| KernelFeatures {
                grid_size: f64::from(i),
                cta_size: 128.0,
                input_size: f64::from(i * i),
                smem_size: 0.0,
            })
            .collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|f| 2.0 * f.grid_size + 0.1 * f.input_size + 5.0)
            .collect();
        let weights = vec![w; features.len()];
        let plain = RidgeModel::fit(&features, &targets, 1e-3).unwrap();
        let weighted = RidgeModel::fit_weighted(&features, &targets, &weights, 1e-3).unwrap();
        for f in &features {
            prop_assert!(
                (plain.predict(*f) - weighted.predict(*f)).abs() < 1e-6,
                "uniform weights changed the fit"
            );
        }
    }

    /// Cholesky solve inverts random SPD systems `(AᵀA + I) x = b`.
    #[test]
    fn spd_solve_round_trips(
        rows in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 3),
            3..12
        ),
        x_true in prop::collection::vec(-5.0f64..5.0, 3),
    ) {
        let a = Matrix::from_rows(&rows);
        let mut gram = a.gram();
        gram.add_diagonal(1.0); // guarantees positive definiteness
        // b = gram * x_true
        let mut b = vec![0.0; 3];
        for (i, bi) in b.iter_mut().enumerate() {
            for (j, xj) in x_true.iter().enumerate() {
                *bi += gram.get(i, j) * xj;
            }
        }
        let x = gram.solve_spd(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8, "solve drifted: {got} vs {want}");
        }
    }
}
