//! Property-based tests on the in-tree `flep-check` harness: ridge
//! regression recovers exactly-linear data and the Cholesky solver inverts
//! random SPD systems.

use flep_perfmodel::{KernelFeatures, Matrix, RidgeModel};
use flep_sim_core::check::{check, CheckConfig};
use flep_sim_core::{assume, require, SimRng};

/// On noise-free linear data, ridge with a tiny penalty predicts within a
/// small relative tolerance, for any positive coefficients.
#[test]
fn ridge_recovers_linear_functions() {
    check(
        "ridge_recovers_linear_functions",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            (
                rng.uniform_f64(0.01, 10.0),
                rng.uniform_f64(0.0, 5.0),
                rng.uniform_f64(0.0, 100.0),
            )
        },
        |&(a, b, intercept)| {
            assume!(a >= 0.01 && b >= 0.0 && intercept >= 0.0);
            let features: Vec<KernelFeatures> = (1..=60)
                .map(|i| KernelFeatures {
                    grid_size: f64::from(i) * 10.0,
                    cta_size: 256.0,
                    input_size: f64::from(i) * f64::from(i) * 3.0, // not collinear
                    smem_size: 0.0,
                })
                .collect();
            let targets: Vec<f64> = features
                .iter()
                .map(|f| a * f.grid_size + b * f.input_size + intercept)
                .collect();
            let model = RidgeModel::fit(&features, &targets, 1e-9).unwrap();
            for (f, t) in features.iter().zip(&targets) {
                let p = model.predict(*f);
                require!(
                    (p - t).abs() <= 1e-6 * t.abs().max(1.0),
                    "predicted {p} for target {t}"
                );
            }
            Ok(())
        },
    );
}

/// Weighted and unweighted fits agree when all weights are equal,
/// regardless of the (positive) common weight value.
#[test]
fn uniform_weights_match_unweighted_fit() {
    check(
        "uniform_weights_match_unweighted_fit",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            // Log-uniform over [1e-6, 1e6] like the original exponent sweep.
            let exp = rng.uniform_f64(-6.0, 6.0);
            10f64.powf(exp)
        },
        |&w| {
            assume!(w > 0.0 && w.is_finite());
            let features: Vec<KernelFeatures> = (1..=30)
                .map(|i| KernelFeatures {
                    grid_size: f64::from(i),
                    cta_size: 128.0,
                    input_size: f64::from(i * i),
                    smem_size: 0.0,
                })
                .collect();
            let targets: Vec<f64> = features
                .iter()
                .map(|f| 2.0 * f.grid_size + 0.1 * f.input_size + 5.0)
                .collect();
            let weights = vec![w; features.len()];
            let plain = RidgeModel::fit(&features, &targets, 1e-3).unwrap();
            let weighted = RidgeModel::fit_weighted(&features, &targets, &weights, 1e-3).unwrap();
            for f in &features {
                require!(
                    (plain.predict(*f) - weighted.predict(*f)).abs() < 1e-6,
                    "uniform weights changed the fit"
                );
            }
            Ok(())
        },
    );
}

/// Cholesky solve inverts random SPD systems `(AᵀA + I) x = b`.
#[test]
fn spd_solve_round_trips() {
    check(
        "spd_solve_round_trips",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let n = rng.uniform_u64(3, 11) as usize;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..3).map(|_| rng.uniform_f64(-10.0, 10.0)).collect())
                .collect();
            let x_true: Vec<f64> = (0..3).map(|_| rng.uniform_f64(-5.0, 5.0)).collect();
            (rows, x_true)
        },
        |(rows, x_true)| {
            // Shrinking may prune rows or elements; keep the 3-column /
            // 3-unknown shape contract.
            assume!(rows.len() >= 3 && rows.iter().all(|r| r.len() == 3));
            assume!(x_true.len() == 3);
            let a = Matrix::from_rows(rows);
            let mut gram = a.gram();
            gram.add_diagonal(1.0); // guarantees positive definiteness
                                    // b = gram * x_true
            let mut b = vec![0.0; 3];
            for (i, bi) in b.iter_mut().enumerate() {
                for (j, xj) in x_true.iter().enumerate() {
                    *bi += gram.get(i, j) * xj;
                }
            }
            let x = gram.solve_spd(&b).unwrap();
            for (got, want) in x.iter().zip(x_true) {
                require!((got - want).abs() < 1e-8, "solve drifted: {got} vs {want}");
            }
            Ok(())
        },
    );
}
