//! Graceful degradation end-to-end: an 8-device fleet split into two
//! zones loses zone 0 for a third of the run. The brownout tier must
//! shed exactly the lowest-priority class at the door while capacity is
//! degraded — with an exact shed ledger (offered = admitted + dropped +
//! shed) — and goodput for the surviving classes must track the
//! surviving device-time share instead of collapsing.

use flep_gpu_sim::{CorrelatedFaultConfig, CorrelatedFaultKind, FailureTopology};
use flep_serve::{run_serve, ArrivalProcess, BrownoutConfig, ServeConfig, ServeReport, TenantSpec};
use flep_sim_core::json::ToJson;
use flep_sim_core::SimTime;
use flep_workloads::ModelId;

const HORIZON_MS: u64 = 60;
const OUTAGE_MS: u64 = 20;

/// Eight tenants, two of each model class (same mix the failover suite
/// uses): Dlrm at priority 3 down to Gpt2 at priority 0 — the class the
/// brownout tier sacrifices first.
fn fleet_tenants() -> Vec<TenantSpec> {
    let classes = [
        (ModelId::Dlrm, 3u32, 20_000.0),
        (ModelId::Resnet, 2, 8_000.0),
        (ModelId::Bert, 1, 2_500.0),
        (ModelId::Gpt2, 0, 300.0),
    ];
    (0..8)
        .map(|i| {
            let (model, priority, rate) = classes[i % classes.len()];
            TenantSpec::new(
                &format!("t{i}-{model:?}"),
                model,
                priority,
                ArrivalProcess::Poisson { rate_per_s: rate },
            )
        })
        .collect()
}

/// Two zones of four devices each, with a brownout tier that sheds
/// priority-0 work whenever more than a quarter of the fleet is out.
fn zoned_cfg(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(seed, SimTime::from_ms(HORIZON_MS), fleet_tenants());
    cfg.devices = 8;
    cfg.topology = Some(FailureTopology::new(2, 1, 4));
    cfg.brownout = Some(BrownoutConfig::by_priority(&[(0.75, 1)]));
    cfg
}

/// The same config with zone 0 scripted dark for `OUTAGE_MS` starting a
/// third of the way in. The quiet correlated config (rates zero) draws
/// nothing; it only supplies the outage duration for the scripted event.
fn outage_cfg(seed: u64) -> ServeConfig {
    let mut cfg = zoned_cfg(seed);
    cfg.correlated_faults = Some(
        CorrelatedFaultConfig::quiet(seed).with_zone_outages(0.0, SimTime::from_ms(OUTAGE_MS)),
    );
    cfg.scripted_correlated = vec![(
        SimTime::from_ms(HORIZON_MS / 3),
        CorrelatedFaultKind::ZoneOutage { zone: 0 },
    )];
    cfg.max_migrations = 16;
    cfg
}

fn assert_ledger_exact(r: &ServeReport, label: &str) {
    assert!(r.reconciles(), "{label}: ledger must balance: {r:?}");
    for t in &r.tenants {
        let s = &t.stats;
        assert!(
            s.completed + s.expired + s.failed <= s.admitted,
            "{label}/{}: over-settled ledger: {s:?}",
            t.name
        );
    }
}

#[test]
fn zone_outage_sheds_lowest_priority_and_holds_goodput() {
    let clean = run_serve(&zoned_cfg(2025));
    let degraded = run_serve(&outage_cfg(2025));

    assert_ledger_exact(&clean, "clean");
    assert_ledger_exact(&degraded, "degraded");
    // The shed gate runs before any arrival-process draw, so the offered
    // tape is identical whether or not anything was shed.
    assert_eq!(clean.offered(), degraded.offered(), "same arrival tape");

    // The brownout tier engaged, and only against priority-0 tenants:
    // everything above the tier's floor rides out the outage un-shed.
    let shed_total: u64 = degraded.tenants.iter().map(|t| t.stats.shed).sum();
    assert!(shed_total > 0, "outage never tripped the brownout tier");
    for t in &degraded.tenants {
        if t.priority > 0 {
            assert_eq!(t.stats.shed, 0, "{} shed above the tier floor", t.name);
        }
    }
    // Exact shed attribution: the run summary's shed counter is the sum
    // of the per-tenant ledgers, nothing more.
    assert_eq!(degraded.summary.shed, shed_total, "shed ledger drifted");
    // Breadcrumbs of the outage itself: zone 0's four devices each log
    // the correlated fault and their restore.
    assert!(
        degraded.device_events >= 8,
        "4 faults + 4 restores expected: {degraded:?}"
    );

    // Goodput tracks surviving capacity: zone 0 (half the fleet) dark
    // for a third of the horizon leaves ~5/6 of the clean device-time,
    // and shedding the priority-0 class frees the survivors to keep the
    // protected classes near clean — never better than clean by more
    // than noise.
    let ratio = degraded.goodput() as f64 / clean.goodput() as f64;
    assert!(
        (0.80..=1.02).contains(&ratio),
        "goodput ratio {ratio:.4} outside the surviving-capacity band \
         (clean {}, degraded {})",
        clean.goodput(),
        degraded.goodput()
    );
}

/// The shed counter and recovery summary surface in the rendered report
/// of a degraded run — and only then.
#[test]
fn degraded_report_carries_shed_and_summary_keys() {
    let degraded = run_serve(&outage_cfg(7)).to_json().render();
    assert!(degraded.contains("\"shed\""), "report: {degraded}");
    assert!(degraded.contains("\"recovery_summary\""));
    let clean = run_serve(&zoned_cfg(7)).to_json().render();
    assert!(!clean.contains("\"shed\""), "clean report: {clean}");
}

/// An armed-but-idle brownout config is transparent: with full capacity
/// the tier never sheds, and the report is byte-identical to a run with
/// no brownout and no topology configured at all.
#[test]
fn idle_brownout_config_is_byte_identical() {
    let mut plain = ServeConfig::new(11, SimTime::from_ms(HORIZON_MS), fleet_tenants());
    plain.devices = 8;
    let a = run_serve(&plain).to_json().render();
    let b = run_serve(&zoned_cfg(11)).to_json().render();
    assert_eq!(a, b);
}

#[test]
fn degraded_runs_replay_byte_identically() {
    let a = run_serve(&outage_cfg(99)).to_json().render();
    let b = run_serve(&outage_cfg(99)).to_json().render();
    assert_eq!(a, b);
}
