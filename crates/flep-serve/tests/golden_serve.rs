//! Seeded end-to-end serving tests: a pinned golden trace for a small
//! Poisson sweep (byte-identical at 1 and 8 worker threads), plus a
//! fault-injected variant checking the watchdog recovery taxonomy still
//! reconciles and goodput degrades monotonically with the fault rate.

use flep_core::runner;
use flep_gpu_sim::FaultConfig;
use flep_serve::{run_serve, sweep_offered_load, ArrivalProcess, ServeConfig, TenantSpec};
use flep_sim_core::json::{JsonValue, ToJson};
use flep_sim_core::SimTime;
use flep_workloads::ModelId;

/// A small, Poisson-only two-tenant config: a tight-SLO recommendation
/// tenant over a low-priority generative one, 50ms of arrivals.
fn small_cfg(seed: u64) -> ServeConfig {
    ServeConfig::new(
        seed,
        SimTime::from_ms(50),
        vec![
            TenantSpec::new(
                "dlrm",
                ModelId::Dlrm,
                2,
                ArrivalProcess::Poisson { rate_per_s: 8000.0 },
            ),
            TenantSpec::new(
                "gpt2-gen",
                ModelId::Gpt2,
                0,
                ArrivalProcess::Poisson { rate_per_s: 300.0 },
            ),
        ],
    )
}

/// The document the golden pins: a two-point load sweep of the small
/// config, wrapped exactly like `flep_bench::emit_json` output.
fn sweep_doc() -> String {
    let points = sweep_offered_load(&small_cfg(3), &[0.5, 1.5]);
    JsonValue::object([
        ("experiment", "serve_small".to_json()),
        ("rows", points.to_json()),
    ])
    .render()
        + "\n"
}

/// The pinned golden trace (seed 3): any drift in arrivals, admission,
/// EDF order, batching, runtime scheduling, or the report rendering shows
/// up here. Regenerate deliberately with
/// `cargo test -p flep-serve --test golden_serve -- --ignored regen`.
#[test]
fn small_sweep_matches_pinned_golden() {
    let doc = runner::with_threads(1, sweep_doc);
    assert_eq!(
        doc,
        include_str!("golden/serve_small.json"),
        "serve trace drifted from the pinned golden"
    );
}

/// The same sweep is byte-identical with 8 worker threads: cells derive
/// their seeds from the root and merge in index order.
#[test]
fn small_sweep_is_thread_invariant() {
    let one = runner::with_threads(1, sweep_doc);
    let eight = runner::with_threads(8, sweep_doc);
    assert_eq!(one, eight, "serve sweep depends on the thread count");
    assert_eq!(one, include_str!("golden/serve_small.json"));
}

/// Writes a fresh golden; kept `#[ignore]`d so it only runs on demand.
#[test]
#[ignore = "regenerates the pinned golden"]
fn regen_golden() {
    let doc = runner::with_threads(1, sweep_doc);
    let dest = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/serve_small.json");
    std::fs::write(dest, doc).expect("write golden");
}

/// Runs the small config — scaled up to near-saturation load, where
/// recovery latency actually costs deadlines — under a seeded fault plan
/// of the given strength. Returns (report goodput, faults fired).
fn faulty_goodput(fault_rate: f64) -> (u64, u64) {
    let mut cfg = small_cfg(3);
    for t in &mut cfg.tenants {
        t.arrivals = t.arrivals.scaled(6.0);
    }
    if fault_rate > 0.0 {
        cfg.faults = Some(
            FaultConfig::quiet(17)
                .with_launch_reject(fault_rate)
                .with_signal_drop(fault_rate)
                .with_stuck_flag(fault_rate)
                .with_stuck_exit(fault_rate / 2.0)
                .with_note_drop(fault_rate),
        );
    }
    let r = run_serve(&cfg);
    assert!(
        r.reconciles(),
        "ledger must reconcile at fault rate {fault_rate}: {r:?}"
    );
    // Taxonomy reconciliation: every kill the watchdog reports is also an
    // escalation-ladder kill, and fault injection leaves traces.
    assert!(
        r.recoveries[1] <= r.escalations[2],
        "more watchdog kills than ladder kills: {:?} vs {:?}",
        r.recoveries,
        r.escalations
    );
    if fault_rate > 0.0 {
        assert!(r.faults_fired > 0, "fault plan never fired");
        assert!(
            r.recoveries.iter().sum::<u64>() > 0,
            "faults fired but the watchdog never recovered anything"
        );
    } else {
        assert_eq!(r.faults_fired, 0);
    }
    (r.goodput(), r.faults_fired)
}

/// Goodput degrades monotonically as the injected fault rate grows, and
/// the recovery ledger stays balanced throughout.
#[test]
fn goodput_degrades_monotonically_with_fault_rate() {
    let rates = [0.0, 0.1, 0.3];
    let results: Vec<(u64, u64)> = rates.iter().map(|&p| faulty_goodput(p)).collect();
    for (i, w) in results.windows(2).enumerate() {
        assert!(
            w[0].0 >= w[1].0,
            "goodput rose with the fault rate: {} at {} -> {} at {}",
            w[0].0,
            rates[i],
            w[1].0,
            rates[i + 1]
        );
    }
    assert!(
        results[0].0 > results[2].0,
        "heavy faults did not dent goodput at all"
    );
}
