//! Property tests for the serving frontend's EDF queue and admission
//! control, on the in-tree `flep-check` harness (64+ seeded cases each).

use flep_serve::{AdmissionControl, DropReason, EdfQueue};
use flep_sim_core::check::{check, CheckConfig};
use flep_sim_core::{require, require_eq, SimRng, SimTime};

/// A naive reference model of an EDF queue: a plain vector popped by
/// linear scan for the `(deadline, seq)` minimum. Obviously correct,
/// obviously slow.
#[derive(Default)]
struct NaiveEdf {
    items: Vec<(SimTime, u64)>,
    next_seq: u64,
}

impl NaiveEdf {
    fn push(&mut self, deadline: SimTime) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.items.push((deadline, seq));
        seq
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let at = self
            .items
            .iter()
            .enumerate()
            .min_by_key(|(_, &(d, s))| (d, s))
            .map(|(i, _)| i)?;
        Some(self.items.remove(at))
    }

    fn expire(&mut self, now: SimTime) -> Vec<(SimTime, u64)> {
        let mut gone = Vec::new();
        while let Some(&(d, _)) = self
            .items
            .iter()
            .min_by_key(|&&(d, s)| (d, s))
            .filter(|&&(d, _)| d <= now)
        {
            let _ = d;
            let popped = self.pop().expect("invariant: a minimum was just found");
            gone.push(popped);
        }
        gone
    }
}

/// Op stream: `(code % 3, value)` where 0 = push(value as deadline),
/// 1 = pop, 2 = expire(value as now). Values stay in a narrow window so
/// deadline ties and already-expired pushes both occur often.
fn gen_ops(rng: &mut SimRng) -> Vec<(u8, u64)> {
    let n = rng.uniform_u64(1, 60) as usize;
    (0..n)
        .map(|_| (rng.uniform_u64(0, 6) as u8, rng.uniform_u64(0, 24)))
        .collect()
}

/// The indexed-heap EDF queue agrees with the naive model op for op:
/// same pop results (deadline and insertion sequence), same expiry sets,
/// same lengths — under arbitrary push/pop/expire interleavings.
#[test]
fn edf_queue_matches_naive_model() {
    check(
        "edf_queue_matches_naive_model",
        CheckConfig::default(),
        gen_ops,
        |ops| {
            let mut real: EdfQueue<u64> = EdfQueue::new();
            let mut model = NaiveEdf::default();
            for &(code, value) in ops {
                match code % 3 {
                    0 => {
                        let deadline = SimTime::from_us(value);
                        let seq = model.push(deadline);
                        real.push(deadline, seq);
                    }
                    1 => {
                        let got = real.pop();
                        let want = model.pop();
                        require_eq!(got, want, "pop diverged");
                    }
                    _ => {
                        let now = SimTime::from_us(value);
                        let mut got = Vec::new();
                        real.expire_into(now, &mut got);
                        let want: Vec<u64> =
                            model.expire(now).into_iter().map(|(_, s)| s).collect();
                        require_eq!(got, want, "expiry diverged at now={now}");
                        require!(
                            real.peek_deadline().is_none_or(|d| d > now),
                            "live head still expired"
                        );
                    }
                }
                require_eq!(real.len(), model.items.len(), "length diverged");
                let head = real.peek_deadline();
                let model_head = model.items.iter().map(|&(d, _)| d).min();
                require_eq!(head, model_head, "head deadline diverged");
            }
            Ok(())
        },
    );
}

/// Draining the queue after any op sequence yields deadlines in
/// non-decreasing order with FIFO sequence numbers among ties.
#[test]
fn edf_drain_order_is_sorted_fifo_on_ties() {
    check(
        "edf_drain_order_is_sorted_fifo_on_ties",
        CheckConfig::default(),
        gen_ops,
        |ops| {
            let mut q: EdfQueue<u64> = EdfQueue::new();
            let mut seq = 0u64;
            for &(code, value) in ops {
                match code % 3 {
                    0 => {
                        q.push(SimTime::from_us(value), seq);
                        seq += 1;
                    }
                    1 => {
                        let _ = q.pop();
                    }
                    _ => {
                        let mut sink = Vec::new();
                        q.expire_into(SimTime::from_us(value), &mut sink);
                    }
                }
            }
            let mut drained = Vec::new();
            while let Some(pair) = q.pop() {
                drained.push(pair);
            }
            for w in drained.windows(2) {
                let (d0, s0) = w[0];
                let (d1, s1) = w[1];
                require!(d0 <= d1, "deadlines out of order: {d0} after {d1}");
                if d0 == d1 {
                    require!(s0 < s1, "tie broke LIFO: seq {s0} before {s1}");
                }
            }
            Ok(())
        },
    );
}

/// Admission control never admits a request whose deadline has already
/// passed, never admits past capacity, and admits everything else.
#[test]
fn admission_never_admits_past_deadlines() {
    check(
        "admission_never_admits_past_deadlines",
        CheckConfig::default(),
        |rng| {
            (
                rng.uniform_u64(0, 50),  // now (us)
                rng.uniform_u64(0, 100), // deadline (us)
                rng.uniform_u64(0, 8),   // queue length
                rng.uniform_u64(0, 8),   // queue cap
            )
        },
        |&(now_us, deadline_us, len, cap)| {
            let adm = AdmissionControl {
                queue_cap: cap as usize,
            };
            let now = SimTime::from_us(now_us);
            let deadline = SimTime::from_us(deadline_us);
            let decision = adm.decide(now, deadline, len as usize);
            match decision {
                Ok(()) => {
                    require!(deadline > now, "admitted a past deadline");
                    require!(len < cap, "admitted past capacity");
                }
                Err(DropReason::PastDeadline) => require!(deadline <= now),
                Err(DropReason::QueueFull) => {
                    require!(deadline > now, "capacity drop hid a past deadline");
                    require!(len >= cap);
                }
            }
            Ok(())
        },
    );
}
