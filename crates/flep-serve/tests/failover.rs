//! Cluster failover end-to-end: an 8-device serving fleet loses one
//! device permanently mid-run. Every admitted request must still be
//! accounted exactly once, resident batches migrate to survivors instead
//! of being lost, no batch runs twice (the ledger would overflow), and
//! goodput degrades proportionally to the lost capacity — not
//! catastrophically.

use flep_serve::{run_serve, ArrivalProcess, ServeConfig, ServeReport, TenantSpec};
use flep_sim_core::json::ToJson;
use flep_sim_core::SimTime;
use flep_workloads::ModelId;

const DEVICES: u32 = 8;
const HORIZON_MS: u64 = 60;

/// Eight tenants (the frontend caps each tenant at one in-flight batch,
/// so filling eight devices needs at least eight tenants), two of each
/// model class, loaded heavily enough that every device stays busy.
fn fleet_tenants() -> Vec<TenantSpec> {
    let classes = [
        (ModelId::Dlrm, 3u32, 20_000.0),
        (ModelId::Resnet, 2, 8_000.0),
        (ModelId::Bert, 1, 2_500.0),
        (ModelId::Gpt2, 0, 300.0),
    ];
    (0..8)
        .map(|i| {
            let (model, priority, rate) = classes[i % classes.len()];
            TenantSpec::new(
                &format!("t{i}-{model:?}"),
                model,
                priority,
                ArrivalProcess::Poisson { rate_per_s: rate },
            )
        })
        .collect()
}

fn fleet_cfg(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(seed, SimTime::from_ms(HORIZON_MS), fleet_tenants());
    cfg.devices = DEVICES;
    cfg
}

fn assert_ledger_exact(r: &ServeReport, label: &str) {
    assert!(r.reconciles(), "{label}: ledger must balance: {r:?}");
    for t in &r.tenants {
        let s = &t.stats;
        // Exactly-once settling: a double-run would settle the same batch
        // twice and push completed past admitted.
        assert!(
            s.completed + s.expired + s.failed <= s.admitted,
            "{label}/{}: over-settled ledger: {s:?}",
            t.name
        );
    }
}

#[test]
fn eight_device_fleet_survives_permanent_death() {
    let clean = run_serve(&fleet_cfg(2024));
    let mut cfg = fleet_cfg(2024);
    cfg.scripted_device_faults = vec![(
        SimTime::from_ms(HORIZON_MS / 2),
        0,
        flep_gpu_sim::DeviceFaultKind::Death,
    )];
    let faulty = run_serve(&cfg);

    assert_ledger_exact(&clean, "clean");
    assert_ledger_exact(&faulty, "faulty");
    assert_eq!(clean.offered(), faulty.offered(), "same arrival tape");

    // The dead device's resident batches were migrated, not lost.
    assert!(
        faulty.migrations >= 1,
        "a loaded device died; its batches must migrate: {faulty:?}"
    );
    assert!(faulty.device_events >= 2, "fault + deregistration logged");
    let migrated_total: u64 = faulty.tenants.iter().map(|t| t.stats.migrated).sum();
    assert_eq!(migrated_total, faulty.migrations, "per-tenant attribution");

    // Goodput degrades with capacity, and proportionally: losing 1 of 8
    // devices halfway leaves 15/16 of the clean run's device-time, so
    // goodput stays within a pinned band of that ratio (slack for
    // migration overhead and placement skew) — and never *exceeds* clean
    // by more than noise.
    let ratio = faulty.goodput() as f64 / clean.goodput() as f64;
    assert!(
        (0.80..=1.02).contains(&ratio),
        "goodput ratio {ratio:.4} outside the (N-1)/N band \
         (clean {}, faulty {})",
        clean.goodput(),
        faulty.goodput()
    );
}

#[test]
fn failover_runs_replay_byte_identically() {
    let mut cfg = fleet_cfg(99);
    cfg.device_faults = Some(
        flep_gpu_sim::DeviceFaultConfig::quiet(99)
            .with_hangs(30.0, SimTime::from_ms(1))
            .with_losses(20.0, SimTime::from_ms(2))
            .with_deaths(10.0),
    );
    let a = run_serve(&cfg).to_json().render();
    let b = run_serve(&cfg).to_json().render();
    assert_eq!(a, b);
}

/// The cluster telemetry keys appear in multi-device reports (and golden
/// single-device reports, which omit them, are covered by the golden
/// trace suite).
#[test]
fn multi_device_report_carries_cluster_keys() {
    let r = run_serve(&fleet_cfg(5)).to_json().render();
    assert!(r.contains("\"devices\":8"), "report: {r}");
    assert!(r.contains("\"migrations\""));
    assert!(r.contains("\"device_events\""));
}
