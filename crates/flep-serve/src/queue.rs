//! The per-tenant request queue: earliest-deadline-first with admission
//! control.
//!
//! Built on the sim-core indexed 4-ary heap ([`flep_sim_core::EventQueue`])
//! with the request **deadline** as the key, so the pop order inherits the
//! engine's proven `(time, seq)` contract verbatim: earliest deadline
//! first, FIFO among equal deadlines. No second ordering implementation to
//! drift from the first.

use flep_sim_core::{EventQueue, SimTime};

/// Why a request was rejected at the door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The deadline was already at or before the arrival instant; no
    /// schedule can meet it, so no GPU time is spent on it.
    PastDeadline,
    /// The tenant's queue is at capacity (load shedding).
    QueueFull,
}

impl DropReason {
    /// Short stable name, used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DropReason::PastDeadline => "past-deadline",
            DropReason::QueueFull => "queue-full",
        }
    }
}

/// Admission policy for one tenant queue: bounded depth, and no request
/// whose deadline has already passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Maximum queued (admitted, not yet dispatched) requests.
    pub queue_cap: usize,
}

impl AdmissionControl {
    /// Decides admission for a request arriving at `now` with `deadline`,
    /// given the current queue depth.
    ///
    /// A deadline **at or before** `now` is rejected: even a zero-cost
    /// schedule would miss it. The capacity check comes second, so a
    /// doomed request never evicts room a feasible one could use.
    pub fn decide(
        &self,
        now: SimTime,
        deadline: SimTime,
        queue_len: usize,
    ) -> Result<(), DropReason> {
        if deadline <= now {
            return Err(DropReason::PastDeadline);
        }
        if queue_len >= self.queue_cap {
            return Err(DropReason::QueueFull);
        }
        Ok(())
    }
}

/// An earliest-deadline-first queue with deterministic `(deadline, seq)`
/// ordering: among equal deadlines, insertion order wins.
#[derive(Debug, Clone)]
pub struct EdfQueue<T> {
    inner: EventQueue<T>,
}

impl<T> Default for EdfQueue<T> {
    fn default() -> Self {
        EdfQueue::new()
    }
}

impl<T> EdfQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EdfQueue {
            inner: EventQueue::new(),
        }
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Enqueues `item` with `deadline` as its EDF key.
    pub fn push(&mut self, deadline: SimTime, item: T) {
        self.inner.push(deadline, item);
    }

    /// The earliest queued deadline, if any.
    #[must_use]
    pub fn peek_deadline(&self) -> Option<SimTime> {
        self.inner.peek_time()
    }

    /// Pops the earliest-deadline item (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.inner.pop().map(|e| (e.time, e.payload))
    }

    /// Pops every item whose deadline is at or before `now` — already
    /// missed, so dispatching it would waste GPU time — into `out`.
    /// Returns how many expired.
    pub fn expire_into(&mut self, now: SimTime, out: &mut Vec<T>) -> usize {
        let mut n = 0;
        while self.peek_deadline().is_some_and(|d| d <= now) {
            let (_, item) = self.pop().expect("invariant: peeked head exists");
            out.push(item);
            n += 1;
        }
        n
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_us(v)
    }

    #[test]
    fn pops_in_deadline_order_fifo_on_ties() {
        let mut q = EdfQueue::new();
        q.push(us(30), "late");
        q.push(us(10), "a");
        q.push(us(10), "b");
        q.push(us(20), "mid");
        assert_eq!(q.peek_deadline(), Some(us(10)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, ["a", "b", "mid", "late"]);
    }

    #[test]
    fn expiry_pops_exactly_the_missed_prefix() {
        let mut q = EdfQueue::new();
        for d in [5u64, 10, 15, 20] {
            q.push(us(d), d);
        }
        let mut gone = Vec::new();
        // Deadline == now counts as missed.
        assert_eq!(q.expire_into(us(10), &mut gone), 2);
        assert_eq!(gone, [5, 10]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_deadline(), Some(us(15)));
        assert_eq!(q.expire_into(us(10), &mut gone), 0);
    }

    #[test]
    fn admission_rejects_past_deadlines_before_capacity() {
        let adm = AdmissionControl { queue_cap: 1 };
        // Past deadline wins even when the queue is also full.
        assert_eq!(adm.decide(us(10), us(10), 1), Err(DropReason::PastDeadline));
        assert_eq!(adm.decide(us(10), us(11), 1), Err(DropReason::QueueFull));
        assert_eq!(adm.decide(us(10), us(11), 0), Ok(()));
    }

    #[test]
    fn clear_empties() {
        let mut q = EdfQueue::new();
        q.push(us(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
