//! SLO-driven multi-tenant inference serving on top of the FLEP runtime.
//!
//! The FLEP evaluation (§6) co-runs a fixed set of batch kernels; this
//! crate adds the serving-system view that motivates preemption in the
//! first place: an **open-loop** stream of inference requests per tenant,
//! each with a latency SLO, competing for one GPU.
//!
//! The pipeline, per tenant:
//!
//! 1. **Arrivals** ([`ArrivalProcess`]) — Poisson or a bursty/diurnal
//!    square-wave trace, seeded from the in-tree deterministic
//!    [`flep_sim_core::SimRng`].
//! 2. **Admission** ([`AdmissionControl`]) — a request whose deadline has
//!    already passed, or that finds the tenant queue at capacity, is
//!    dropped at the door (§2's insight that a late answer is a wrong
//!    answer, applied before spending GPU time).
//! 3. **Queueing** ([`EdfQueue`]) — earliest-deadline-first order with a
//!    deterministic `(deadline, seq)` tie-break, built on the sim-core
//!    indexed event heap so the ordering contract is exactly the one the
//!    engine already proves.
//! 4. **Batching + dispatch** ([`ServeWorld`]) — queued requests are
//!    formed into persistent-grid batches (one task = one request) and
//!    submitted into the FLEP runtime, where tenant priority maps onto
//!    the HPF preemption policy and the watchdog escalation ladder
//!    (flag → forced drain → kill): a tight-SLO arrival preempts a
//!    running low-priority batch instead of waiting behind it.
//!
//! Everything is a deterministic discrete-event simulation: a
//! [`ServeReport`] is byte-identical for a given seed regardless of
//! `FLEP_THREADS`, and the load sweep ([`sweep_offered_load`]) re-derives
//! per-cell seeds so thread counts only change wall-clock, not results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod brownout;
mod frontend;
mod queue;
mod sweep;

pub use arrivals::ArrivalProcess;
pub use brownout::{BrownoutConfig, BrownoutTier};
pub use frontend::{
    run_serve, Request, ServeConfig, ServeOutcome, ServeReport, ServeWorld, TenantReport,
    TenantSpec,
};
pub use queue::{AdmissionControl, DropReason, EdfQueue};
pub use sweep::{reference_tenants, sweep_offered_load, LoadPoint};
