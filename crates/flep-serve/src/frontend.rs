//! The serving frontend world: admission → EDF queue → batch formation →
//! dispatch into the FLEP runtime.
//!
//! [`ServeWorld`] embeds a [`GpuCluster`] rather than wrapping the
//! [`CoRun`](flep_runtime::CoRun) driver: the frontend owns the event loop
//! (its event type covers both arrival events and cluster-internal
//! events), forwards cluster events via [`GpuCluster::dispatch`], and
//! re-schedules the cluster's buffered follow-ups each step. Batches enter
//! through [`GpuCluster::submit`], which places each on the least-loaded
//! healthy device; within a device a high-priority batch preempts a
//! running low-priority batch through the ordinary HPF path — flag first,
//! then the watchdog's forced-drain and kill escalations when the victim
//! ignores it. Device failures (hang / transient loss / death) evict
//! resident batches and migrate them to survivors, so goodput degrades
//! with lost capacity instead of losing requests.
//!
//! With one device and no device faults the cluster is a transparent
//! wrapper: event streams — and therefore golden traces — are
//! byte-identical to the previous direct-embedding frontend.

use crate::arrivals::ArrivalProcess;
use crate::brownout::BrownoutConfig;
use crate::queue::{AdmissionControl, DropReason, EdfQueue};
use flep_gpu_sim::{
    CorrelatedFaultConfig, CorrelatedFaultKind, DeviceFaultConfig, DeviceFaultKind,
    FailureTopology, FaultConfig, GpuConfig, TaskCost,
};
use flep_metrics::{tail_triple_ns, Percentiles, RecoverySummary};
use flep_runtime::{
    ClusterConfig, ClusterEvent, GpuCluster, HealthConfig, JobSpec, KernelProfile, PlacementConfig,
    Policy, RecoveryAction, WatchdogConfig,
};
use flep_sim_core::json::{JsonValue, ToJson};
use flep_sim_core::{PartitionedSimulation, RunOutcome, SimRng, SimTime, World};
use flep_workloads::{InferenceModel, ModelId};

/// One admitted inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival instant.
    pub arrival: SimTime,
    /// Latency deadline (`arrival + slo`).
    pub deadline: SimTime,
    /// Per-tenant admission sequence number (tie-break witness).
    pub seq: u64,
}

/// One tenant: a deployed model, its load, and its scheduling class.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (stable; appears in reports and golden traces).
    pub name: String,
    /// Which inference model this tenant serves.
    pub model: ModelId,
    /// Runtime priority: higher preempts lower via HPF.
    pub priority: u32,
    /// Open-loop arrival process.
    pub arrivals: ArrivalProcess,
    /// Queue depth bound for admission control.
    pub queue_cap: usize,
    /// Latency SLO; `None` uses the model's default.
    pub slo: Option<SimTime>,
    /// Largest batch formed per dispatch.
    pub max_batch: u64,
}

impl TenantSpec {
    /// A tenant serving `model` with its default SLO and sensible
    /// serving defaults (queue cap 256, batch cap 32).
    #[must_use]
    pub fn new(name: &str, model: ModelId, priority: u32, arrivals: ArrivalProcess) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            model,
            priority,
            arrivals,
            queue_cap: 256,
            slo: None,
            max_batch: 32,
        }
    }

    /// The effective SLO.
    #[must_use]
    pub fn effective_slo(&self) -> SimTime {
        self.slo
            .unwrap_or_else(|| InferenceModel::get(self.model).slo)
    }
}

/// A full serving experiment description.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root seed; everything (arrivals, kernel noise, faults) derives
    /// from it deterministically.
    pub seed: u64,
    /// Arrivals stop here; the sim then drains to completion.
    pub horizon: SimTime,
    /// Runtime scheduling policy (default: HPF).
    pub policy: Policy,
    /// Watchdog configuration (always on: serving without the escalation
    /// ladder would hang on the first stuck victim).
    pub watchdog: WatchdogConfig,
    /// Optional seeded grid-fault plan. Each device derives its own plan
    /// from this seed (device 0 uses it verbatim).
    pub faults: Option<FaultConfig>,
    /// Event budget for the embedded discrete-event run.
    pub event_budget: u64,
    /// Number of simulated GPUs behind the frontend (default 1).
    pub devices: u32,
    /// Seeded device-fault injection (hang / transient loss / death).
    pub device_faults: Option<DeviceFaultConfig>,
    /// Scripted device faults `(time, device, kind)` — the reproducible
    /// way to stage "device k dies mid-run" scenarios.
    pub scripted_device_faults: Vec<(SimTime, u32, DeviceFaultKind)>,
    /// Per-batch migration budget before the batch fails structurally.
    pub max_migrations: u32,
    /// Failure topology of the fleet (`None` = flat: every device its
    /// own rack and zone).
    pub topology: Option<FailureTopology>,
    /// Seeded correlated-outage injection (zone outages, rack power
    /// cycles) over the topology.
    pub correlated_faults: Option<CorrelatedFaultConfig>,
    /// Scripted correlated faults `(time, kind)` — the reproducible way
    /// to stage "zone 0 goes dark mid-run" scenarios.
    pub scripted_correlated: Vec<(SimTime, CorrelatedFaultKind)>,
    /// Per-device health scoring and circuit breaking (`None` = off).
    pub health: Option<HealthConfig>,
    /// Placement constraints (tenant anti-affinity, spread across racks).
    pub placement: PlacementConfig,
    /// Graceful-degradation tiers: under lost capacity, shed the
    /// lowest-priority / loosest-SLO arrivals at the door (`None` = never
    /// shed).
    pub brownout: Option<BrownoutConfig>,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
}

impl ServeConfig {
    /// A config with the given tenants and defaults everywhere else.
    #[must_use]
    pub fn new(seed: u64, horizon: SimTime, tenants: Vec<TenantSpec>) -> ServeConfig {
        ServeConfig {
            seed,
            horizon,
            policy: Policy::hpf(),
            watchdog: WatchdogConfig::default(),
            faults: None,
            event_budget: flep_runtime::DEFAULT_EVENT_BUDGET,
            devices: 1,
            device_faults: None,
            scripted_device_faults: Vec::new(),
            max_migrations: 8,
            topology: None,
            correlated_faults: None,
            scripted_correlated: Vec::new(),
            health: None,
            placement: PlacementConfig::default(),
            brownout: None,
            tenants,
        }
    }
}

/// Frontend event type: tenant arrivals interleaved with cluster events.
#[derive(Debug)]
pub enum ServeEvent {
    /// A request arrives for tenant `idx`.
    Arrival {
        /// Tenant index.
        tenant: usize,
    },
    /// A forwarded cluster event (shard-internal runtime events plus
    /// device faults and restores).
    Sys(ClusterEvent),
}

/// Per-tenant serving counters. Every admitted request ends in exactly one
/// of `completed` (split into `goodput` / `slo_miss`), `expired`, or
/// `failed`; [`TenantReport::reconciles`] checks the ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests the arrival process offered.
    pub offered: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Dropped at the door: deadline already passed.
    pub dropped_past_deadline: u64,
    /// Dropped at the door: queue full.
    pub dropped_queue_full: u64,
    /// Shed at the door by a brownout tier (degraded capacity).
    pub shed: u64,
    /// Admitted but expired in the queue before dispatch.
    pub expired: u64,
    /// Requests whose batch completed on the GPU.
    pub completed: u64,
    /// Completed within the deadline.
    pub goodput: u64,
    /// Completed, but late.
    pub slo_miss: u64,
    /// Requests lost to a failed batch (permanent launch failure, kill
    /// without restore, retries exhausted).
    pub failed: u64,
    /// Batches submitted to the runtime.
    pub batches: u64,
    /// Batches of this tenant migrated to another device after a device
    /// loss (informational; migrated batches still settle as completed or
    /// failed, so this is *not* part of the request ledger).
    pub migrated: u64,
}

struct Tenant {
    spec: TenantSpec,
    admission: AdmissionControl,
    queue: EdfQueue<Request>,
    rng: SimRng,
    next_seq: u64,
    /// Runtime job index of the in-flight batch, if any.
    inflight: Option<usize>,
    stats: TenantStats,
    /// Completed-request latencies, ns.
    latencies: Vec<u64>,
}

struct BatchMeta {
    tenant: usize,
    requests: Vec<Request>,
}

/// The serving world: tenant frontends plus the embedded GPU cluster.
pub struct ServeWorld {
    cluster: GpuCluster,
    tenants: Vec<Tenant>,
    /// Batch metadata indexed by cluster job index (stable across
    /// migrations).
    batches: Vec<Option<BatchMeta>>,
    horizon: SimTime,
    seed: u64,
    /// Fleet size (denominator of the brownout capacity fraction).
    fleet: u32,
    /// Graceful-degradation policy, if any.
    brownout: Option<BrownoutConfig>,
    /// Scratch buffers (kept allocated across events).
    done_scratch: Vec<(SimTime, usize)>,
    expired_scratch: Vec<Request>,
}

impl ServeWorld {
    /// Builds the world and the initial event set for `cfg`.
    ///
    /// Returns the world plus the initial `(time, event)` pairs the
    /// driver must schedule (first arrival per tenant, then the cluster's
    /// own initial events: per-device watchdog ticks and fault draws).
    #[must_use]
    pub fn new(cfg: &ServeConfig) -> (ServeWorld, Vec<(SimTime, ServeEvent)>) {
        let ccfg = ClusterConfig {
            devices: cfg.devices,
            gpu: GpuConfig::k40(),
            policy: cfg.policy,
            watchdog: Some(cfg.watchdog),
            grid_faults: cfg.faults,
            device_faults: cfg.device_faults,
            scripted_faults: cfg.scripted_device_faults.clone(),
            max_migrations: cfg.max_migrations,
            topology: cfg.topology,
            correlated_faults: cfg.correlated_faults,
            scripted_correlated: cfg.scripted_correlated.clone(),
            health: cfg.health,
            placement: cfg.placement,
        };
        let (cluster, cluster_initial) = GpuCluster::new(&ccfg);

        let mut initial = Vec::new();
        let tenants: Vec<Tenant> = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut rng = SimRng::stream(cfg.seed, i as u64);
                let first = spec.arrivals.next_after(SimTime::ZERO, &mut rng);
                if first < cfg.horizon {
                    initial.push((first, ServeEvent::Arrival { tenant: i }));
                }
                Tenant {
                    admission: AdmissionControl {
                        queue_cap: spec.queue_cap,
                    },
                    queue: EdfQueue::new(),
                    rng,
                    next_seq: 0,
                    inflight: None,
                    stats: TenantStats::default(),
                    latencies: Vec::new(),
                    spec: spec.clone(),
                }
            })
            .collect();
        // The cluster's own initial events (per-device watchdog ticks and
        // first fault draws) come after the arrivals — for one device this
        // is exactly the old single-tick order, so traces replay
        // byte-identically.
        for (at, ev) in cluster_initial {
            initial.push((at, ServeEvent::Sys(ev)));
        }

        let world = ServeWorld {
            cluster,
            tenants,
            batches: Vec::new(),
            horizon: cfg.horizon,
            seed: cfg.seed,
            fleet: cfg.devices.max(1),
            brownout: cfg.brownout.clone().filter(|b| !b.is_empty()),
            done_scratch: Vec::new(),
            expired_scratch: Vec::new(),
        };
        (world, initial)
    }

    fn on_arrival(
        &mut self,
        now: SimTime,
        idx: usize,
        sched: &mut flep_sim_core::Scheduler<'_, ServeEvent>,
    ) {
        // Brownout gate: under degraded capacity, the lowest-priority /
        // loosest-SLO classes are shed before admission control even
        // looks at them. The capacity fraction reads the cluster's live
        // placement eligibility, so breaker quarantines count as lost
        // capacity exactly like zone outages.
        let shed = self.brownout.as_ref().is_some_and(|b| {
            let capacity = f64::from(self.cluster.placement_eligible()) / f64::from(self.fleet);
            let spec = &self.tenants[idx].spec;
            b.sheds(capacity, spec.priority, spec.effective_slo())
        });
        let t = &mut self.tenants[idx];
        t.stats.offered += 1;
        if shed {
            t.stats.shed += 1;
            let next = t.spec.arrivals.next_after(now, &mut t.rng);
            if next < self.horizon {
                sched.schedule_at(next, ServeEvent::Arrival { tenant: idx });
            }
            return;
        }
        let deadline = now + t.spec.effective_slo();
        match t.admission.decide(now, deadline, t.queue.len()) {
            Ok(()) => {
                let seq = t.next_seq;
                t.next_seq += 1;
                t.queue.push(
                    deadline,
                    Request {
                        arrival: now,
                        deadline,
                        seq,
                    },
                );
                t.stats.admitted += 1;
            }
            Err(DropReason::PastDeadline) => t.stats.dropped_past_deadline += 1,
            Err(DropReason::QueueFull) => t.stats.dropped_queue_full += 1,
        }
        // Open-loop: the next arrival comes regardless of the admission
        // outcome. Arrivals stop at the horizon.
        let next = t.spec.arrivals.next_after(now, &mut t.rng);
        if next < self.horizon {
            sched.schedule_at(next, ServeEvent::Arrival { tenant: idx });
        }
    }

    /// Settles finished cluster jobs back into request-level accounting.
    fn reap(&mut self, now: SimTime) {
        let mut done = std::mem::take(&mut self.done_scratch);
        // Migrations first (they precede any completion of the same batch
        // and don't settle requests — the batch is still in flight on its
        // new device); counted per tenant for visibility.
        done.clear();
        self.cluster.drain_migrations_into(&mut done);
        for &(_, job) in &done {
            if let Some(meta) = self.batches.get(job).and_then(Option::as_ref) {
                self.tenants[meta.tenant].stats.migrated += 1;
            }
        }
        done.clear();
        self.cluster.drain_completions_into(&mut done);
        for &(at, job) in &done {
            self.settle_batch(at, job, true);
        }
        done.clear();
        self.cluster.drain_failures_into(&mut done);
        for &(at, job) in &done {
            self.settle_batch(at, job, false);
        }
        self.done_scratch = done;
        let _ = now;
    }

    fn settle_batch(&mut self, at: SimTime, job: usize, completed: bool) {
        let Some(meta) = self.batches.get_mut(job).and_then(Option::take) else {
            return;
        };
        let t = &mut self.tenants[meta.tenant];
        if t.inflight == Some(job) {
            t.inflight = None;
        }
        for req in &meta.requests {
            if completed {
                t.stats.completed += 1;
                t.latencies.push(at.saturating_sub(req.arrival).as_ns());
                if at <= req.deadline {
                    t.stats.goodput += 1;
                } else {
                    t.stats.slo_miss += 1;
                }
            } else {
                t.stats.failed += 1;
            }
        }
    }

    /// Forms and submits batches until no tenant is eligible. Returns
    /// whether anything was submitted (a submission can fail synchronously
    /// inside the runtime, so the caller reaps and retries to fixpoint).
    fn try_dispatch(&mut self, now: SimTime) -> bool {
        let mut submitted = false;
        loop {
            // Shed requests that already missed while queued, so head
            // deadlines (the EDF keys below) are live.
            let mut expired = std::mem::take(&mut self.expired_scratch);
            for t in &mut self.tenants {
                expired.clear();
                t.stats.expired += t.queue.expire_into(now, &mut expired) as u64;
            }
            expired.clear();
            self.expired_scratch = expired;

            // Global EDF across tenants: the eligible tenant (≤1 batch in
            // flight each) with the earliest head deadline goes first;
            // ties break on tenant index.
            let pick = self
                .tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| t.inflight.is_none())
                .filter_map(|(i, t)| t.queue.peek_deadline().map(|d| (d, i)))
                .min();
            let Some((_, idx)) = pick else { break };
            self.submit_batch(now, idx);
            submitted = true;
        }
        submitted
    }

    fn submit_batch(&mut self, now: SimTime, idx: usize) {
        let t = &mut self.tenants[idx];
        let model = InferenceModel::get(t.spec.model);
        let mut requests = Vec::new();
        while (requests.len() as u64) < t.spec.max_batch {
            let Some((_, req)) = t.queue.pop() else { break };
            requests.push(req);
        }
        debug_assert!(!requests.is_empty(), "dispatch picked an empty queue");
        let batch_no = t.stats.batches;
        t.stats.batches += 1;
        // A fresh noise seed per batch, derived from the root seed so the
        // trace replays bit-identically.
        let noise_seed = SimRng::stream(self.seed, ((idx as u64) << 40) | batch_no).u64();
        let profile = KernelProfile {
            name: format!("{}#{batch_no}", t.spec.name),
            resources: model.resources,
            total_tasks: requests.len() as u64,
            task_cost: TaskCost {
                base: model.unit_cost,
                rel_noise: model.rel_noise,
            },
            mem_intensity: model.mem_intensity,
            amortize: model.amortize,
        };
        let spec = JobSpec::new(profile, now)
            .with_priority(t.spec.priority)
            .with_seed(noise_seed)
            .with_tenant(idx as u32);
        let job = self.cluster.submit(now, spec);
        self.tenants[idx].inflight = Some(job);
        if self.batches.len() <= job {
            self.batches.resize_with(job + 1, || None);
        }
        self.batches[job] = Some(BatchMeta {
            tenant: idx,
            requests,
        });
    }

    /// Read access to the embedded cluster (for tests).
    #[must_use]
    pub fn cluster(&self) -> &GpuCluster {
        &self.cluster
    }

    fn into_report(self, end_time: SimTime, outcome: ServeOutcome, events: u64) -> ServeReport {
        // A budget abort strands in-flight batches; their requests are
        // neither completed nor failed, so count them explicitly to keep
        // the ledger exact.
        let mut inflight_by_tenant = vec![0u64; self.tenants.len()];
        for meta in self.batches.iter().flatten() {
            inflight_by_tenant[meta.tenant] += meta.requests.len() as u64;
        }
        let mut leftover = 0u64;
        let mut all_latencies: Vec<u64> = self
            .tenants
            .iter()
            .flat_map(|t| t.latencies.iter().copied())
            .collect();
        let latency = Percentiles::of_ns(&mut all_latencies);
        let tenants: Vec<TenantReport> = self
            .tenants
            .into_iter()
            .zip(inflight_by_tenant)
            .map(|(mut t, inflight_at_end)| {
                leftover += t.queue.len() as u64 + inflight_at_end;
                TenantReport {
                    name: t.spec.name,
                    model: t.spec.model,
                    priority: t.spec.priority,
                    stats: t.stats,
                    latency: Percentiles::of_ns(&mut t.latencies),
                    queued_at_end: t.queue.len() as u64,
                    inflight_at_end,
                }
            })
            .collect();
        let devices = self.cluster.devices();
        let shed_total: u64 = tenants.iter().map(|t| t.stats.shed).sum();
        let result = self.cluster.into_result(end_time);
        let mut summary = result.summary;
        summary.shed = shed_total;
        // Migrations are counted separately so the four-slot recovery
        // histogram (a pinned golden shape) stays stable.
        let mut recoveries = [0u64; 4];
        for r in &result.recoveries {
            match r.action {
                RecoveryAction::ForcedDrain => recoveries[0] += 1,
                RecoveryAction::Killed => recoveries[1] += 1,
                RecoveryAction::LostNotification => recoveries[2] += 1,
                RecoveryAction::LaunchRetry(_) => recoveries[3] += 1,
                RecoveryAction::Migrated { .. } => {}
            }
        }
        ServeReport {
            end_time,
            outcome,
            events,
            latency,
            tenants,
            escalations: result.escalations,
            recoveries,
            runtime_errors: result.errors.len() as u64,
            faults_fired: result.faults_fired,
            leftover,
            devices,
            migrations: result.migrations,
            device_events: result.device_events.len() as u64,
            summary,
        }
    }
}

impl World for ServeWorld {
    type Event = ServeEvent;

    fn handle(
        &mut self,
        now: SimTime,
        event: ServeEvent,
        sched: &mut flep_sim_core::Scheduler<'_, ServeEvent>,
    ) {
        match event {
            ServeEvent::Arrival { tenant } => self.on_arrival(now, tenant, sched),
            ServeEvent::Sys(e) => self.cluster.dispatch(now, e),
        }
        // Settle completions/failures, then dispatch; a synchronously
        // failing submission produces a new failure entry, so iterate to
        // fixpoint (terminates: every round consumes queued requests).
        loop {
            self.reap(now);
            if !self.try_dispatch(now) {
                break;
            }
        }
        self.cluster
            .for_each_pending(|at, e| sched.schedule_at(at, ServeEvent::Sys(e)));
    }
}

/// How the serving run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Event queue drained: every admitted request was settled.
    Drained,
    /// The event budget ran out first.
    BudgetExhausted,
}

impl ServeOutcome {
    /// Short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ServeOutcome::Drained => "drained",
            ServeOutcome::BudgetExhausted => "budget-exhausted",
        }
    }
}

/// Per-tenant serving results.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Served model.
    pub model: ModelId,
    /// Scheduling priority.
    pub priority: u32,
    /// The request ledger.
    pub stats: TenantStats,
    /// Completed-request latency percentiles (`None` if nothing
    /// completed).
    pub latency: Option<Percentiles>,
    /// Requests still queued when the run ended (0 unless the budget ran
    /// out).
    pub queued_at_end: u64,
    /// Requests stranded inside an in-flight batch when the run ended
    /// (0 unless the budget ran out).
    pub inflight_at_end: u64,
}

impl TenantReport {
    /// True when the request ledger balances: every offered request is
    /// accounted for exactly once, and completions split exactly into
    /// goodput and SLO misses.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        let s = &self.stats;
        s.offered == s.admitted + s.dropped_past_deadline + s.dropped_queue_full + s.shed
            && s.admitted
                == s.completed + s.expired + s.failed + self.queued_at_end + self.inflight_at_end
            && s.completed == s.goodput + s.slo_miss
    }
}

impl ToJson for TenantReport {
    fn to_json(&self) -> JsonValue {
        let s = &self.stats;
        let (p50, p99, p999) = tail_triple_ns(self.latency);
        let mut fields = vec![
            ("tenant", JsonValue::Str(self.name.clone())),
            ("model", self.model.to_json()),
            ("priority", JsonValue::UInt(u64::from(self.priority))),
            ("offered", JsonValue::UInt(s.offered)),
            ("admitted", JsonValue::UInt(s.admitted)),
            (
                "dropped_past_deadline",
                JsonValue::UInt(s.dropped_past_deadline),
            ),
            ("dropped_queue_full", JsonValue::UInt(s.dropped_queue_full)),
            ("expired", JsonValue::UInt(s.expired)),
            ("completed", JsonValue::UInt(s.completed)),
            ("goodput", JsonValue::UInt(s.goodput)),
            ("slo_miss", JsonValue::UInt(s.slo_miss)),
            ("failed", JsonValue::UInt(s.failed)),
            ("batches", JsonValue::UInt(s.batches)),
            ("p50_ns", JsonValue::UInt(p50)),
            ("p99_ns", JsonValue::UInt(p99)),
            ("p999_ns", JsonValue::UInt(p999)),
        ];
        // Brownout telemetry appears only when something was actually
        // shed, so pre-brownout golden traces stay byte-identical.
        if s.shed > 0 {
            fields.push(("shed", JsonValue::UInt(s.shed)));
        }
        JsonValue::object(fields)
    }
}

/// Whole-run serving results.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// When the last event fired.
    pub end_time: SimTime,
    /// How the run ended.
    pub outcome: ServeOutcome,
    /// Events dispatched by the discrete-event engine (the budget
    /// currency).
    pub events: u64,
    /// Latency percentiles over every completed request, all tenants
    /// pooled (`None` if nothing completed).
    pub latency: Option<Percentiles>,
    /// Per-tenant ledgers, in config order.
    pub tenants: Vec<TenantReport>,
    /// Preemption-drain outcomes by escalation level `[flag, forced
    /// drain, kill]` (from the runtime).
    pub escalations: [u64; 3],
    /// Watchdog recoveries by kind `[forced-drain, killed,
    /// lost-notification, launch-retry]`.
    pub recoveries: [u64; 4],
    /// Structured runtime errors observed.
    pub runtime_errors: u64,
    /// Faults the device's injection plan fired.
    pub faults_fired: u64,
    /// Requests stranded (queued or in flight) at the end; 0 on a
    /// drained run.
    pub leftover: u64,
    /// Devices behind the frontend.
    pub devices: u32,
    /// Batches migrated to a surviving device after a device loss.
    pub migrations: u64,
    /// Device lifecycle events recorded (faults, restores, drains).
    pub device_events: u64,
    /// Structured recovery tally (watchdog actions, migrations, breaker
    /// quarantines/probes/readmissions, brownout sheds) — the shared
    /// [`RecoverySummary`] counters, empty on a clean run.
    pub summary: RecoverySummary,
}

impl ServeReport {
    /// Sums a counter over tenants.
    fn total(&self, f: impl Fn(&TenantStats) -> u64) -> u64 {
        self.tenants.iter().map(|t| f(&t.stats)).sum()
    }

    /// Total goodput (requests completed within deadline).
    #[must_use]
    pub fn goodput(&self) -> u64 {
        self.total(|s| s.goodput)
    }

    /// Total offered requests.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.total(|s| s.offered)
    }

    /// True when every tenant's ledger balances.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.tenants.iter().all(TenantReport::reconciles)
    }
}

impl ToJson for ServeReport {
    fn to_json(&self) -> JsonValue {
        let (p50, p99, p999) = tail_triple_ns(self.latency);
        let mut fields = vec![
            ("end_time_ns", JsonValue::UInt(self.end_time.as_ns())),
            ("outcome", JsonValue::Str(self.outcome.name().to_string())),
            ("events", JsonValue::UInt(self.events)),
            ("offered", JsonValue::UInt(self.offered())),
            ("goodput", JsonValue::UInt(self.goodput())),
            ("p50_ns", JsonValue::UInt(p50)),
            ("p99_ns", JsonValue::UInt(p99)),
            ("p999_ns", JsonValue::UInt(p999)),
            (
                "escalations",
                JsonValue::array(self.escalations.iter().map(|&e| JsonValue::UInt(e))),
            ),
            (
                "recoveries",
                JsonValue::array(self.recoveries.iter().map(|&e| JsonValue::UInt(e))),
            ),
            ("runtime_errors", JsonValue::UInt(self.runtime_errors)),
            ("faults_fired", JsonValue::UInt(self.faults_fired)),
            ("leftover", JsonValue::UInt(self.leftover)),
            (
                "tenants",
                JsonValue::array(self.tenants.iter().map(ToJson::to_json)),
            ),
        ];
        // Cluster telemetry appears only when the run actually used the
        // cluster dimension (multiple devices or device faults), so
        // single-device golden traces stay byte-identical.
        if self.devices > 1 || self.migrations > 0 || self.device_events > 0 {
            fields.push(("devices", JsonValue::UInt(u64::from(self.devices))));
            fields.push(("migrations", JsonValue::UInt(self.migrations)));
            fields.push(("device_events", JsonValue::UInt(self.device_events)));
        }
        // The structured recovery summary renders only when something
        // actually happened (it serializes nonzero counters only), so
        // clean golden traces stay byte-identical.
        if !self.summary.is_empty() {
            fields.push(("recovery_summary", self.summary.to_json()));
        }
        JsonValue::object(fields)
    }
}

/// Routes a frontend event to its partition: shard-internal cluster
/// events to `device + 1`, everything frontend- or cluster-level
/// (arrivals, device faults/restores) to the control partition 0.
fn route_serve_event(ev: &ServeEvent) -> u32 {
    match ev {
        ServeEvent::Sys(ClusterEvent::Shard { device, .. }) => device + 1,
        _ => 0,
    }
}

/// Runs one serving experiment to completion (or budget exhaustion) and
/// returns the report.
///
/// The frontend drives a [`PartitionedSimulation`]: one event queue per
/// device plus a control partition, merged in the exact global
/// `(time, seq)` order a flat queue would produce — reports are
/// byte-identical to the flat driver at any device count, but per-event
/// queue cost no longer grows with the fleet size.
#[must_use]
pub fn run_serve(cfg: &ServeConfig) -> ServeReport {
    let (world, initial) = ServeWorld::new(cfg);
    let partitions = cfg.devices.max(1) as usize + 1;
    let mut sim = PartitionedSimulation::new(world, partitions, route_serve_event);
    for (at, ev) in initial {
        sim.schedule_at(at, ev);
    }
    let (end, outcome) = match sim.run_with_budget(cfg.event_budget) {
        RunOutcome::Completed(t) => (t, ServeOutcome::Drained),
        RunOutcome::BudgetExhausted { now, .. } => (now, ServeOutcome::BudgetExhausted),
    };
    let events = sim.dispatched();
    sim.into_world().into_report(end, outcome, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_cfg(seed: u64) -> ServeConfig {
        ServeConfig::new(
            seed,
            SimTime::from_ms(200),
            vec![
                TenantSpec::new(
                    "dlrm",
                    ModelId::Dlrm,
                    2,
                    ArrivalProcess::Poisson { rate_per_s: 2000.0 },
                ),
                TenantSpec::new(
                    "gpt2-gen",
                    ModelId::Gpt2,
                    0,
                    ArrivalProcess::Poisson { rate_per_s: 120.0 },
                ),
            ],
        )
    }

    #[test]
    fn smoke_run_drains_and_reconciles() {
        let r = run_serve(&two_tenant_cfg(42));
        assert_eq!(r.outcome, ServeOutcome::Drained);
        assert_eq!(r.leftover, 0);
        assert!(r.reconciles(), "ledger must balance: {r:?}");
        assert!(r.goodput() > 0);
        assert!(r.offered() >= 400, "200ms at >2000/s offered");
        for t in &r.tenants {
            assert!(t.stats.batches > 0, "{} never dispatched", t.name);
        }
    }

    #[test]
    fn same_seed_renders_identical_reports() {
        let a = run_serve(&two_tenant_cfg(7)).to_json().render();
        let b = run_serve(&two_tenant_cfg(7)).to_json().render();
        let c = run_serve(&two_tenant_cfg(8)).to_json().render();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tight_slo_tenant_preempts_long_batches() {
        // gpt2 batches run ~900us per task; dlrm arrivals every ~500us
        // with priority 2 must preempt them, so the runtime's drain
        // ladder fires and dlrm p99 stays well under its 5ms SLO.
        let r = run_serve(&two_tenant_cfg(42));
        let drains: u64 = r.escalations.iter().sum();
        assert!(drains > 0, "no preemption drains recorded: {r:?}");
        let dlrm = &r.tenants[0];
        let p99 = dlrm.latency.expect("dlrm completed requests").p99_ns;
        assert!(
            p99 < SimTime::from_ms(5).as_ns(),
            "dlrm p99 {p99}ns blew its SLO"
        );
    }

    #[test]
    fn faulty_device_still_reconciles() {
        let mut cfg = two_tenant_cfg(42);
        cfg.faults = Some(
            flep_gpu_sim::FaultConfig::quiet(99)
                .with_launch_reject(0.05)
                .with_signal_drop(0.05),
        );
        let r = run_serve(&cfg);
        assert_eq!(r.outcome, ServeOutcome::Drained);
        assert!(r.reconciles(), "faulty ledger must still balance: {r:?}");
        assert!(r.faults_fired > 0, "fault plan never fired");
    }

    #[test]
    fn budget_abort_reports_leftover() {
        let mut cfg = two_tenant_cfg(42);
        cfg.event_budget = 50;
        let r = run_serve(&cfg);
        assert_eq!(r.outcome, ServeOutcome::BudgetExhausted);
        assert!(r.reconciles(), "aborted ledger must still balance: {r:?}");
    }
}
