//! Open-loop arrival generators.
//!
//! Serving load is open-loop: requests arrive on the wall clock whether or
//! not the system keeps up, which is what makes overload and SLO misses
//! observable at all (a closed loop would just slow the clients down).

use flep_sim_core::{SimRng, SimTime};

/// An open-loop arrival process. All rates are in requests per second of
/// simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate: exponential
    /// inter-arrival gaps.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_s: f64,
    },
    /// A diurnal/bursty square wave: the first `duty` fraction of every
    /// `period` runs at `peak_rate_per_s`, the rest at `base_rate_per_s`.
    /// Within each phase arrivals are Poisson at the phase rate, so the
    /// trace alternates quiet valleys with bursts that overrun a queue
    /// provisioned for the mean.
    Bursty {
        /// Off-peak arrival rate, requests per second.
        base_rate_per_s: f64,
        /// On-peak arrival rate, requests per second.
        peak_rate_per_s: f64,
        /// Length of one base+peak cycle.
        period: SimTime,
        /// Fraction of the period spent at peak, in `(0, 1)`.
        duty: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean rate, requests per second.
    #[must_use]
    pub fn mean_rate_per_s(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
            ArrivalProcess::Bursty {
                base_rate_per_s,
                peak_rate_per_s,
                duty,
                ..
            } => duty * peak_rate_per_s + (1.0 - duty) * base_rate_per_s,
        }
    }

    /// The same process with every rate multiplied by `factor` — the knob
    /// the offered-load sweep turns.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> ArrivalProcess {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => ArrivalProcess::Poisson {
                rate_per_s: rate_per_s * factor,
            },
            ArrivalProcess::Bursty {
                base_rate_per_s,
                peak_rate_per_s,
                period,
                duty,
            } => ArrivalProcess::Bursty {
                base_rate_per_s: base_rate_per_s * factor,
                peak_rate_per_s: peak_rate_per_s * factor,
                period,
                duty,
            },
        }
    }

    /// The absolute time of the next arrival strictly after `now`.
    ///
    /// Draws one exponential gap at the rate in effect at `now` (for the
    /// square wave this slightly smears bursts across phase edges, which
    /// real diurnal traces do too). The gap is floored at 1ns so the
    /// process always makes progress.
    #[must_use]
    pub fn next_after(&self, now: SimTime, rng: &mut SimRng) -> SimTime {
        let rate = self.rate_at(now);
        debug_assert!(rate > 0.0, "arrival process with a non-positive rate");
        // Inverse-CDF exponential draw; `f64()` is in [0, 1) so the log
        // argument stays positive.
        let gap_us = -(1.0 - rng.f64()).ln() / rate * 1e6;
        now + SimTime::from_us_f64(gap_us).max(SimTime::from_ns(1))
    }

    /// The instantaneous rate at `now`, requests per second.
    #[must_use]
    pub fn rate_at(&self, now: SimTime) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
            ArrivalProcess::Bursty {
                base_rate_per_s,
                peak_rate_per_s,
                period,
                duty,
            } => {
                let phase = now.as_ns() % period.as_ns().max(1);
                let peak_until = period.scale(duty).as_ns();
                if phase < peak_until {
                    peak_rate_per_s
                } else {
                    base_rate_per_s
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::Poisson { rate_per_s: 1000.0 };
        let mut rng = SimRng::seed_from(7);
        let mut now = SimTime::ZERO;
        let n = 20_000;
        for _ in 0..n {
            now = p.next_after(now, &mut rng);
        }
        // Mean gap should be ~1ms; allow 5% sampling slack.
        let mean_us = now.as_us() / n as f64;
        assert!((mean_us - 1000.0).abs() < 50.0, "mean gap {mean_us}us");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let p = ArrivalProcess::Bursty {
            base_rate_per_s: 100.0,
            peak_rate_per_s: 100_000.0,
            period: SimTime::from_ms(10),
            duty: 0.2,
        };
        let mut rng = SimRng::seed_from(3);
        let mut now = SimTime::ZERO;
        for _ in 0..10_000 {
            let next = p.next_after(now, &mut rng);
            assert!(next > now);
            now = next;
        }
    }

    #[test]
    fn bursty_phases_select_rates() {
        let p = ArrivalProcess::Bursty {
            base_rate_per_s: 10.0,
            peak_rate_per_s: 90.0,
            period: SimTime::from_ms(10),
            duty: 0.25,
        };
        assert_eq!(p.rate_at(SimTime::ZERO), 90.0);
        assert_eq!(p.rate_at(SimTime::from_us(2_499)), 90.0);
        assert_eq!(p.rate_at(SimTime::from_us(2_500)), 10.0);
        assert_eq!(p.rate_at(SimTime::from_ms(10)), 90.0); // next cycle
        assert!((p.mean_rate_per_s() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_scales_the_mean() {
        let p = ArrivalProcess::Poisson { rate_per_s: 40.0 };
        assert!((p.scaled(2.5).mean_rate_per_s() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_trace() {
        let p = ArrivalProcess::Poisson { rate_per_s: 500.0 };
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            let mut now = SimTime::ZERO;
            (0..64)
                .map(|_| {
                    now = p.next_after(now, &mut rng);
                    now
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
