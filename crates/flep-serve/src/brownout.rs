//! Graceful degradation under lost capacity: brownout tiers.
//!
//! When failure domains take devices out of the placement rotation —
//! zone outages, rack power cycles, quarantines by the runtime's circuit
//! breaker — the frontend's offered load no longer fits the surviving
//! fleet. Without a policy, the overload lands arbitrarily: every tenant's
//! queue deepens, every tenant's tail latency blows through its SLO, and
//! the highest-value work degrades exactly as much as the lowest.
//!
//! A [`BrownoutConfig`] makes the degradation *graceful* instead: it maps
//! the live capacity fraction (placement-eligible devices over fleet
//! size) to an admission floor, shedding the lowest-priority and
//! loosest-SLO requests at the door so the surviving capacity is spent on
//! the work that matters most. Shedding is exact bookkeeping, not silent
//! loss — every shed request lands in the tenant's `shed` counter and the
//! report ledger still reconciles to the request
//! (`offered = admitted + dropped + shed`).
//!
//! The decision is a pure function of `(capacity, priority, slo)` — no
//! state, no randomness — so brownout runs replay byte-identically and a
//! config with no tiers (or a run at full capacity) never sheds anything.

use flep_sim_core::SimTime;

/// One degradation tier: while live capacity is below `capacity_below`,
/// requests from tenants below the priority floor (or with SLOs looser
/// than the optional bound) are shed at the door.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutTier {
    /// The tier activates while `eligible_devices / fleet_size` is
    /// strictly below this fraction.
    pub capacity_below: f64,
    /// Tenants with `priority < min_priority` are shed.
    pub min_priority: u32,
    /// When set, tenants whose effective SLO is *looser* (larger) than
    /// this are shed too — batch-y best-effort work goes first even when
    /// priorities tie.
    pub slo_above: Option<SimTime>,
}

/// The brownout policy: a set of tiers, evaluated independently. A
/// request is shed when *any* active tier sheds it, so overlapping tiers
/// compose monotonically — less capacity can only shed more.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BrownoutConfig {
    /// The tiers. Empty means brownout never sheds.
    pub tiers: Vec<BrownoutTier>,
}

impl BrownoutConfig {
    /// A priority-only ladder from `(capacity_below, min_priority)`
    /// pairs — the common shape: lose a quarter of the fleet, shed
    /// best-effort; lose half, shed everything but the top class.
    #[must_use]
    pub fn by_priority(tiers: &[(f64, u32)]) -> BrownoutConfig {
        BrownoutConfig {
            tiers: tiers
                .iter()
                .map(|&(capacity_below, min_priority)| BrownoutTier {
                    capacity_below,
                    min_priority,
                    slo_above: None,
                })
                .collect(),
        }
    }

    /// Adds an SLO-based tier (builder style): below `capacity_below`,
    /// shed any tenant whose effective SLO is looser than `slo_above`.
    #[must_use]
    pub fn with_slo_tier(mut self, capacity_below: f64, slo_above: SimTime) -> BrownoutConfig {
        self.tiers.push(BrownoutTier {
            capacity_below,
            min_priority: 0,
            slo_above: Some(slo_above),
        });
        self
    }

    /// Whether a request of `priority` with effective SLO `slo` is shed
    /// at live capacity fraction `capacity` (eligible devices / fleet).
    #[must_use]
    pub fn sheds(&self, capacity: f64, priority: u32, slo: SimTime) -> bool {
        self.tiers
            .iter()
            .filter(|t| capacity < t.capacity_below)
            .any(|t| priority < t.min_priority || t.slo_above.is_some_and(|bound| slo > bound))
    }

    /// True when no tier can ever activate.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_capacity_sheds_nothing() {
        let b = BrownoutConfig::by_priority(&[(0.75, 1), (0.5, 2)]);
        for prio in 0..4 {
            assert!(!b.sheds(1.0, prio, SimTime::from_ms(5)));
        }
    }

    #[test]
    fn priority_ladder_sheds_lowest_first() {
        let b = BrownoutConfig::by_priority(&[(0.75, 1), (0.5, 2)]);
        // Mild brownout: only the best-effort class sheds.
        assert!(b.sheds(0.6, 0, SimTime::from_ms(5)));
        assert!(!b.sheds(0.6, 1, SimTime::from_ms(5)));
        // Deep brownout: everything below the top class sheds.
        assert!(b.sheds(0.4, 0, SimTime::from_ms(5)));
        assert!(b.sheds(0.4, 1, SimTime::from_ms(5)));
        assert!(!b.sheds(0.4, 2, SimTime::from_ms(5)));
    }

    #[test]
    fn slo_tier_sheds_loose_slos_regardless_of_priority() {
        let b = BrownoutConfig::default().with_slo_tier(0.75, SimTime::from_ms(50));
        assert!(b.sheds(0.5, 9, SimTime::from_ms(200)));
        assert!(!b.sheds(0.5, 0, SimTime::from_ms(5)));
        assert!(!b.sheds(0.8, 9, SimTime::from_ms(200)), "tier inactive");
    }

    #[test]
    fn shedding_is_monotone_in_capacity() {
        let b = BrownoutConfig::by_priority(&[(0.9, 1), (0.6, 2), (0.3, 3)])
            .with_slo_tier(0.5, SimTime::from_ms(20));
        let caps = [1.0, 0.95, 0.8, 0.55, 0.45, 0.25, 0.0];
        for prio in 0..4 {
            for slo_ms in [1u64, 100] {
                let slo = SimTime::from_ms(slo_ms);
                let mut prev = false;
                for &c in &caps {
                    let now = b.sheds(c, prio, slo);
                    assert!(now || !prev, "shedding regressed at capacity {c}");
                    prev = now;
                }
            }
        }
    }

    #[test]
    fn empty_config_never_sheds() {
        let b = BrownoutConfig::default();
        assert!(b.is_empty());
        assert!(!b.sheds(0.0, 0, SimTime::from_ms(1_000)));
    }
}
