//! The offered-load sweep: the serving analogue of the paper's co-run
//! sweeps, producing goodput and tail-latency curves versus load.
//!
//! Each load point runs as one independent cell under
//! [`flep_core::runner::run_cells`], with its own seed derived by
//! [`flep_core::runner::cell_seed`]. Cells are merged in index order, so
//! the sweep's output is byte-identical whatever `FLEP_THREADS` says —
//! the same discipline every other experiment in the tree follows.

use crate::arrivals::ArrivalProcess;
use crate::frontend::{run_serve, ServeConfig, ServeReport, TenantSpec};
use flep_core::runner;
use flep_sim_core::json::{JsonValue, ToJson};
use flep_sim_core::SimTime;
use flep_workloads::ModelId;

/// One point of the load sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// The multiplier applied to every tenant's arrival rate.
    pub load: f64,
    /// The full serving report at this load.
    pub report: ServeReport,
}

impl LoadPoint {
    /// Goodput rate in requests per second of simulated horizon.
    #[must_use]
    pub fn goodput_per_s(&self, horizon: SimTime) -> f64 {
        let secs = horizon.as_us() / 1e6;
        if secs <= 0.0 {
            0.0
        } else {
            self.report.goodput() as f64 / secs
        }
    }
}

impl ToJson for LoadPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("load", JsonValue::Float(self.load)),
            ("report", self.report.to_json()),
        ])
    }
}

/// The reference four-tenant serving mix: one tenant per model, rates
/// chosen so `load = 1.0` puts the device near 70% utilization (the
/// sweep's upper loads then push it well past saturation), and priorities
/// tightest-SLO-highest so HPF preemption protects the interactive
/// tenants under overload.
#[must_use]
pub fn reference_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new(
            "dlrm",
            ModelId::Dlrm,
            3,
            ArrivalProcess::Poisson {
                rate_per_s: 40_000.0,
            },
        ),
        TenantSpec::new(
            "resnet50",
            ModelId::Resnet,
            2,
            ArrivalProcess::Poisson {
                rate_per_s: 12_000.0,
            },
        ),
        TenantSpec::new(
            "bert-qa",
            ModelId::Bert,
            1,
            ArrivalProcess::Bursty {
                base_rate_per_s: 1_500.0,
                peak_rate_per_s: 7_500.0,
                period: SimTime::from_ms(200),
                duty: 0.25,
            },
        ),
        TenantSpec::new(
            "gpt2-gen",
            ModelId::Gpt2,
            0,
            ArrivalProcess::Poisson { rate_per_s: 600.0 },
        ),
    ]
}

/// Runs `base` at each offered-load multiplier, one parallel cell per
/// load point. The base config's seed is re-derived per cell, so results
/// do not depend on the thread count.
#[must_use]
pub fn sweep_offered_load(base: &ServeConfig, loads: &[f64]) -> Vec<LoadPoint> {
    let reports = runner::run_cells(loads.len(), |cell| {
        let load = loads[cell];
        let mut cfg = base.clone();
        cfg.seed = runner::cell_seed(base.seed, cell, 0);
        for t in &mut cfg.tenants {
            t.arrivals = t.arrivals.scaled(load);
        }
        run_serve(&cfg)
    });
    loads
        .iter()
        .zip(reports)
        .map(|(&load, report)| LoadPoint { load, report })
        .collect()
}
