//! The mini-CU abstract syntax tree and its pretty-printer (which doubles
//! as the code generator for transformed programs).

use std::fmt;

/// A scalar or pointer type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void`
    Void,
    /// `int`
    Int,
    /// `unsigned int`
    Uint,
    /// `float`
    Float,
    /// `bool`
    Bool,
    /// Pointer to another type.
    Ptr(Box<Type>),
}

impl Type {
    /// A pointer to this type.
    #[must_use]
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Int => f.write_str("int"),
            Type::Uint => f.write_str("unsigned int"),
            Type::Float => f.write_str("float"),
            Type::Bool => f.write_str("bool"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
        }
    }
}

/// CUDA built-in values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `threadIdx.x`
    ThreadIdxX,
    /// `threadIdx.y`
    ThreadIdxY,
    /// `blockIdx.x`
    BlockIdxX,
    /// `blockIdx.y`
    BlockIdxY,
    /// `blockDim.x`
    BlockDimX,
    /// `blockDim.y`
    BlockDimY,
    /// `gridDim.x`
    GridDimX,
    /// The `%smid` special register, surfaced as the `__smid()` intrinsic
    /// in generated code (the paper reads it via inline PTX).
    SmId,
}

impl Builtin {
    /// The source form of the builtin.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Builtin::ThreadIdxX => "threadIdx.x",
            Builtin::ThreadIdxY => "threadIdx.y",
            Builtin::BlockIdxX => "blockIdx.x",
            Builtin::BlockIdxY => "blockIdx.y",
            Builtin::BlockDimX => "blockDim.x",
            Builtin::BlockDimY => "blockDim.y",
            Builtin::GridDimX => "gridDim.x",
            Builtin::SmId => "__smid()",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `*x`
    Deref,
    /// `&x`
    AddrOf,
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Operator precedence (higher binds tighter).
    #[must_use]
    pub fn precedence(&self) -> u8 {
        match self {
            BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
            BinOp::Add | BinOp::Sub => 9,
            BinOp::Shl | BinOp::Shr => 8,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 7,
            BinOp::Eq | BinOp::Ne => 6,
            BinOp::BitAnd => 5,
            BinOp::BitXor => 4,
            BinOp::BitOr => 3,
            BinOp::And => 2,
            BinOp::Or => 1,
        }
    }

    /// The source form of the operator.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

impl AssignOp {
    /// The source form of the operator.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Ident(String),
    /// CUDA builtin.
    Builtin(Builtin),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Array indexing.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `cond ? a : b`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
}

impl Expr {
    /// Convenience: a variable reference.
    #[must_use]
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Convenience: a binary expression.
    #[must_use]
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience: a call.
    #[must_use]
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.into(),
            args,
        }
    }

    /// Convenience: a dereference.
    #[must_use]
    pub fn deref(e: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Deref,
            expr: Box::new(e),
        }
    }

    /// Recursively replaces every occurrence of a builtin with `to`.
    /// Returns the number of replacements — the compiler passes use this to
    /// verify the transform touched what it expected.
    pub fn replace_builtin(&mut self, from: Builtin, to: &Expr) -> usize {
        match self {
            Expr::Builtin(b) if *b == from => {
                *self = to.clone();
                1
            }
            Expr::Unary { expr, .. } => expr.replace_builtin(from, to),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.replace_builtin(from, to) + rhs.replace_builtin(from, to)
            }
            Expr::Call { args, .. } => args.iter_mut().map(|a| a.replace_builtin(from, to)).sum(),
            Expr::Index { base, index } => {
                base.replace_builtin(from, to) + index.replace_builtin(from, to)
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                cond.replace_builtin(from, to)
                    + then_expr.replace_builtin(from, to)
                    + else_expr.replace_builtin(from, to)
            }
            _ => 0,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A local declaration, possibly `__shared__` and possibly an array.
    Decl {
        /// Variable name.
        name: String,
        /// Element type.
        ty: Type,
        /// Whether the declaration is `__shared__`.
        shared: bool,
        /// Whether the declaration is `volatile`.
        volatile: bool,
        /// Array length for array declarations.
        array_len: Option<u64>,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// An expression statement.
    Expr(Expr),
    /// Assignment.
    Assign {
        /// The assigned-to place expression.
        target: Expr,
        /// The assignment operator.
        op: AssignOp,
        /// The value.
        value: Expr,
    },
    /// `if` / `else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `for` loop.
    For {
        /// Init statement (declaration or assignment).
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Block,
    },
    /// `return`, optionally with a value.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A nested block.
    Block(Block),
    /// A kernel launch: `name<<<grid, block>>>(args);` — host code only.
    Launch {
        /// The kernel name.
        kernel: String,
        /// Grid-dimension expression.
        grid: Expr,
        /// Block-dimension expression.
        block: Expr,
        /// Kernel arguments.
        args: Vec<Expr>,
    },
}

/// A sequence of statements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// The statements.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    #[must_use]
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }

    /// Recursively replaces a builtin throughout the block, returning the
    /// replacement count.
    pub fn replace_builtin(&mut self, from: Builtin, to: &Expr) -> usize {
        self.stmts
            .iter_mut()
            .map(|s| replace_in_stmt(s, from, to))
            .sum()
    }

    /// True when any statement (recursively) is a `return`.
    #[must_use]
    pub fn contains_return(&self) -> bool {
        self.stmts.iter().any(stmt_contains_return)
    }
}

fn replace_in_stmt(stmt: &mut Stmt, from: Builtin, to: &Expr) -> usize {
    match stmt {
        Stmt::Decl { init, .. } => init.as_mut().map_or(0, |e| e.replace_builtin(from, to)),
        Stmt::Expr(e) => e.replace_builtin(from, to),
        Stmt::Assign { target, value, .. } => {
            target.replace_builtin(from, to) + value.replace_builtin(from, to)
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            cond.replace_builtin(from, to)
                + then_block.replace_builtin(from, to)
                + else_block
                    .as_mut()
                    .map_or(0, |b| b.replace_builtin(from, to))
        }
        Stmt::While { cond, body } => {
            cond.replace_builtin(from, to) + body.replace_builtin(from, to)
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            init.as_mut().map_or(0, |s| replace_in_stmt(s, from, to))
                + cond.as_mut().map_or(0, |e| e.replace_builtin(from, to))
                + step.as_mut().map_or(0, |s| replace_in_stmt(s, from, to))
                + body.replace_builtin(from, to)
        }
        Stmt::Return(e) => e.as_mut().map_or(0, |e| e.replace_builtin(from, to)),
        Stmt::Break | Stmt::Continue => 0,
        Stmt::Block(b) => b.replace_builtin(from, to),
        Stmt::Launch {
            grid, block, args, ..
        } => {
            grid.replace_builtin(from, to)
                + block.replace_builtin(from, to)
                + args
                    .iter_mut()
                    .map(|a| a.replace_builtin(from, to))
                    .sum::<usize>()
        }
    }
}

fn stmt_contains_return(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Return(_) => true,
        Stmt::If {
            then_block,
            else_block,
            ..
        } => {
            then_block.contains_return() || else_block.as_ref().is_some_and(Block::contains_return)
        }
        Stmt::While { body, .. } | Stmt::For { body, .. } => body.contains_return(),
        Stmt::Block(b) => b.contains_return(),
        _ => false,
    }
}

/// Function flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnKind {
    /// `__global__` — a GPU kernel.
    Global,
    /// `__device__` — a GPU-side helper.
    Device,
    /// Plain host function.
    Host,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Whether declared `volatile` (the pinned flag pointers are).
    pub volatile: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Kind (`__global__`, `__device__`, host).
    pub kind: FnKind,
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Top-level functions in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Finds a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Iterates over the `__global__` kernels.
    pub fn kernels(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| f.kind == FnKind::Global)
    }
}

// ---------------------------------------------------------------------------
// Pretty printing (code generation).
// ---------------------------------------------------------------------------

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn expr(e: &Expr) -> String {
        Self::expr_prec(e, 0)
    }

    fn expr_prec(e: &Expr, parent_prec: u8) -> String {
        match e {
            Expr::Int(v) => v.to_string(),
            Expr::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    format!("{v:.1}f")
                } else {
                    format!("{v}f")
                }
            }
            Expr::Bool(b) => b.to_string(),
            Expr::Ident(name) => name.clone(),
            Expr::Builtin(b) => b.as_str().to_string(),
            Expr::Unary { op, expr } => {
                let inner = Self::expr_prec(expr, 11);
                let s = match op {
                    UnOp::Neg => format!("-{inner}"),
                    UnOp::Not => format!("!{inner}"),
                    UnOp::Deref => format!("*{inner}"),
                    UnOp::AddrOf => format!("&{inner}"),
                    UnOp::PreInc => format!("++{inner}"),
                    UnOp::PreDec => format!("--{inner}"),
                };
                if parent_prec > 10 {
                    format!("({s})")
                } else {
                    s
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let p = op.precedence();
                let s = format!(
                    "{} {} {}",
                    Self::expr_prec(lhs, p),
                    op.as_str(),
                    Self::expr_prec(rhs, p + 1)
                );
                if p < parent_prec {
                    format!("({s})")
                } else {
                    s
                }
            }
            Expr::Call { name, args } => {
                let args: Vec<String> = args.iter().map(Self::expr).collect();
                format!("{name}({})", args.join(", "))
            }
            Expr::Index { base, index } => {
                format!("{}[{}]", Self::expr_prec(base, 11), Self::expr(index))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let s = format!(
                    "{} ? {} : {}",
                    Self::expr_prec(cond, 1),
                    Self::expr(then_expr),
                    Self::expr(else_expr)
                );
                if parent_prec > 0 {
                    format!("({s})")
                } else {
                    s
                }
            }
        }
    }

    fn stmt_inline(s: &Stmt) -> String {
        match s {
            Stmt::Decl {
                name,
                ty,
                shared,
                volatile,
                array_len,
                init,
            } => {
                let mut text = String::new();
                if *shared {
                    text.push_str("__shared__ ");
                }
                if *volatile {
                    text.push_str("volatile ");
                }
                text.push_str(&format!("{ty} {name}"));
                if let Some(len) = array_len {
                    text.push_str(&format!("[{len}]"));
                }
                if let Some(e) = init {
                    text.push_str(&format!(" = {}", Self::expr(e)));
                }
                text
            }
            Stmt::Expr(e) => Self::expr(e),
            Stmt::Assign { target, op, value } => format!(
                "{} {} {}",
                Self::expr(target),
                op.as_str(),
                Self::expr(value)
            ),
            Stmt::Return(Some(e)) => format!("return {}", Self::expr(e)),
            Stmt::Return(None) => "return".to_string(),
            Stmt::Break => "break".to_string(),
            Stmt::Continue => "continue".to_string(),
            _ => unreachable!("not an inline statement"),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { .. }
            | Stmt::Expr(_)
            | Stmt::Assign { .. }
            | Stmt::Return(_)
            | Stmt::Break
            | Stmt::Continue => {
                let text = Self::stmt_inline(s);
                self.line(&format!("{text};"));
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.line(&format!("if ({}) {{", Self::expr(cond)));
                self.block_body(then_block);
                match else_block {
                    Some(e) => {
                        self.line("} else {");
                        self.block_body(e);
                        self.line("}");
                    }
                    None => self.line("}"),
                }
            }
            Stmt::While { cond, body } => {
                self.line(&format!("while ({}) {{", Self::expr(cond)));
                self.block_body(body);
                self.line("}");
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let init_s = init
                    .as_ref()
                    .map_or(String::new(), |s| Self::stmt_inline(s));
                let cond_s = cond.as_ref().map_or(String::new(), Self::expr);
                let step_s = step
                    .as_ref()
                    .map_or(String::new(), |s| Self::stmt_inline(s));
                self.line(&format!("for ({init_s}; {cond_s}; {step_s}) {{"));
                self.block_body(body);
                self.line("}");
            }
            Stmt::Block(b) => {
                self.line("{");
                self.block_body(b);
                self.line("}");
            }
            Stmt::Launch {
                kernel,
                grid,
                block,
                args,
            } => {
                let args: Vec<String> = args.iter().map(Self::expr).collect();
                self.line(&format!(
                    "{kernel}<<<{}, {}>>>({});",
                    Self::expr(grid),
                    Self::expr(block),
                    args.join(", ")
                ));
            }
        }
    }

    fn block_body(&mut self, b: &Block) {
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
    }

    fn function(&mut self, f: &Function) {
        let qual = match f.kind {
            FnKind::Global => "__global__ ",
            FnKind::Device => "__device__ ",
            FnKind::Host => "",
        };
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| {
                let v = if p.volatile { "volatile " } else { "" };
                format!("{v}{} {}", p.ty, p.name)
            })
            .collect();
        self.line(&format!(
            "{qual}{} {}({}) {{",
            f.ret,
            f.name,
            params.join(", ")
        ));
        self.block_body(&f.body);
        self.line("}");
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut p = Printer {
            out: String::new(),
            indent: 0,
        };
        p.function(self);
        f.write_str(&p.out)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for func in &self.functions {
            if !first {
                f.write_str("\n")?;
            }
            first = false;
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_expression_precedence() {
        // (a + b) * c must keep its parens.
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::ident("a"), Expr::ident("b")),
            Expr::ident("c"),
        );
        assert_eq!(Printer::expr(&e), "(a + b) * c");
        // a + b * c must not gain parens.
        let e2 = Expr::bin(
            BinOp::Add,
            Expr::ident("a"),
            Expr::bin(BinOp::Mul, Expr::ident("b"), Expr::ident("c")),
        );
        assert_eq!(Printer::expr(&e2), "a + b * c");
    }

    #[test]
    fn print_left_associative_subtraction() {
        // (a - b) - c prints without parens; a - (b - c) needs them.
        let left = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::ident("a"), Expr::ident("b")),
            Expr::ident("c"),
        );
        assert_eq!(Printer::expr(&left), "a - b - c");
        let right = Expr::bin(
            BinOp::Sub,
            Expr::ident("a"),
            Expr::bin(BinOp::Sub, Expr::ident("b"), Expr::ident("c")),
        );
        assert_eq!(Printer::expr(&right), "a - (b - c)");
    }

    #[test]
    fn replace_builtin_counts() {
        let mut block = Block::new(vec![Stmt::Assign {
            target: Expr::ident("i"),
            op: AssignOp::Assign,
            value: Expr::bin(
                BinOp::Add,
                Expr::bin(
                    BinOp::Mul,
                    Expr::Builtin(Builtin::BlockIdxX),
                    Expr::Builtin(Builtin::BlockDimX),
                ),
                Expr::Builtin(Builtin::ThreadIdxX),
            ),
        }]);
        let n = block.replace_builtin(Builtin::BlockIdxX, &Expr::ident("flep_task"));
        assert_eq!(n, 1);
        let printed = format!(
            "{}",
            Function {
                kind: FnKind::Device,
                ret: Type::Void,
                name: "t".into(),
                params: vec![],
                body: block,
            }
        );
        assert!(printed.contains("flep_task * blockDim.x + threadIdx.x"));
    }

    #[test]
    fn contains_return_recurses() {
        let b = Block::new(vec![Stmt::If {
            cond: Expr::Bool(true),
            then_block: Block::new(vec![Stmt::Return(None)]),
            else_block: None,
        }]);
        assert!(b.contains_return());
        let b2 = Block::new(vec![Stmt::Break]);
        assert!(!b2.contains_return());
    }

    #[test]
    fn function_printing_round_shape() {
        let f = Function {
            kind: FnKind::Global,
            ret: Type::Void,
            name: "k".into(),
            params: vec![
                Param {
                    name: "out".into(),
                    ty: Type::Float.ptr(),
                    volatile: false,
                },
                Param {
                    name: "flag".into(),
                    ty: Type::Uint.ptr(),
                    volatile: true,
                },
            ],
            body: Block::new(vec![Stmt::Return(None)]),
        };
        let s = f.to_string();
        assert!(s.contains("__global__ void k(float* out, volatile unsigned int* flag) {"));
        assert!(s.contains("    return;"));
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Uint.to_string(), "unsigned int");
        assert_eq!(Type::Float.ptr().to_string(), "float*");
        assert_eq!(Type::Int.ptr().ptr().to_string(), "int**");
    }
}
