//! Tokens and the lexer for mini-CU.

use std::error::Error;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier or non-keyword word.
    Ident(String),
    /// An integer literal (decimal or hex), value and `u` suffix flag.
    IntLit(i64),
    /// A floating-point literal.
    FloatLit(f64),

    // Keywords.
    /// `void`
    KwVoid,
    /// `int`
    KwInt,
    /// `unsigned`
    KwUnsigned,
    /// `float`
    KwFloat,
    /// `bool`
    KwBool,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `__global__`
    KwGlobal,
    /// `__device__`
    KwDevice,
    /// `__shared__`
    KwShared,
    /// `volatile`
    KwVolatile,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `<<<`
    LaunchOpen,
    /// `>>>`
    LaunchClose,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `.`
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::IntLit(v) => write!(f, "{v}"),
            Token::FloatLit(v) => write!(f, "{v}"),
            other => {
                let s = match other {
                    Token::KwVoid => "void",
                    Token::KwInt => "int",
                    Token::KwUnsigned => "unsigned",
                    Token::KwFloat => "float",
                    Token::KwBool => "bool",
                    Token::KwIf => "if",
                    Token::KwElse => "else",
                    Token::KwWhile => "while",
                    Token::KwFor => "for",
                    Token::KwReturn => "return",
                    Token::KwBreak => "break",
                    Token::KwContinue => "continue",
                    Token::KwTrue => "true",
                    Token::KwFalse => "false",
                    Token::KwGlobal => "__global__",
                    Token::KwDevice => "__device__",
                    Token::KwShared => "__shared__",
                    Token::KwVolatile => "volatile",
                    Token::LParen => "(",
                    Token::RParen => ")",
                    Token::LBrace => "{",
                    Token::RBrace => "}",
                    Token::LBracket => "[",
                    Token::RBracket => "]",
                    Token::Semi => ";",
                    Token::Comma => ",",
                    Token::LaunchOpen => "<<<",
                    Token::LaunchClose => ">>>",
                    Token::Plus => "+",
                    Token::Minus => "-",
                    Token::Star => "*",
                    Token::Slash => "/",
                    Token::Percent => "%",
                    Token::Assign => "=",
                    Token::PlusAssign => "+=",
                    Token::MinusAssign => "-=",
                    Token::StarAssign => "*=",
                    Token::SlashAssign => "/=",
                    Token::Eq => "==",
                    Token::Ne => "!=",
                    Token::Lt => "<",
                    Token::Gt => ">",
                    Token::Le => "<=",
                    Token::Ge => ">=",
                    Token::AndAnd => "&&",
                    Token::OrOr => "||",
                    Token::Not => "!",
                    Token::Amp => "&",
                    Token::Pipe => "|",
                    Token::Caret => "^",
                    Token::Shl => "<<",
                    Token::Shr => ">>",
                    Token::PlusPlus => "++",
                    Token::MinusMinus => "--",
                    Token::Question => "?",
                    Token::Colon => ":",
                    Token::Dot => ".",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token paired with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl Error for LexError {}

/// Tokenizes mini-CU source.
///
/// # Errors
///
/// Returns a [`LexError`] on unrecognized characters or malformed numeric
/// literals.
///
/// # Example
///
/// ```
/// use flep_minicu::lex;
/// let toks = lex("__global__ void k() { }").unwrap();
/// assert_eq!(toks.len(), 7);
/// ```
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;

    let err = |msg: String, line: u32| LexError { message: msg, line };

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == '/' {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(err("unterminated block comment".into(), line));
                }
                i += 2;
                continue;
            }
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let word: String = bytes[start..i].iter().collect();
            let tok = match word.as_str() {
                "void" => Token::KwVoid,
                "int" => Token::KwInt,
                "unsigned" => Token::KwUnsigned,
                "float" => Token::KwFloat,
                "bool" => Token::KwBool,
                "if" => Token::KwIf,
                "else" => Token::KwElse,
                "while" => Token::KwWhile,
                "for" => Token::KwFor,
                "return" => Token::KwReturn,
                "break" => Token::KwBreak,
                "continue" => Token::KwContinue,
                "true" => Token::KwTrue,
                "false" => Token::KwFalse,
                "__global__" => Token::KwGlobal,
                "__device__" => Token::KwDevice,
                "__shared__" => Token::KwShared,
                "volatile" => Token::KwVolatile,
                _ => Token::Ident(word),
            };
            out.push(SpannedToken { token: tok, line });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
                i += 2;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    i += 1;
                }
                let text: String = bytes[start + 2..i].iter().collect();
                let v = i64::from_str_radix(&text, 16)
                    .map_err(|e| err(format!("bad hex literal: {e}"), line))?;
                // Optional u/U suffix.
                if i < bytes.len() && (bytes[i] == 'u' || bytes[i] == 'U') {
                    i += 1;
                }
                out.push(SpannedToken {
                    token: Token::IntLit(v),
                    line,
                });
                continue;
            }
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len()
                && bytes[i] == '.'
                && i + 1 < bytes.len()
                && bytes[i + 1].is_ascii_digit()
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                is_float = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let mut text: String = bytes[start..i].iter().collect();
            if i < bytes.len() && (bytes[i] == 'f' || bytes[i] == 'F') {
                is_float = true;
                i += 1;
            } else if i < bytes.len() && (bytes[i] == 'u' || bytes[i] == 'U') {
                i += 1;
            }
            if is_float {
                if text.ends_with('f') || text.ends_with('F') {
                    text.pop();
                }
                let v: f64 = text
                    .parse()
                    .map_err(|e| err(format!("bad float literal `{text}`: {e}"), line))?;
                out.push(SpannedToken {
                    token: Token::FloatLit(v),
                    line,
                });
            } else {
                let v: i64 = text
                    .parse()
                    .map_err(|e| err(format!("bad int literal `{text}`: {e}"), line))?;
                out.push(SpannedToken {
                    token: Token::IntLit(v),
                    line,
                });
            }
            continue;
        }
        // Operators / punctuation (longest match first).
        let three: String = bytes[i..bytes.len().min(i + 3)].iter().collect();
        if three == "<<<" {
            out.push(SpannedToken {
                token: Token::LaunchOpen,
                line,
            });
            i += 3;
            continue;
        }
        if three == ">>>" {
            out.push(SpannedToken {
                token: Token::LaunchClose,
                line,
            });
            i += 3;
            continue;
        }
        let two: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
        let two_tok = match two.as_str() {
            "+=" => Some(Token::PlusAssign),
            "-=" => Some(Token::MinusAssign),
            "*=" => Some(Token::StarAssign),
            "/=" => Some(Token::SlashAssign),
            "==" => Some(Token::Eq),
            "!=" => Some(Token::Ne),
            "<=" => Some(Token::Le),
            ">=" => Some(Token::Ge),
            "&&" => Some(Token::AndAnd),
            "||" => Some(Token::OrOr),
            "<<" => Some(Token::Shl),
            ">>" => Some(Token::Shr),
            "++" => Some(Token::PlusPlus),
            "--" => Some(Token::MinusMinus),
            _ => None,
        };
        if let Some(tok) = two_tok {
            out.push(SpannedToken { token: tok, line });
            i += 2;
            continue;
        }
        let one_tok = match c {
            '(' => Token::LParen,
            ')' => Token::RParen,
            '{' => Token::LBrace,
            '}' => Token::RBrace,
            '[' => Token::LBracket,
            ']' => Token::RBracket,
            ';' => Token::Semi,
            ',' => Token::Comma,
            '+' => Token::Plus,
            '-' => Token::Minus,
            '*' => Token::Star,
            '/' => Token::Slash,
            '%' => Token::Percent,
            '=' => Token::Assign,
            '<' => Token::Lt,
            '>' => Token::Gt,
            '!' => Token::Not,
            '&' => Token::Amp,
            '|' => Token::Pipe,
            '^' => Token::Caret,
            '?' => Token::Question,
            ':' => Token::Colon,
            '.' => Token::Dot,
            other => return Err(err(format!("unexpected character `{other}`"), line)),
        };
        out.push(SpannedToken {
            token: one_tok,
            line,
        });
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("__global__ void foo"),
            vec![Token::KwGlobal, Token::KwVoid, Token::Ident("foo".into())]
        );
    }

    #[test]
    fn lexes_launch_brackets_vs_shifts() {
        assert_eq!(kinds("<<<"), vec![Token::LaunchOpen]);
        assert_eq!(kinds(">>>"), vec![Token::LaunchClose]);
        assert_eq!(
            kinds("a << b"),
            vec![
                Token::Ident("a".into()),
                Token::Shl,
                Token::Ident("b".into())
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42"), vec![Token::IntLit(42)]);
        assert_eq!(kinds("42u"), vec![Token::IntLit(42)]);
        assert_eq!(kinds("0x1F"), vec![Token::IntLit(31)]);
        assert_eq!(kinds("3.5"), vec![Token::FloatLit(3.5)]);
        assert_eq!(kinds("1.0f"), vec![Token::FloatLit(1.0)]);
        assert_eq!(kinds("2e3"), vec![Token::FloatLit(2000.0)]);
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("a // comment\n b /* multi\nline */ c");
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into())
            ]
        );
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn rejects_unknown_chars() {
        let e = lex("a @ b").unwrap_err();
        assert!(e.message.contains('@'));
    }

    #[test]
    fn compound_assignment_ops() {
        assert_eq!(
            kinds("+= -= *= /="),
            vec![
                Token::PlusAssign,
                Token::MinusAssign,
                Token::StarAssign,
                Token::SlashAssign
            ]
        );
    }

    #[test]
    fn dot_member_access() {
        assert_eq!(
            kinds("threadIdx.x"),
            vec![
                Token::Ident("threadIdx".into()),
                Token::Dot,
                Token::Ident("x".into())
            ]
        );
    }
}
