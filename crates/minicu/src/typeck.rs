//! Type checking for mini-CU.
//!
//! A pragmatic C-style checker: numeric types (`int`, `unsigned int`,
//! `float`) coerce freely among themselves (as the CUDA sources this
//! models do implicitly), `bool` participates in conditions together with
//! the numeric types, and pointers are strict — only dereference, index,
//! and pointer-typed argument passing are allowed, with exact pointee
//! match.
//!
//! Device code (kernels and `__device__` functions) may only call
//! functions defined in the translation unit or the device built-ins
//! ([`DEVICE_BUILTINS`]). Host code additionally knows the FLEP runtime
//! ABI the compilation engine's generated code targets (`flep_request`,
//! `flep_flag_ptr`, ...), and may call other unknown external functions,
//! whose arguments are checked individually and whose return type is
//! treated as an unconstrained scalar.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ast::{
    AssignOp, BinOp, Block, Builtin, Expr, FnKind, Function, Program, Stmt, Type, UnOp,
};

/// Device-side built-in function names recognized by the type checker
/// (their signatures are enforced inline; `atomicAdd` additionally accepts
/// any scalar pointer as its first argument).
pub const DEVICE_BUILTINS: [&str; 6] =
    ["__syncthreads", "atomicAdd", "sqrtf", "fabsf", "min", "max"];

/// A type-checking error.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// Use of a variable with no visible declaration.
    UndefinedVariable {
        /// The function being checked.
        function: String,
        /// The variable name.
        name: String,
    },
    /// A declaration shadows another in the same scope.
    DuplicateDeclaration {
        /// The function being checked.
        function: String,
        /// The re-declared name.
        name: String,
    },
    /// Device code calls a function that is neither defined nor a device
    /// built-in.
    UnknownDeviceFunction {
        /// The calling function.
        function: String,
        /// The callee.
        callee: String,
    },
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        /// The callee.
        callee: String,
        /// Arguments supplied.
        given: usize,
        /// Parameters expected.
        expected: usize,
    },
    /// Two types that cannot be combined or converted.
    Mismatch {
        /// The function being checked.
        function: String,
        /// What was being typed (diagnostic label).
        context: String,
        /// The expected type (or type family).
        expected: String,
        /// The found type.
        found: Type,
    },
    /// Assignment target is not an lvalue.
    NotAnLvalue {
        /// The function being checked.
        function: String,
    },
    /// `return <value>` in a void function or plain `return` in a non-void
    /// one.
    BadReturn {
        /// The function being checked.
        function: String,
        /// The declared return type.
        declared: Type,
        /// Whether a value was supplied.
        has_value: bool,
    },
    /// `break`/`continue` outside a loop.
    OutsideLoop {
        /// The function being checked.
        function: String,
        /// `"break"` or `"continue"`.
        what: &'static str,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UndefinedVariable { function, name } => {
                write!(f, "in `{function}`: use of undefined variable `{name}`")
            }
            TypeError::DuplicateDeclaration { function, name } => {
                write!(f, "in `{function}`: duplicate declaration of `{name}`")
            }
            TypeError::UnknownDeviceFunction { function, callee } => write!(
                f,
                "in `{function}`: device code calls unknown function `{callee}`"
            ),
            TypeError::ArityMismatch {
                callee,
                given,
                expected,
            } => write!(
                f,
                "call to `{callee}` passes {given} arguments, expected {expected}"
            ),
            TypeError::Mismatch {
                function,
                context,
                expected,
                found,
            } => write!(
                f,
                "in `{function}`: {context}: expected {expected}, found `{found}`"
            ),
            TypeError::NotAnLvalue { function } => {
                write!(f, "in `{function}`: assignment target is not an lvalue")
            }
            TypeError::BadReturn {
                function,
                declared,
                has_value,
            } => {
                if *has_value {
                    write!(
                        f,
                        "in `{function}`: returning a value from a `{declared}` function"
                    )
                } else {
                    write!(
                        f,
                        "in `{function}`: `return;` in a function returning `{declared}`"
                    )
                }
            }
            TypeError::OutsideLoop { function, what } => {
                write!(f, "in `{function}`: `{what}` outside a loop")
            }
        }
    }
}

impl Error for TypeError {}

/// Type-checks a whole translation unit.
///
/// # Errors
///
/// Returns the first [`TypeError`] found.
///
/// # Example
///
/// ```
/// let good = flep_minicu::parse(
///     "__global__ void k(float* a, int n) { if (blockIdx.x < n) { a[blockIdx.x] = 1.0f; } }",
/// )
/// .unwrap();
/// flep_minicu::type_check(&good).unwrap();
///
/// let bad = flep_minicu::parse("__global__ void k(float* a) { a[0] = missing; }").unwrap();
/// assert!(flep_minicu::type_check(&bad).is_err());
/// ```
pub fn type_check(program: &Program) -> Result<(), TypeError> {
    let signatures: HashMap<&str, &Function> = program
        .functions
        .iter()
        .map(|f| (f.name.as_str(), f))
        .collect();
    for f in &program.functions {
        let mut checker = Checker {
            program_fns: &signatures,
            function: f,
            scopes: vec![HashMap::new()],
            loop_depth: 0,
        };
        for p in &f.params {
            checker.declare(&p.name, p.ty.clone())?;
        }
        checker.check_block(&f.body, false)?;
    }
    Ok(())
}

struct Checker<'a> {
    program_fns: &'a HashMap<&'a str, &'a Function>,
    function: &'a Function,
    scopes: Vec<HashMap<String, Type>>,
    loop_depth: u32,
}

impl<'a> Checker<'a> {
    fn fname(&self) -> String {
        self.function.name.clone()
    }

    fn is_device_code(&self) -> bool {
        matches!(self.function.kind, FnKind::Global | FnKind::Device)
    }

    fn declare(&mut self, name: &str, ty: Type) -> Result<(), TypeError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return Err(TypeError::DuplicateDeclaration {
                function: self.fname(),
                name: name.to_string(),
            });
        }
        scope.insert(name.to_string(), ty);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn numeric(&self, ty: &Type, context: &str) -> Result<(), TypeError> {
        match ty {
            Type::Int | Type::Uint | Type::Float | Type::Bool => Ok(()),
            other => Err(TypeError::Mismatch {
                function: self.fname(),
                context: context.to_string(),
                expected: "a numeric type".to_string(),
                found: other.clone(),
            }),
        }
    }

    /// Whether `from` implicitly converts to `to` (C-style numeric
    /// coercion; exact match for pointers).
    fn coercible(from: &Type, to: &Type) -> bool {
        use Type::{Bool, Float, Int, Uint};
        match (from, to) {
            (a, b) if a == b => true,
            (Int | Uint | Float | Bool, Int | Uint | Float | Bool) => true,
            _ => false,
        }
    }

    fn expect_coercible(&self, from: &Type, to: &Type, context: &str) -> Result<(), TypeError> {
        if Self::coercible(from, to) {
            Ok(())
        } else {
            Err(TypeError::Mismatch {
                function: self.fname(),
                context: context.to_string(),
                expected: format!("`{to}`"),
                found: from.clone(),
            })
        }
    }

    fn is_lvalue(e: &Expr) -> bool {
        matches!(
            e,
            Expr::Ident(_)
                | Expr::Index { .. }
                | Expr::Unary {
                    op: UnOp::Deref,
                    ..
                }
        )
    }

    // -- Expressions ------------------------------------------------------

    fn type_of(&self, e: &Expr) -> Result<Type, TypeError> {
        match e {
            Expr::Int(_) => Ok(Type::Int),
            Expr::Float(_) => Ok(Type::Float),
            Expr::Bool(_) => Ok(Type::Bool),
            Expr::Builtin(b) => Ok(match b {
                Builtin::SmId => Type::Uint,
                _ => Type::Uint,
            }),
            Expr::Ident(name) => {
                self.lookup(name)
                    .cloned()
                    .ok_or_else(|| TypeError::UndefinedVariable {
                        function: self.fname(),
                        name: name.clone(),
                    })
            }
            Expr::Unary { op, expr } => {
                let inner = self.type_of(expr)?;
                match op {
                    UnOp::Neg | UnOp::PreInc | UnOp::PreDec => {
                        self.numeric(&inner, "unary arithmetic operand")?;
                        Ok(inner)
                    }
                    UnOp::Not => {
                        self.numeric(&inner, "logical-not operand")?;
                        Ok(Type::Bool)
                    }
                    UnOp::Deref => match inner {
                        Type::Ptr(pointee) => Ok(*pointee),
                        other => Err(TypeError::Mismatch {
                            function: self.fname(),
                            context: "dereference".to_string(),
                            expected: "a pointer".to_string(),
                            found: other,
                        }),
                    },
                    UnOp::AddrOf => Ok(inner.ptr()),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.type_of(lhs)?;
                let rt = self.type_of(rhs)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        // Pointer arithmetic: ptr +/- integer.
                        if let Type::Ptr(_) = lt {
                            if matches!(op, BinOp::Add | BinOp::Sub) {
                                self.numeric(&rt, "pointer-arithmetic offset")?;
                                return Ok(lt);
                            }
                        }
                        self.numeric(&lt, "arithmetic operand")?;
                        self.numeric(&rt, "arithmetic operand")?;
                        // Result: float wins; otherwise int-family.
                        Ok(if lt == Type::Float || rt == Type::Float {
                            Type::Float
                        } else if lt == Type::Uint || rt == Type::Uint {
                            Type::Uint
                        } else {
                            Type::Int
                        })
                    }
                    BinOp::Shl | BinOp::Shr | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor => {
                        for (t, side) in [(&lt, "left"), (&rt, "right")] {
                            if matches!(t, Type::Float | Type::Ptr(_)) {
                                return Err(TypeError::Mismatch {
                                    function: self.fname(),
                                    context: format!("{side} operand of bitwise `{}`", op.as_str()),
                                    expected: "an integer".to_string(),
                                    found: (*t).clone(),
                                });
                            }
                        }
                        Ok(if lt == Type::Uint || rt == Type::Uint {
                            Type::Uint
                        } else {
                            Type::Int
                        })
                    }
                    BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        // Comparable: both numeric, or identical pointers.
                        let ok = Self::coercible(&lt, &rt) || lt == rt;
                        if !ok {
                            return Err(TypeError::Mismatch {
                                function: self.fname(),
                                context: format!("comparison `{}`", op.as_str()),
                                expected: format!("`{lt}`"),
                                found: rt,
                            });
                        }
                        Ok(Type::Bool)
                    }
                    BinOp::And | BinOp::Or => {
                        self.numeric(&lt, "logical operand")?;
                        self.numeric(&rt, "logical operand")?;
                        Ok(Type::Bool)
                    }
                }
            }
            Expr::Index { base, index } => {
                let bt = self.type_of(base)?;
                let it = self.type_of(index)?;
                self.numeric(&it, "array index")?;
                match bt {
                    Type::Ptr(pointee) => Ok(*pointee),
                    other => Err(TypeError::Mismatch {
                        function: self.fname(),
                        context: "indexed expression".to_string(),
                        expected: "a pointer".to_string(),
                        found: other,
                    }),
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let ct = self.type_of(cond)?;
                self.numeric(&ct, "ternary condition")?;
                let tt = self.type_of(then_expr)?;
                let et = self.type_of(else_expr)?;
                self.expect_coercible(&et, &tt, "ternary branches")?;
                Ok(if tt == Type::Float || et == Type::Float {
                    Type::Float
                } else {
                    tt
                })
            }
            Expr::Call { name, args } => self.type_of_call(name, args),
        }
    }

    fn type_of_call(&self, name: &str, args: &[Expr]) -> Result<Type, TypeError> {
        // Device built-ins.
        match name {
            "__syncthreads" => {
                if !args.is_empty() {
                    return Err(TypeError::ArityMismatch {
                        callee: name.to_string(),
                        given: args.len(),
                        expected: 0,
                    });
                }
                return Ok(Type::Void);
            }
            "atomicAdd" => {
                if args.len() != 2 {
                    return Err(TypeError::ArityMismatch {
                        callee: name.to_string(),
                        given: args.len(),
                        expected: 2,
                    });
                }
                let pt = self.type_of(&args[0])?;
                let vt = self.type_of(&args[1])?;
                let pointee = match pt {
                    Type::Ptr(inner) if matches!(*inner, Type::Int | Type::Uint | Type::Float) => {
                        *inner
                    }
                    other => {
                        return Err(TypeError::Mismatch {
                            function: self.fname(),
                            context: "atomicAdd target".to_string(),
                            expected: "an int/uint/float pointer".to_string(),
                            found: other,
                        })
                    }
                };
                self.expect_coercible(&vt, &pointee, "atomicAdd operand")?;
                return Ok(pointee);
            }
            "sqrtf" | "fabsf" => {
                if args.len() != 1 {
                    return Err(TypeError::ArityMismatch {
                        callee: name.to_string(),
                        given: args.len(),
                        expected: 1,
                    });
                }
                let at = self.type_of(&args[0])?;
                self.numeric(&at, name)?;
                return Ok(Type::Float);
            }
            "min" | "max" => {
                if args.len() != 2 {
                    return Err(TypeError::ArityMismatch {
                        callee: name.to_string(),
                        given: args.len(),
                        expected: 2,
                    });
                }
                let a = self.type_of(&args[0])?;
                let b = self.type_of(&args[1])?;
                self.numeric(&a, name)?;
                self.numeric(&b, name)?;
                return Ok(if a == Type::Float || b == Type::Float {
                    Type::Float
                } else {
                    a
                });
            }
            _ => {}
        }

        if let Some(callee) = self.program_fns.get(name) {
            if callee.params.len() != args.len() {
                return Err(TypeError::ArityMismatch {
                    callee: name.to_string(),
                    given: args.len(),
                    expected: callee.params.len(),
                });
            }
            for (arg, param) in args.iter().zip(&callee.params) {
                let at = self.type_of(arg)?;
                self.expect_coercible(
                    &at,
                    &param.ty,
                    &format!("argument `{}` of `{name}`", param.name),
                )?;
            }
            return Ok(callee.ret.clone());
        }

        // The FLEP runtime ABI that the compilation engine's generated
        // host code targets (host-side only).
        if !self.is_device_code() {
            let runtime_sig: Option<(usize, Type)> = match name {
                "flep_request" => Some((3, Type::Void)),
                "flep_wait_grant" => Some((1, Type::Void)),
                "flep_wait_gpu" | "flep_amortize" | "flep_remaining" | "flep_grid_size" => {
                    Some((1, Type::Uint))
                }
                "flep_flag_ptr" | "flep_counter_ptr" => Some((1, Type::Uint.ptr())),
                _ => None,
            };
            if let Some((arity, ret)) = runtime_sig {
                if args.len() != arity {
                    return Err(TypeError::ArityMismatch {
                        callee: name.to_string(),
                        given: args.len(),
                        expected: arity,
                    });
                }
                for arg in args {
                    let at = self.type_of(arg)?;
                    self.numeric(&at, &format!("argument of `{name}`"))?;
                }
                return Ok(ret);
            }
        }

        if self.is_device_code() {
            return Err(TypeError::UnknownDeviceFunction {
                function: self.fname(),
                callee: name.to_string(),
            });
        }
        // Unknown host function (external/runtime API): check the
        // arguments type on their own, treat the result as `unsigned int`
        // (a scalar the caller can store or compare).
        for arg in args {
            self.type_of(arg)?;
        }
        Ok(Type::Uint)
    }

    // -- Statements -------------------------------------------------------

    fn check_block(&mut self, block: &Block, new_scope: bool) -> Result<(), TypeError> {
        if new_scope {
            self.scopes.push(HashMap::new());
        }
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        if new_scope {
            self.scopes.pop();
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), TypeError> {
        match stmt {
            Stmt::Decl {
                name,
                ty,
                array_len,
                init,
                ..
            } => {
                if let Some(init) = init {
                    let it = self.type_of(init)?;
                    self.expect_coercible(&it, ty, &format!("initializer of `{name}`"))?;
                }
                let declared = if array_len.is_some() {
                    // Arrays decay to pointers for later use.
                    ty.clone().ptr()
                } else {
                    ty.clone()
                };
                self.declare(name, declared)
            }
            Stmt::Expr(e) => {
                self.type_of(e)?;
                Ok(())
            }
            Stmt::Assign { target, op, value } => {
                if !Self::is_lvalue(target) {
                    return Err(TypeError::NotAnLvalue {
                        function: self.fname(),
                    });
                }
                let tt = self.type_of(target)?;
                let vt = self.type_of(value)?;
                if *op != AssignOp::Assign {
                    self.numeric(&tt, "compound-assignment target")?;
                }
                self.expect_coercible(&vt, &tt, "assignment")
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                let ct = self.type_of(cond)?;
                self.numeric(&ct, "if condition")?;
                self.check_block(then_block, true)?;
                if let Some(e) = else_block {
                    self.check_block(e, true)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let ct = self.type_of(cond)?;
                self.numeric(&ct, "while condition")?;
                self.loop_depth += 1;
                let r = self.check_block(body, true);
                self.loop_depth -= 1;
                r
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(s) = init {
                    self.check_stmt(s)?;
                }
                if let Some(c) = cond {
                    let ct = self.type_of(c)?;
                    self.numeric(&ct, "for condition")?;
                }
                if let Some(s) = step {
                    self.check_stmt(s)?;
                }
                self.loop_depth += 1;
                let r = self.check_block(body, true);
                self.loop_depth -= 1;
                self.scopes.pop();
                r
            }
            Stmt::Return(value) => match (value, &self.function.ret) {
                (None, Type::Void) => Ok(()),
                (Some(_), Type::Void) => Err(TypeError::BadReturn {
                    function: self.fname(),
                    declared: Type::Void,
                    has_value: true,
                }),
                (None, other) => Err(TypeError::BadReturn {
                    function: self.fname(),
                    declared: other.clone(),
                    has_value: false,
                }),
                (Some(v), declared) => {
                    let vt = self.type_of(v)?;
                    self.expect_coercible(&vt, declared, "return value")
                }
            },
            Stmt::Break => {
                if self.loop_depth == 0 {
                    return Err(TypeError::OutsideLoop {
                        function: self.fname(),
                        what: "break",
                    });
                }
                Ok(())
            }
            Stmt::Continue => {
                if self.loop_depth == 0 {
                    return Err(TypeError::OutsideLoop {
                        function: self.fname(),
                        what: "continue",
                    });
                }
                Ok(())
            }
            Stmt::Block(b) => self.check_block(b, true),
            Stmt::Launch {
                kernel,
                grid,
                block,
                args,
            } => {
                let gt = self.type_of(grid)?;
                self.numeric(&gt, "launch grid dimension")?;
                let bt = self.type_of(block)?;
                self.numeric(&bt, "launch block dimension")?;
                if let Some(callee) = self.program_fns.get(kernel.as_str()) {
                    if callee.params.len() != args.len() {
                        return Err(TypeError::ArityMismatch {
                            callee: kernel.clone(),
                            given: args.len(),
                            expected: callee.params.len(),
                        });
                    }
                    for (arg, param) in args.iter().zip(&callee.params) {
                        let at = self.type_of(arg)?;
                        self.expect_coercible(
                            &at,
                            &param.ty,
                            &format!("launch argument `{}` of `{kernel}`", param.name),
                        )?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn check(src: &str) -> Result<(), TypeError> {
        type_check(&parse(src).unwrap())
    }

    #[test]
    fn device_builtins_list_matches_checker() {
        // Every name in the public list is accepted by device code (with a
        // well-typed call), and a non-listed name is rejected.
        for name in crate::typeck::DEVICE_BUILTINS {
            let src = match name {
                "__syncthreads" => "__global__ void k() { __syncthreads(); }".to_string(),
                "atomicAdd" => {
                    "__global__ void k(unsigned int* c) { unsigned int t = atomicAdd(c, 1); t += 0; }"
                        .to_string()
                }
                "sqrtf" | "fabsf" => {
                    format!("__global__ void k(float x, float* o) {{ o[0] = {name}(x); }}")
                }
                "min" | "max" => {
                    format!("__global__ void k(int a, int b, int* o) {{ o[0] = {name}(a, b); }}")
                }
                other => panic!("unhandled builtin {other}"),
            };
            check(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn benchmark_style_kernel_checks() {
        check(
            r#"
            __global__ void k(float* a, float* b, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    a[i] = b[i] * 2.0f + 1.0f;
                }
            }
            void host_main(float* a, float* b, int n) {
                k<<<n / 256 + 1, 256>>>(a, b, n);
            }
        "#,
        )
        .unwrap();
    }

    #[test]
    fn undefined_variable_rejected() {
        let err = check("__global__ void k(float* a) { a[0] = ghost; }").unwrap_err();
        assert!(matches!(err, TypeError::UndefinedVariable { .. }));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let err = check("void f() { int a = 0; int a = 1; }").unwrap_err();
        assert!(matches!(err, TypeError::DuplicateDeclaration { .. }));
    }

    #[test]
    fn shadowing_in_inner_scope_allowed() {
        check("void f() { int a = 0; if (a < 1) { int a = 2; a += 1; } }").unwrap();
    }

    #[test]
    fn deref_of_non_pointer_rejected() {
        let err = check("void f(int x) { int y = *x; }").unwrap_err();
        assert!(matches!(err, TypeError::Mismatch { .. }));
    }

    #[test]
    fn index_of_non_pointer_rejected() {
        let err = check("void f(int x) { int y = x[0]; }").unwrap_err();
        assert!(matches!(err, TypeError::Mismatch { .. }));
    }

    #[test]
    fn pointer_passed_as_scalar_rejected() {
        let err =
            check("__device__ void g(int n) { } __global__ void k(int* p) { g(p); }").unwrap_err();
        assert!(matches!(err, TypeError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn unknown_device_call_rejected_but_host_allowed() {
        let err = check("__global__ void k(float* a) { a[0] = mystery(); }").unwrap_err();
        assert!(matches!(err, TypeError::UnknownDeviceFunction { .. }));
        // Host code may call external/runtime functions.
        check("void h() { unsigned int t = flep_wait_gpu(0); t += 1; }").unwrap();
    }

    #[test]
    fn return_value_from_void_kernel_rejected() {
        let err = check("__global__ void k(int n) { return n; }").unwrap_err();
        assert!(matches!(err, TypeError::BadReturn { .. }));
    }

    #[test]
    fn missing_return_value_rejected() {
        let err = check("int f() { return; }").unwrap_err();
        assert!(matches!(
            err,
            TypeError::BadReturn {
                has_value: false,
                ..
            }
        ));
    }

    #[test]
    fn break_outside_loop_rejected() {
        let err = check("void f() { break; }").unwrap_err();
        assert!(matches!(err, TypeError::OutsideLoop { what: "break", .. }));
        check("void f() { while (true) { break; } }").unwrap();
    }

    #[test]
    fn assignment_to_rvalue_rejected() {
        let err = check("void f(int a, int b) { a + b = 3; }").unwrap_err();
        assert!(matches!(err, TypeError::NotAnLvalue { .. }));
    }

    #[test]
    fn bitwise_on_floats_rejected() {
        let err = check("void f(float x) { int y = x << 2; }").unwrap_err();
        assert!(matches!(err, TypeError::Mismatch { .. }));
    }

    #[test]
    fn atomic_add_signature_enforced() {
        check("__global__ void k(unsigned int* c) { unsigned int t = atomicAdd(c, 1); t += 0; }")
            .unwrap();
        let err = check("__global__ void k(float f) { atomicAdd(f, 1); }").unwrap_err();
        assert!(matches!(err, TypeError::Mismatch { .. }));
        let err2 = check("__global__ void k(unsigned int* c) { atomicAdd(c); }").unwrap_err();
        assert!(matches!(err2, TypeError::ArityMismatch { .. }));
    }

    #[test]
    fn launch_argument_types_enforced() {
        let err = check(
            r#"
            __global__ void k(float* a) { a[0] = 0.0f; }
            void h(int n) { k<<<1, 256>>>(n); }
        "#,
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::Mismatch { .. }));
    }

    #[test]
    fn shared_arrays_decay_to_pointers() {
        check(
            r#"
            __global__ void k(float* a) {
                __shared__ float tile[256];
                tile[threadIdx.x] = a[threadIdx.x];
                a[threadIdx.x] = tile[threadIdx.x] + 1.0f;
            }
        "#,
        )
        .unwrap();
    }

    #[test]
    fn pointer_arithmetic_allowed() {
        check("void f(float* p, int n) { float* q = p + n; q[0] = 0.0f; }").unwrap();
    }

    #[test]
    fn for_loop_scoping() {
        check(
            "void f(int n) { for (int i = 0; i < n; ++i) { int x = i; x += 1; } for (int i = 0; i < n; ++i) { } }",
        )
        .unwrap();
    }
}
