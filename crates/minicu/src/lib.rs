//! A mini-CUDA ("mini-CU") language frontend: lexer, parser, AST,
//! semantic analysis, and resource estimation.
//!
//! The FLEP paper's compilation engine is a Clang-LibTooling source-to-
//! source transformer over CUDA. This crate provides the equivalent
//! substrate for the reproduction: a small but real language in which the
//! evaluation benchmarks' kernels are written, rich enough to express
//! every form in the paper's Fig. 4 (persistent-thread loops, pinned-flag
//! polls, `%smid` gating via the `__smid()` intrinsic, `__shared__`
//! broadcast staging, `atomicAdd` task pulling) plus host-side kernel
//! launches (`k<<<grid, block>>>(args)`).
//!
//! Pipeline stages: [`lex`] → [`parse`] → [`analyze`] (structural checks,
//! kernel/launch discovery) → [`type_check`] (C-style typing with strict
//! pointers) → [`estimate_resources`].
//!
//! The pretty-printer on [`Program`]/[`Function`] is the code generator:
//! `parse(printed_ast)` round-trips to the same AST, which the test-suite
//! asserts, so transformed programs are themselves valid mini-CU.
//!
//! # Pipeline
//!
//! ```
//! let src = r#"
//! __global__ void scale(float* a, float s, int n) {
//!     int i = blockIdx.x * blockDim.x + threadIdx.x;
//!     if (i < n) {
//!         a[i] = a[i] * s;
//!     }
//! }
//! void host_main(float* a, int n) {
//!     scale<<<n / 256 + 1, 256>>>(a, 2.0f, n);
//! }
//! "#;
//! let program = flep_minicu::parse(src).unwrap();
//! let info = flep_minicu::analyze(&program).unwrap();
//! assert_eq!(info.kernels[0].name, "scale");
//! let est = flep_minicu::estimate_resources(program.function("scale").unwrap());
//! assert!(est.regs_per_thread > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod parser;
mod resources;
mod sema;
mod token;
mod typeck;

pub use ast::{
    AssignOp, BinOp, Block, Builtin, Expr, FnKind, Function, Param, Program, Stmt, Type, UnOp,
};
pub use parser::{parse, ParseError};
pub use resources::{estimate_resources, ResourceEstimate};
pub use sema::{
    analyze, const_eval, visit_exprs, visit_stmts, KernelInfo, LaunchInfo, ProgramInfo, SemaError,
};
pub use token::{lex, LexError, SpannedToken, Token};
pub use typeck::{type_check, TypeError, DEVICE_BUILTINS};
