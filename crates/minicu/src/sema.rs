//! Semantic analysis: kernel/launch discovery and well-formedness checks.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::ast::{Block, Builtin, Expr, FnKind, Program, Stmt, Type};

/// A semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemaError {
    /// Two functions share a name.
    DuplicateFunction(String),
    /// A `__global__` kernel returns a non-void type.
    KernelReturnsValue(String),
    /// A launch refers to a function that does not exist.
    UnknownKernel {
        /// The launching host function.
        host: String,
        /// The missing kernel name.
        kernel: String,
    },
    /// A launch targets a non-`__global__` function.
    LaunchTargetNotKernel {
        /// The launching host function.
        host: String,
        /// The non-kernel target.
        kernel: String,
    },
    /// A launch passes the wrong number of arguments.
    LaunchArityMismatch {
        /// The kernel.
        kernel: String,
        /// Arguments at the launch site.
        given: usize,
        /// Parameters the kernel declares.
        expected: usize,
    },
    /// Device-only syntax (builtins, `__shared__`) used in host code.
    DeviceSyntaxInHost {
        /// The offending host function.
        host: String,
        /// What was used.
        what: String,
    },
    /// A kernel launch appears inside device code.
    LaunchInDeviceCode(String),
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemaError::DuplicateFunction(name) => {
                write!(f, "duplicate function definition `{name}`")
            }
            SemaError::KernelReturnsValue(name) => {
                write!(f, "kernel `{name}` must return void")
            }
            SemaError::UnknownKernel { host, kernel } => {
                write!(f, "`{host}` launches unknown kernel `{kernel}`")
            }
            SemaError::LaunchTargetNotKernel { host, kernel } => {
                write!(f, "`{host}` launches `{kernel}` which is not __global__")
            }
            SemaError::LaunchArityMismatch {
                kernel,
                given,
                expected,
            } => write!(
                f,
                "launch of `{kernel}` passes {given} arguments, kernel declares {expected}"
            ),
            SemaError::DeviceSyntaxInHost { host, what } => {
                write!(f, "host function `{host}` uses device-only {what}")
            }
            SemaError::LaunchInDeviceCode(name) => {
                write!(f, "device function `{name}` contains a kernel launch")
            }
        }
    }
}

impl Error for SemaError {}

/// Summary of one kernel, as used by the compilation engine and workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInfo {
    /// Kernel name.
    pub name: String,
    /// Number of parameters.
    pub num_params: usize,
    /// Whether the kernel reads `%smid` (needed for spatial preemption).
    pub uses_smid: bool,
    /// Whether the body contains a loop (affects transform strategy notes;
    /// the paper highlights VA's loop-free 6-line kernel).
    pub has_loop: bool,
    /// Statement count, a proxy for the paper's lines-of-code column.
    pub body_statements: usize,
}

/// Summary of one launch site.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchInfo {
    /// The host function containing the launch.
    pub host: String,
    /// The launched kernel.
    pub kernel: String,
    /// Number of arguments passed.
    pub num_args: usize,
    /// Whether the grid dimension is a compile-time constant.
    pub const_grid: Option<i64>,
    /// Whether the block dimension is a compile-time constant.
    pub const_block: Option<i64>,
}

/// The result of semantic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramInfo {
    /// Kernels defined in the program.
    pub kernels: Vec<KernelInfo>,
    /// Launch sites found in host functions.
    pub launches: Vec<LaunchInfo>,
}

impl ProgramInfo {
    /// Looks up a kernel summary by name.
    #[must_use]
    pub fn kernel(&self, name: &str) -> Option<&KernelInfo> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// Analyzes a program, returning summaries or the first semantic error.
///
/// # Errors
///
/// Returns a [`SemaError`] for duplicate functions, non-void kernels,
/// launches of unknown/non-kernel functions, arity mismatches, device
/// syntax in host code, or launches inside device code.
///
/// # Example
///
/// ```
/// let src = r#"
/// __global__ void k(float* a, int n) { a[0] = 1.0f; }
/// void host_main(float* a, int n) { k<<<n / 256, 256>>>(a, n); }
/// "#;
/// let program = flep_minicu::parse(src).unwrap();
/// let info = flep_minicu::analyze(&program).unwrap();
/// assert_eq!(info.kernels.len(), 1);
/// assert_eq!(info.launches[0].const_block, Some(256));
/// ```
pub fn analyze(program: &Program) -> Result<ProgramInfo, SemaError> {
    let mut names = HashSet::new();
    for f in &program.functions {
        if !names.insert(f.name.clone()) {
            return Err(SemaError::DuplicateFunction(f.name.clone()));
        }
    }

    let mut kernels = Vec::new();
    let mut launches = Vec::new();

    for f in &program.functions {
        match f.kind {
            FnKind::Global => {
                if f.ret != Type::Void {
                    return Err(SemaError::KernelReturnsValue(f.name.clone()));
                }
                if block_has_launch(&f.body) {
                    return Err(SemaError::LaunchInDeviceCode(f.name.clone()));
                }
                kernels.push(KernelInfo {
                    name: f.name.clone(),
                    num_params: f.params.len(),
                    uses_smid: block_uses_builtin(&f.body, Builtin::SmId),
                    has_loop: block_has_loop(&f.body),
                    body_statements: count_statements(&f.body),
                });
            }
            FnKind::Device => {
                if block_has_launch(&f.body) {
                    return Err(SemaError::LaunchInDeviceCode(f.name.clone()));
                }
            }
            FnKind::Host => {
                if let Some(what) = host_device_syntax(&f.body) {
                    return Err(SemaError::DeviceSyntaxInHost {
                        host: f.name.clone(),
                        what,
                    });
                }
                collect_launches(&f.body, &f.name, &mut launches);
            }
        }
    }

    for launch in &launches {
        let Some(target) = program.function(&launch.kernel) else {
            return Err(SemaError::UnknownKernel {
                host: launch.host.clone(),
                kernel: launch.kernel.clone(),
            });
        };
        if target.kind != FnKind::Global {
            return Err(SemaError::LaunchTargetNotKernel {
                host: launch.host.clone(),
                kernel: launch.kernel.clone(),
            });
        }
        if target.params.len() != launch.num_args {
            return Err(SemaError::LaunchArityMismatch {
                kernel: launch.kernel.clone(),
                given: launch.num_args,
                expected: target.params.len(),
            });
        }
    }

    Ok(ProgramInfo { kernels, launches })
}

/// Attempts constant folding of an expression to an integer.
#[must_use]
pub fn const_eval(e: &Expr) -> Option<i64> {
    use crate::ast::BinOp;
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Binary { op, lhs, rhs } => {
            let l = const_eval(lhs)?;
            let r = const_eval(rhs)?;
            Some(match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => {
                    if r == 0 {
                        return None;
                    }
                    l / r
                }
                BinOp::Rem => {
                    if r == 0 {
                        return None;
                    }
                    l % r
                }
                BinOp::Shl => l << (r & 63),
                BinOp::Shr => l >> (r & 63),
                _ => return None,
            })
        }
        _ => None,
    }
}

fn collect_launches(block: &Block, host: &str, out: &mut Vec<LaunchInfo>) {
    visit_stmts(block, &mut |s| {
        if let Stmt::Launch {
            kernel,
            grid,
            block,
            args,
        } = s
        {
            out.push(LaunchInfo {
                host: host.to_string(),
                kernel: kernel.clone(),
                num_args: args.len(),
                const_grid: const_eval(grid),
                const_block: const_eval(block),
            });
        }
    });
}

fn block_has_launch(block: &Block) -> bool {
    let mut found = false;
    visit_stmts(block, &mut |s| {
        if matches!(s, Stmt::Launch { .. }) {
            found = true;
        }
    });
    found
}

fn block_has_loop(block: &Block) -> bool {
    let mut found = false;
    visit_stmts(block, &mut |s| {
        if matches!(s, Stmt::While { .. } | Stmt::For { .. }) {
            found = true;
        }
    });
    found
}

fn count_statements(block: &Block) -> usize {
    let mut n = 0;
    visit_stmts(block, &mut |_| n += 1);
    n
}

fn block_uses_builtin(block: &Block, b: Builtin) -> bool {
    let mut found = false;
    visit_exprs(block, &mut |e| {
        if matches!(e, Expr::Builtin(x) if *x == b) {
            found = true;
        }
    });
    found
}

/// Which device-only syntax a host function uses, if any.
fn host_device_syntax(block: &Block) -> Option<String> {
    let mut shared = false;
    visit_stmts(block, &mut |s| {
        if matches!(s, Stmt::Decl { shared: true, .. }) {
            shared = true;
        }
    });
    if shared {
        return Some("__shared__ declaration".to_string());
    }
    let mut builtin: Option<Builtin> = None;
    visit_exprs(block, &mut |e| {
        if let Expr::Builtin(b) = e {
            builtin.get_or_insert(*b);
        }
    });
    builtin.map(|b| format!("builtin `{}`", b.as_str()))
}

/// Depth-first statement visitor.
pub fn visit_stmts(block: &Block, f: &mut impl FnMut(&Stmt)) {
    for s in &block.stmts {
        f(s);
        match s {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                visit_stmts(then_block, f);
                if let Some(e) = else_block {
                    visit_stmts(e, f);
                }
            }
            Stmt::While { body, .. } => visit_stmts(body, f),
            Stmt::For {
                init, step, body, ..
            } => {
                if let Some(s) = init {
                    f(s);
                }
                if let Some(s) = step {
                    f(s);
                }
                visit_stmts(body, f);
            }
            Stmt::Block(b) => visit_stmts(b, f),
            _ => {}
        }
    }
}

/// Depth-first expression visitor over all statements of a block.
pub fn visit_exprs(block: &Block, f: &mut impl FnMut(&Expr)) {
    visit_stmts(block, &mut |s| {
        match s {
            Stmt::Decl { init: Some(e), .. } => walk_expr(e, f),
            Stmt::Expr(e) => walk_expr(e, f),
            Stmt::Assign { target, value, .. } => {
                walk_expr(target, f);
                walk_expr(value, f);
            }
            Stmt::If { cond, .. } | Stmt::While { cond, .. } => walk_expr(cond, f),
            Stmt::For { cond: Some(c), .. } => walk_expr(c, f),
            Stmt::Return(Some(e)) => walk_expr(e, f),
            Stmt::Launch {
                grid, block, args, ..
            } => {
                walk_expr(grid, f);
                walk_expr(block, f);
                for a in args {
                    walk_expr(a, f);
                }
            }
            _ => {}
        };
    });
}

fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            walk_expr(cond, f);
            walk_expr(then_expr, f);
            walk_expr(else_expr, f);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn analyzes_simple_program() {
        let p = parse(
            r#"
            __global__ void k(float* a, int n) {
                int i = blockIdx.x;
                if (i < n) a[i] = 0.0f;
            }
            void host_main(float* a, int n) {
                k<<<n / 256 + 1, 256>>>(a, n);
            }
        "#,
        )
        .unwrap();
        let info = analyze(&p).unwrap();
        assert_eq!(info.kernels.len(), 1);
        assert!(!info.kernels[0].uses_smid);
        assert!(!info.kernels[0].has_loop);
        assert_eq!(info.launches.len(), 1);
        assert_eq!(info.launches[0].const_block, Some(256));
        assert_eq!(info.launches[0].const_grid, None);
    }

    #[test]
    fn detects_smid_and_loops() {
        let p = parse(
            r#"
            __global__ void k(unsigned int* out) {
                while (true) {
                    out[0] = __smid();
                    break;
                }
            }
        "#,
        )
        .unwrap();
        let info = analyze(&p).unwrap();
        assert!(info.kernels[0].uses_smid);
        assert!(info.kernels[0].has_loop);
    }

    #[test]
    fn duplicate_function_rejected() {
        let p = parse("void f() { } void f() { }").unwrap();
        assert_eq!(
            analyze(&p).unwrap_err(),
            SemaError::DuplicateFunction("f".into())
        );
    }

    #[test]
    fn non_void_kernel_rejected() {
        let p = parse("__global__ int k() { return 1; }").unwrap();
        assert!(matches!(
            analyze(&p).unwrap_err(),
            SemaError::KernelReturnsValue(_)
        ));
    }

    #[test]
    fn unknown_kernel_launch_rejected() {
        let p = parse("void h() { nope<<<1, 1>>>(); }").unwrap();
        assert!(matches!(
            analyze(&p).unwrap_err(),
            SemaError::UnknownKernel { .. }
        ));
    }

    #[test]
    fn launching_host_function_rejected() {
        let p = parse("void g() { } void h() { g<<<1, 1>>>(); }").unwrap();
        assert!(matches!(
            analyze(&p).unwrap_err(),
            SemaError::LaunchTargetNotKernel { .. }
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let p = parse("__global__ void k(int a, int b) { } void h() { k<<<1, 1>>>(1); }").unwrap();
        assert_eq!(
            analyze(&p).unwrap_err(),
            SemaError::LaunchArityMismatch {
                kernel: "k".into(),
                given: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn host_using_thread_idx_rejected() {
        let p = parse("void h() { int i = threadIdx.x; }").unwrap();
        assert!(matches!(
            analyze(&p).unwrap_err(),
            SemaError::DeviceSyntaxInHost { .. }
        ));
    }

    #[test]
    fn launch_in_kernel_rejected() {
        let p = parse("__global__ void inner() { } __global__ void k() { inner<<<1, 1>>>(); }")
            .unwrap();
        assert!(matches!(
            analyze(&p).unwrap_err(),
            SemaError::LaunchInDeviceCode(_)
        ));
    }

    #[test]
    fn const_eval_folds_arithmetic() {
        let p = parse("void h(float* a) { } __global__ void k(float* a) { }").unwrap();
        drop(p);
        use crate::ast::BinOp;
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Int(4), Expr::Int(8)),
            Expr::Int(1),
        );
        assert_eq!(const_eval(&e), Some(33));
        assert_eq!(const_eval(&Expr::ident("n")), None);
        assert_eq!(
            const_eval(&Expr::bin(BinOp::Div, Expr::Int(1), Expr::Int(0))),
            None
        );
    }

    #[test]
    fn statement_count_matches_structure() {
        let p = parse(
            r#"
            __global__ void k(int n) {
                int a = 0;
                for (int i = 0; i < n; ++i) {
                    a += i;
                }
            }
        "#,
        )
        .unwrap();
        let info = analyze(&p).unwrap();
        // decl, for, for-init, for-step, body-assign.
        assert_eq!(info.kernels[0].body_statements, 5);
    }
}
