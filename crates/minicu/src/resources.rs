//! Resource estimation: the "linear scan of the compiled kernel code" the
//! paper uses to derive `max_CTAs_per_SM` (§4.1).
//!
//! Real compilers know exact register allocation; a source-level scan can
//! only estimate. The heuristic here is deliberately simple, deterministic,
//! and monotone in program size: more live values ⇒ more registers. The
//! absolute numbers feed the occupancy calculator, where only the resulting
//! CTAs-per-SM bucket matters.

use std::collections::HashSet;

use crate::ast::{Block, Expr, Function, Stmt, Type};
use crate::sema::{visit_exprs, visit_stmts};

/// Estimated per-CTA resource usage of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Estimated registers per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per CTA in bytes.
    pub smem_per_cta: u32,
}

/// Size in bytes of a scalar of the given type, for shared-memory sizing.
fn scalar_size(ty: &Type) -> u32 {
    match ty {
        Type::Void => 0,
        Type::Bool => 1,
        Type::Int | Type::Uint | Type::Float => 4,
        Type::Ptr(_) => 8,
    }
}

/// Estimates the register and shared-memory footprint of a kernel body.
///
/// The register model: a fixed base for the ABI and address arithmetic,
/// plus two registers per distinct non-shared local variable, one per
/// parameter, and one per unit of maximum expression depth (temporaries).
/// Shared memory: the sum of `__shared__` declaration sizes.
///
/// # Example
///
/// ```
/// let src = r#"
/// __global__ void k(float* a) {
///     __shared__ float tile[256];
///     int i = threadIdx.x;
///     tile[i] = a[i];
/// }
/// "#;
/// let program = flep_minicu::parse(src).unwrap();
/// let est = flep_minicu::estimate_resources(program.function("k").unwrap());
/// assert_eq!(est.smem_per_cta, 1024);
/// assert!(est.regs_per_thread >= 10);
/// ```
#[must_use]
pub fn estimate_resources(kernel: &Function) -> ResourceEstimate {
    const BASE_REGS: u32 = 10;

    let mut locals: HashSet<String> = HashSet::new();
    let mut smem: u32 = 0;
    visit_stmts(&kernel.body, &mut |s| {
        if let Stmt::Decl {
            name,
            ty,
            shared,
            array_len,
            ..
        } = s
        {
            if *shared {
                let elems = array_len.unwrap_or(1) as u32;
                smem += scalar_size(ty) * elems;
            } else {
                locals.insert(name.clone());
            }
        }
    });

    let depth = max_expr_depth(&kernel.body);
    let regs = BASE_REGS + kernel.params.len() as u32 + 2 * locals.len() as u32 + depth;

    ResourceEstimate {
        regs_per_thread: regs,
        smem_per_cta: smem,
    }
}

fn expr_depth(e: &Expr) -> u32 {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Bool(_) | Expr::Ident(_) | Expr::Builtin(_) => 1,
        Expr::Unary { expr, .. } => 1 + expr_depth(expr),
        Expr::Binary { lhs, rhs, .. } => 1 + expr_depth(lhs).max(expr_depth(rhs)),
        Expr::Call { args, .. } => 1 + args.iter().map(expr_depth).max().unwrap_or(0),
        Expr::Index { base, index } => 1 + expr_depth(base).max(expr_depth(index)),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            1 + expr_depth(cond)
                .max(expr_depth(then_expr))
                .max(expr_depth(else_expr))
        }
    }
}

fn max_expr_depth(block: &Block) -> u32 {
    let mut depth = 0;
    visit_exprs(block, &mut |e| depth = depth.max(expr_depth(e)));
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn kernel(src: &str) -> Function {
        let p = parse(src).unwrap();
        let k = p.kernels().next().unwrap().clone();
        k
    }

    #[test]
    fn shared_memory_sums_declarations() {
        let k = kernel(
            r#"
            __global__ void k(float* a) {
                __shared__ float tile_a[128];
                __shared__ float tile_b[128];
                __shared__ int counts[32];
                a[0] = tile_a[0] + tile_b[0];
            }
        "#,
        );
        let est = estimate_resources(&k);
        assert_eq!(est.smem_per_cta, 128 * 4 + 128 * 4 + 32 * 4);
    }

    #[test]
    fn more_locals_means_more_registers() {
        let small = kernel("__global__ void k(float* a) { a[0] = 1.0f; }");
        let big = kernel(
            r#"
            __global__ void k(float* a) {
                float x0 = a[0]; float x1 = a[1]; float x2 = a[2];
                float x3 = a[3]; float x4 = a[4]; float x5 = a[5];
                a[0] = x0 + x1 + x2 + x3 + x4 + x5;
            }
        "#,
        );
        assert!(
            estimate_resources(&big).regs_per_thread > estimate_resources(&small).regs_per_thread
        );
    }

    #[test]
    fn deeper_expressions_need_more_temporaries() {
        let shallow = kernel("__global__ void k(float* a) { a[0] = a[1]; }");
        let deep = kernel(
            "__global__ void k(float* a) { a[0] = ((a[1] + a[2]) * (a[3] + a[4])) / ((a[5] - a[6]) + 1.0f); }",
        );
        assert!(
            estimate_resources(&deep).regs_per_thread
                > estimate_resources(&shallow).regs_per_thread
        );
    }

    #[test]
    fn scalar_shared_variable_counts_once() {
        let k = kernel(
            r#"
            __global__ void k(float* a) {
                __shared__ unsigned int flag;
                a[0] = 0.0f;
            }
        "#,
        );
        assert_eq!(estimate_resources(&k).smem_per_cta, 4);
    }

    #[test]
    fn estimate_is_deterministic() {
        let k = kernel(
            "__global__ void k(float* a, int n) { for (int i = 0; i < n; ++i) a[i] = a[i] * 2.0f; }",
        );
        assert_eq!(estimate_resources(&k), estimate_resources(&k));
    }
}
