//! Recursive-descent parser for mini-CU.

use std::error::Error;
use std::fmt;

use crate::ast::{
    AssignOp, BinOp, Block, Builtin, Expr, FnKind, Function, Param, Program, Stmt, Type, UnOp,
};
use crate::token::{lex, SpannedToken, Token};

/// A parse error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based line where the problem was detected.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<crate::token::LexError> for ParseError {
    fn from(e: crate::token::LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses a mini-CU translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
///
/// # Example
///
/// ```
/// let src = r#"
/// __global__ void vec_add(float* a, float* b, float* c, int n) {
///     int i = blockIdx.x * blockDim.x + threadIdx.x;
///     if (i < n) {
///         c[i] = a[i] + b[i];
///     }
/// }
/// "#;
/// let program = flep_minicu::parse(src).unwrap();
/// assert_eq!(program.kernels().count(), 1);
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|t| &t.token)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        self.pos += 1;
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            line: self.line(),
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected `{tok}`, found `{t}`"))),
            None => Err(self.error(format!("expected `{tok}`, found end of input"))),
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(self.error(format!("expected identifier, found `{t}`"))),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    // -- Grammar ---------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut functions = Vec::new();
        while self.peek().is_some() {
            functions.push(self.function()?);
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let kind = if self.eat(&Token::KwGlobal) {
            FnKind::Global
        } else if self.eat(&Token::KwDevice) {
            FnKind::Device
        } else {
            FnKind::Host
        };
        let ret = self.parse_type()?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let volatile = self.eat(&Token::KwVolatile);
                let ty = self.parse_type()?;
                let pname = self.ident()?;
                params.push(Param {
                    name: pname,
                    ty,
                    volatile,
                });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        let body = self.block()?;
        Ok(Function {
            kind,
            ret,
            name,
            params,
            body,
        })
    }

    fn starts_type(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::KwVoid | Token::KwInt | Token::KwUnsigned | Token::KwFloat | Token::KwBool)
        )
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let base = match self.advance() {
            Some(Token::KwVoid) => Type::Void,
            Some(Token::KwInt) => Type::Int,
            Some(Token::KwUnsigned) => {
                // `unsigned` optionally followed by `int`.
                self.eat(&Token::KwInt);
                Type::Uint
            }
            Some(Token::KwFloat) => Type::Float,
            Some(Token::KwBool) => Type::Bool,
            Some(t) => return Err(self.error(format!("expected type, found `{t}`"))),
            None => return Err(self.error("expected type, found end of input")),
        };
        let mut ty = base;
        while self.eat(&Token::Star) {
            ty = ty.ptr();
        }
        Ok(ty)
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::LBrace) => Ok(Stmt::Block(self.block()?)),
            Some(Token::KwIf) => self.if_stmt(),
            Some(Token::KwWhile) => self.while_stmt(),
            Some(Token::KwFor) => self.for_stmt(),
            Some(Token::KwReturn) => {
                self.advance();
                if self.eat(&Token::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect(&Token::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Some(Token::KwBreak) => {
                self.advance();
                self.expect(&Token::Semi)?;
                Ok(Stmt::Break)
            }
            Some(Token::KwContinue) => {
                self.advance();
                self.expect(&Token::Semi)?;
                Ok(Stmt::Continue)
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&Token::Semi)?;
                Ok(s)
            }
        }
    }

    /// A statement without its trailing `;`: declaration, launch,
    /// assignment, or expression. Shared by statement position and
    /// `for`-init/step.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Declaration?
        let shared = self.eat(&Token::KwShared);
        let volatile = self.eat(&Token::KwVolatile);
        if shared || volatile || self.starts_type() {
            if !self.starts_type() {
                return Err(self.error("expected type after qualifier"));
            }
            let ty = self.parse_type()?;
            let name = self.ident()?;
            let array_len = if self.eat(&Token::LBracket) {
                let len = match self.advance() {
                    Some(Token::IntLit(v)) if v >= 0 => v as u64,
                    _ => return Err(self.error("array length must be an integer literal")),
                };
                self.expect(&Token::RBracket)?;
                Some(len)
            } else {
                None
            };
            let init = if self.eat(&Token::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl {
                name,
                ty,
                shared,
                volatile,
                array_len,
                init,
            });
        }
        // Kernel launch?
        if let (Some(Token::Ident(_)), Some(Token::LaunchOpen)) = (self.peek(), self.peek_at(1)) {
            let kernel = self.ident()?;
            self.expect(&Token::LaunchOpen)?;
            let grid = self.expr()?;
            self.expect(&Token::Comma)?;
            let block = self.expr()?;
            self.expect(&Token::LaunchClose)?;
            self.expect(&Token::LParen)?;
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Stmt::Launch {
                kernel,
                grid,
                block,
                args,
            });
        }
        // Assignment or expression.
        let target = self.expr()?;
        let op = match self.peek() {
            Some(Token::Assign) => Some(AssignOp::Assign),
            Some(Token::PlusAssign) => Some(AssignOp::Add),
            Some(Token::MinusAssign) => Some(AssignOp::Sub),
            Some(Token::StarAssign) => Some(AssignOp::Mul),
            Some(Token::SlashAssign) => Some(AssignOp::Div),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let value = self.expr()?;
            Ok(Stmt::Assign { target, op, value })
        } else {
            Ok(Stmt::Expr(target))
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Token::KwIf)?;
        self.expect(&Token::LParen)?;
        let cond = self.expr()?;
        self.expect(&Token::RParen)?;
        let then_block = self.stmt_as_block()?;
        let else_block = if self.eat(&Token::KwElse) {
            Some(self.stmt_as_block()?)
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_block,
            else_block,
        })
    }

    /// Parses either a braced block or a single statement promoted into a
    /// block (so `if (c) return;` works).
    fn stmt_as_block(&mut self) -> Result<Block, ParseError> {
        if self.peek() == Some(&Token::LBrace) {
            self.block()
        } else {
            Ok(Block::new(vec![self.stmt()?]))
        }
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Token::KwWhile)?;
        self.expect(&Token::LParen)?;
        let cond = self.expr()?;
        self.expect(&Token::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Token::KwFor)?;
        self.expect(&Token::LParen)?;
        let init = if self.peek() == Some(&Token::Semi) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(&Token::Semi)?;
        let cond = if self.peek() == Some(&Token::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&Token::Semi)?;
        let step = if self.peek() == Some(&Token::RParen) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(&Token::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    // -- Expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(1)?;
        if self.eat(&Token::Question) {
            let then_expr = self.expr()?;
            self.expect(&Token::Colon)?;
            let else_expr = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            })
        } else {
            Ok(cond)
        }
    }

    fn bin_op(&self) -> Option<BinOp> {
        Some(match self.peek()? {
            Token::Plus => BinOp::Add,
            Token::Minus => BinOp::Sub,
            Token::Star => BinOp::Mul,
            Token::Slash => BinOp::Div,
            Token::Percent => BinOp::Rem,
            Token::Shl => BinOp::Shl,
            Token::Shr => BinOp::Shr,
            Token::Lt => BinOp::Lt,
            Token::Gt => BinOp::Gt,
            Token::Le => BinOp::Le,
            Token::Ge => BinOp::Ge,
            Token::Eq => BinOp::Eq,
            Token::Ne => BinOp::Ne,
            Token::Amp => BinOp::BitAnd,
            Token::Pipe => BinOp::BitOr,
            Token::Caret => BinOp::BitXor,
            Token::AndAnd => BinOp::And,
            Token::OrOr => BinOp::Or,
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.bin_op() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.advance();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Some(Token::Minus) => Some(UnOp::Neg),
            Some(Token::Not) => Some(UnOp::Not),
            Some(Token::Star) => Some(UnOp::Deref),
            Some(Token::Amp) => Some(UnOp::AddrOf),
            Some(Token::PlusPlus) => Some(UnOp::PreInc),
            Some(Token::MinusMinus) => Some(UnOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let expr = self.unary()?;
            // Fold negated literals so `-386` round-trips as a literal.
            if op == UnOp::Neg {
                match expr {
                    Expr::Int(v) => return Ok(Expr::Int(-v)),
                    Expr::Float(v) => return Ok(Expr::Float(-v)),
                    other => {
                        return Ok(Expr::Unary {
                            op,
                            expr: Box::new(other),
                        })
                    }
                }
            }
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.peek() == Some(&Token::LBracket) {
            self.advance();
            let idx = self.expr()?;
            self.expect(&Token::RBracket)?;
            e = Expr::Index {
                base: Box::new(e),
                index: Box::new(idx),
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Some(Token::IntLit(v)) => Ok(Expr::Int(v)),
            Some(Token::FloatLit(v)) => Ok(Expr::Float(v)),
            Some(Token::KwTrue) => Ok(Expr::Bool(true)),
            Some(Token::KwFalse) => Ok(Expr::Bool(false)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                // Builtin dim3 member access.
                if matches!(
                    name.as_str(),
                    "threadIdx" | "blockIdx" | "blockDim" | "gridDim"
                ) && self.peek() == Some(&Token::Dot)
                {
                    self.advance();
                    let field = self.ident()?;
                    let b = match (name.as_str(), field.as_str()) {
                        ("threadIdx", "x") => Builtin::ThreadIdxX,
                        ("threadIdx", "y") => Builtin::ThreadIdxY,
                        ("blockIdx", "x") => Builtin::BlockIdxX,
                        ("blockIdx", "y") => Builtin::BlockIdxY,
                        ("blockDim", "x") => Builtin::BlockDimX,
                        ("blockDim", "y") => Builtin::BlockDimY,
                        ("gridDim", "x") => Builtin::GridDimX,
                        (base, f) => {
                            return Err(self.error(format!("unknown builtin member `{base}.{f}`")))
                        }
                    };
                    return Ok(Expr::Builtin(b));
                }
                // Call?
                if self.peek() == Some(&Token::LParen) {
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    if name == "__smid" && args.is_empty() {
                        return Ok(Expr::Builtin(Builtin::SmId));
                    }
                    return Ok(Expr::Call { name, args });
                }
                Ok(Expr::Ident(name))
            }
            Some(t) => Err(ParseError {
                message: format!("expected expression, found `{t}`"),
                line: self.tokens[self.pos - 1].line,
            }),
            None => Err(self.error("expected expression, found end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vec_add() {
        let src = r#"
            __global__ void vec_add(float* a, float* b, float* c, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    c[i] = a[i] + b[i];
                }
            }
        "#;
        let p = parse(src).unwrap();
        let k = p.function("vec_add").unwrap();
        assert_eq!(k.kind, FnKind::Global);
        assert_eq!(k.params.len(), 4);
        assert_eq!(k.params[0].ty, Type::Float.ptr());
    }

    #[test]
    fn parses_launch_statement() {
        let src = r#"
            __global__ void k(float* a) { return; }
            void main_host(float* a, int n) {
                k<<<n / 256, 256>>>(a);
            }
        "#;
        let p = parse(src).unwrap();
        let host = p.function("main_host").unwrap();
        let Stmt::Launch { kernel, args, .. } = &host.body.stmts[0] else {
            panic!("expected launch");
        };
        assert_eq!(kernel, "k");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn parses_for_loop_with_pre_increment() {
        let src = r#"
            void f(int n) {
                int acc = 0;
                for (int i = 0; i < n; ++i) {
                    acc += i;
                }
            }
        "#;
        let p = parse(src).unwrap();
        let f = p.function("f").unwrap();
        assert!(matches!(f.body.stmts[1], Stmt::For { .. }));
    }

    #[test]
    fn parses_while_true_with_flag_check() {
        // The Fig. 4(a) skeleton itself must be expressible.
        let src = r#"
            __global__ void k(volatile unsigned int* temp_p) {
                while (true) {
                    if (*temp_p == 1) return;
                }
            }
        "#;
        let p = parse(src).unwrap();
        let k = p.function("k").unwrap();
        assert!(k.params[0].volatile);
        assert!(k.body.contains_return());
    }

    #[test]
    fn parses_smid_intrinsic() {
        let src = r#"
            __global__ void k(unsigned int* out) {
                out[0] = __smid();
            }
        "#;
        let p = parse(src).unwrap();
        let printed = p.to_string();
        assert!(printed.contains("__smid()"));
    }

    #[test]
    fn parses_shared_declarations() {
        let src = r#"
            __global__ void k(float* a) {
                __shared__ float tile[256];
                tile[threadIdx.x] = a[threadIdx.x];
            }
        "#;
        let p = parse(src).unwrap();
        let k = p.function("k").unwrap();
        let Stmt::Decl {
            shared, array_len, ..
        } = &k.body.stmts[0]
        else {
            panic!("expected decl");
        };
        assert!(shared);
        assert_eq!(*array_len, Some(256));
    }

    #[test]
    fn parses_ternary_and_precedence() {
        let src = "int f(int a, int b) { return a < b ? a : b; }";
        let p = parse(src).unwrap();
        let f = p.function("f").unwrap();
        assert!(matches!(
            f.body.stmts[0],
            Stmt::Return(Some(Expr::Ternary { .. }))
        ));
    }

    #[test]
    fn round_trips_through_printer() {
        let src = r#"
            __global__ void k(float* a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) {
                    a[i] = a[i] * 2.0f + 1.0f;
                }
            }
        "#;
        let p1 = parse(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1, p2, "printer output must re-parse to the same AST");
    }

    #[test]
    fn error_reports_line() {
        let src = "void f() {\n    int x = ;\n}";
        let err = parse(src).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_unknown_builtin_member() {
        let err = parse("void f() { int a = threadIdx.z; }").unwrap_err();
        assert!(err.message.contains("threadIdx.z"));
    }

    #[test]
    fn parses_unsigned_int_and_bare_unsigned() {
        let p = parse("void f(unsigned int a, unsigned b) { }").unwrap();
        let f = p.function("f").unwrap();
        assert_eq!(f.params[0].ty, Type::Uint);
        assert_eq!(f.params[1].ty, Type::Uint);
    }

    #[test]
    fn parses_atomic_add_call() {
        let src = r#"
            __global__ void k(unsigned int* counter) {
                unsigned int t = atomicAdd(counter, 1);
            }
        "#;
        let p = parse(src).unwrap();
        assert!(p.to_string().contains("atomicAdd(counter, 1)"));
    }

    #[test]
    fn single_statement_bodies_promote_to_blocks() {
        let src = "void f(int n) { if (n > 0) return; while (n > 0) n -= 1; }";
        let p = parse(src).unwrap();
        let f = p.function("f").unwrap();
        assert_eq!(f.body.stmts.len(), 2);
    }
}
