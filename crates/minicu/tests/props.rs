//! Property-based tests for mini-CU: generated ASTs always print to
//! source that re-parses to the identical AST (the codegen soundness
//! property every transform pass relies on).

use proptest::prelude::*;

use flep_minicu::{
    parse, AssignOp, BinOp, Block, Builtin, Expr, FnKind, Function, Param, Program, Stmt, Type,
    UnOp,
};

fn arb_type() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Int),
        Just(Type::Uint),
        Just(Type::Float),
        Just(Type::Bool),
        Just(Type::Float.ptr()),
        Just(Type::Int.ptr()),
    ]
}

fn ident_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.as_str(),
            "void" | "int" | "unsigned" | "float" | "bool" | "if" | "else" | "while" | "for"
                | "return" | "break" | "continue" | "true" | "false" | "volatile"
        )
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::Int),
        (0u32..100).prop_map(|v| Expr::Float(f64::from(v) * 0.5)),
        any::<bool>().prop_map(Expr::Bool),
        ident_name().prop_map(Expr::Ident),
        prop_oneof![
            Just(Builtin::ThreadIdxX),
            Just(Builtin::BlockIdxX),
            Just(Builtin::BlockDimX),
            Just(Builtin::SmId),
        ]
        .prop_map(Expr::Builtin),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Lt),
                    Just(BinOp::Eq),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Shl),
                    Just(BinOp::BitXor),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            (
                prop_oneof![Just(UnOp::Neg), Just(UnOp::Not), Just(UnOp::Deref)],
                inner.clone()
            )
                .prop_map(|(op, e)| match (op, e) {
                    // The parser folds negated literals; generate the
                    // folded form directly so round-trips are structural.
                    (UnOp::Neg, Expr::Int(v)) => Expr::Int(-v),
                    (UnOp::Neg, Expr::Float(v)) => Expr::Float(-v),
                    (op, e) => Expr::Unary {
                        op,
                        expr: Box::new(e),
                    },
                }),
            (ident_name(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::call(name, args)),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::Index {
                base: Box::new(Expr::Ident("arr".into())),
                index: Box::new(Expr::bin(BinOp::Add, b, i)),
            }),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Ternary {
                cond: Box::new(c),
                then_expr: Box::new(t),
                else_expr: Box::new(e),
            }),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        (ident_name(), arb_type(), prop::option::of(arb_expr())).prop_map(|(name, ty, init)| {
            Stmt::Decl {
                name,
                ty,
                shared: false,
                volatile: false,
                array_len: None,
                init,
            }
        }),
        (
            ident_name(),
            prop_oneof![
                Just(AssignOp::Assign),
                Just(AssignOp::Add),
                Just(AssignOp::Mul)
            ],
            arb_expr()
        )
            .prop_map(|(name, op, value)| Stmt::Assign {
                target: Expr::Ident(name),
                op,
                value,
            }),
        arb_expr().prop_map(Stmt::Expr),
        Just(Stmt::Return(None)),
        Just(Stmt::Break),
        Just(Stmt::Continue),
    ];
    simple.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (arb_expr(), prop::collection::vec(inner.clone(), 1..4)).prop_map(|(cond, stmts)| {
                Stmt::If {
                    cond,
                    then_block: Block::new(stmts),
                    else_block: None,
                }
            }),
            (
                arb_expr(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(cond, t, e)| Stmt::If {
                    cond,
                    then_block: Block::new(t),
                    else_block: Some(Block::new(e)),
                }),
            (arb_expr(), prop::collection::vec(inner, 1..4))
                .prop_map(|(cond, stmts)| Stmt::While {
                    cond,
                    body: Block::new(stmts),
                }),
        ]
    })
}

fn arb_function() -> impl Strategy<Value = Function> {
    (
        ident_name(),
        prop::collection::vec((ident_name(), arb_type()), 0..4),
        prop::collection::vec(arb_stmt(), 1..8),
        prop_oneof![Just(FnKind::Global), Just(FnKind::Device), Just(FnKind::Host)],
    )
        .prop_map(|(name, params, stmts, kind)| Function {
            kind,
            ret: Type::Void,
            name: format!("fn_{name}"),
            params: params
                .into_iter()
                .enumerate()
                .map(|(i, (n, ty))| Param {
                    name: format!("p{i}_{n}"),
                    ty,
                    volatile: false,
                })
                .collect(),
            body: Block::new(stmts),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print(ast) re-parses to the identical AST.
    #[test]
    fn printer_parser_round_trip(f in arb_function()) {
        let program = Program { functions: vec![f] };
        let printed = program.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("generated source failed to parse: {e}\n{printed}"));
        prop_assert_eq!(program, reparsed, "round-trip mismatch for:\n{}", printed);
    }

    /// replace_builtin is idempotent once the builtin is gone, and the
    /// count matches the number of occurrences.
    #[test]
    fn replace_builtin_is_exhaustive(f in arb_function()) {
        let mut body = f.body.clone();
        let n1 = body.replace_builtin(Builtin::BlockIdxX, &Expr::ident("task_id"));
        let n2 = body.replace_builtin(Builtin::BlockIdxX, &Expr::ident("task_id"));
        prop_assert_eq!(n2, 0, "second replacement found {} leftovers after {}", n2, n1);
    }
}
