//! Property-based tests for mini-CU: generated ASTs always print to
//! source that re-parses to the identical AST (the codegen soundness
//! property every transform pass relies on). Runs on the in-tree
//! `flep-check` harness with a hand-written recursive AST generator.

use flep_minicu::{
    parse, AssignOp, BinOp, Block, Builtin, Expr, FnKind, Function, Param, Program, Stmt, Type,
    UnOp,
};
use flep_sim_core::check::{check, CheckConfig, Shrink};
use flep_sim_core::{require, require_eq, SimRng};

const KEYWORDS: [&str; 15] = [
    "void", "int", "unsigned", "float", "bool", "if", "else", "while", "for", "return", "break",
    "continue", "true", "false", "volatile",
];

fn arb_type(rng: &mut SimRng) -> Type {
    match rng.uniform_u64(0, 5) {
        0 => Type::Int,
        1 => Type::Uint,
        2 => Type::Float,
        3 => Type::Bool,
        4 => Type::Float.ptr(),
        _ => Type::Int.ptr(),
    }
}

/// `[a-z][a-z0-9_]{0,6}`, avoiding keywords.
fn ident_name(rng: &mut SimRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    loop {
        let mut s = String::new();
        s.push(*rng.choose(FIRST).unwrap() as char);
        let extra = rng.uniform_u64(0, 6);
        for _ in 0..extra {
            s.push(*rng.choose(REST).unwrap() as char);
        }
        if !KEYWORDS.contains(&s.as_str()) {
            return s;
        }
    }
}

fn leaf_expr(rng: &mut SimRng) -> Expr {
    match rng.uniform_u64(0, 4) {
        0 => Expr::Int(rng.uniform_u64(0, 1999) as i64 - 1000),
        1 => Expr::Float(rng.uniform_u64(0, 99) as f64 * 0.5),
        2 => Expr::Bool(rng.bool()),
        3 => Expr::Ident(ident_name(rng)),
        _ => Expr::Builtin(match rng.uniform_u64(0, 3) {
            0 => Builtin::ThreadIdxX,
            1 => Builtin::BlockIdxX,
            2 => Builtin::BlockDimX,
            _ => Builtin::SmId,
        }),
    }
}

fn arb_expr(rng: &mut SimRng, depth: u32) -> Expr {
    // One-third leaves even below the depth limit bounds the tree size the
    // same way proptest's `prop_recursive` expected-size parameter did.
    if depth == 0 || rng.uniform_u64(0, 2) == 0 {
        return leaf_expr(rng);
    }
    match rng.uniform_u64(0, 4) {
        0 => {
            let op = *rng
                .choose(&[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Lt,
                    BinOp::Eq,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Shl,
                    BinOp::BitXor,
                ])
                .unwrap();
            Expr::bin(op, arb_expr(rng, depth - 1), arb_expr(rng, depth - 1))
        }
        1 => {
            let op = *rng.choose(&[UnOp::Neg, UnOp::Not, UnOp::Deref]).unwrap();
            let e = arb_expr(rng, depth - 1);
            match (op, e) {
                // The parser folds negated literals; generate the folded
                // form directly so round-trips are structural.
                (UnOp::Neg, Expr::Int(v)) => Expr::Int(-v),
                (UnOp::Neg, Expr::Float(v)) => Expr::Float(-v),
                (op, e) => Expr::Unary {
                    op,
                    expr: Box::new(e),
                },
            }
        }
        2 => {
            let n = rng.uniform_u64(0, 2);
            let args = (0..n).map(|_| arb_expr(rng, depth - 1)).collect();
            Expr::call(ident_name(rng), args)
        }
        3 => Expr::Index {
            base: Box::new(Expr::Ident("arr".into())),
            index: Box::new(Expr::bin(
                BinOp::Add,
                arb_expr(rng, depth - 1),
                arb_expr(rng, depth - 1),
            )),
        },
        _ => Expr::Ternary {
            cond: Box::new(arb_expr(rng, depth - 1)),
            then_expr: Box::new(arb_expr(rng, depth - 1)),
            else_expr: Box::new(arb_expr(rng, depth - 1)),
        },
    }
}

fn simple_stmt(rng: &mut SimRng) -> Stmt {
    match rng.uniform_u64(0, 5) {
        0 => Stmt::Decl {
            name: ident_name(rng),
            ty: arb_type(rng),
            shared: false,
            volatile: false,
            array_len: None,
            init: if rng.bool() {
                Some(arb_expr(rng, 4))
            } else {
                None
            },
        },
        1 => Stmt::Assign {
            target: Expr::Ident(ident_name(rng)),
            op: *rng
                .choose(&[AssignOp::Assign, AssignOp::Add, AssignOp::Mul])
                .unwrap(),
            value: arb_expr(rng, 4),
        },
        2 => Stmt::Expr(arb_expr(rng, 4)),
        3 => Stmt::Return(None),
        4 => Stmt::Break,
        _ => Stmt::Continue,
    }
}

fn arb_stmt(rng: &mut SimRng, depth: u32) -> Stmt {
    if depth == 0 || rng.uniform_u64(0, 2) == 0 {
        return simple_stmt(rng);
    }
    let block = |rng: &mut SimRng, lo: u64, hi: u64, depth: u32| {
        let n = rng.uniform_u64(lo, hi);
        Block::new((0..n).map(|_| arb_stmt(rng, depth - 1)).collect())
    };
    match rng.uniform_u64(0, 2) {
        0 => Stmt::If {
            cond: arb_expr(rng, 4),
            then_block: block(rng, 1, 3, depth),
            else_block: None,
        },
        1 => Stmt::If {
            cond: arb_expr(rng, 4),
            then_block: block(rng, 1, 2, depth),
            else_block: Some(block(rng, 1, 2, depth)),
        },
        _ => Stmt::While {
            cond: arb_expr(rng, 4),
            body: block(rng, 1, 3, depth),
        },
    }
}

fn arb_function(rng: &mut SimRng) -> Function {
    let kind = *rng
        .choose(&[FnKind::Global, FnKind::Device, FnKind::Host])
        .unwrap();
    let params = (0..rng.uniform_u64(0, 3))
        .map(|i| Param {
            name: format!("p{i}_{}", ident_name(rng)),
            ty: arb_type(rng),
            volatile: false,
        })
        .collect();
    let n_stmts = rng.uniform_u64(1, 7);
    Function {
        kind,
        ret: Type::Void,
        name: format!("fn_{}", ident_name(rng)),
        params,
        body: Block::new((0..n_stmts).map(|_| arb_stmt(rng, 3)).collect()),
    }
}

/// Newtype so the foreign `Function` can carry a `Shrink` impl: shrinks by
/// dropping statements, then parameters — enough to cut failing functions
/// down to the offending statement.
#[derive(Debug, Clone, PartialEq)]
struct GenFn(Function);

impl Shrink for GenFn {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let f = &self.0;
        for i in 0..f.body.stmts.len() {
            if f.body.stmts.len() > 1 {
                let mut g = f.clone();
                g.body.stmts.remove(i);
                out.push(GenFn(g));
            }
        }
        for i in 0..f.params.len() {
            let mut g = f.clone();
            g.params.remove(i);
            out.push(GenFn(g));
        }
        out
    }
}

fn assert_round_trip(f: &Function) -> flep_sim_core::check::CaseResult {
    let program = Program {
        functions: vec![f.clone()],
    };
    let printed = program.to_string();
    match parse(&printed) {
        Err(e) => {
            require!(false, "generated source failed to parse: {e}\n{printed}");
            unreachable!()
        }
        Ok(reparsed) => {
            require_eq!(program, reparsed, "round-trip mismatch for:\n{}", printed);
            Ok(())
        }
    }
}

/// print(ast) re-parses to the identical AST.
#[test]
fn printer_parser_round_trip() {
    check(
        "printer_parser_round_trip",
        CheckConfig::with_cases(128),
        |rng: &mut SimRng| GenFn(arb_function(rng)),
        |GenFn(f)| assert_round_trip(f),
    );
}

/// replace_builtin is idempotent once the builtin is gone, and the count
/// matches the number of occurrences.
#[test]
fn replace_builtin_is_exhaustive() {
    check(
        "replace_builtin_is_exhaustive",
        CheckConfig::with_cases(128),
        |rng: &mut SimRng| GenFn(arb_function(rng)),
        |GenFn(f)| {
            let mut body = f.body.clone();
            let n1 = body.replace_builtin(Builtin::BlockIdxX, &Expr::ident("task_id"));
            let n2 = body.replace_builtin(Builtin::BlockIdxX, &Expr::ident("task_id"));
            require!(
                n2 == 0,
                "second replacement found {n2} leftovers after {n1}"
            );
            Ok(())
        },
    );
}

/// The shrunk counterexample proptest once found for the round-trip
/// property (checked in from the old `props.proptest-regressions` file):
/// a negated parenthesised binary expression as an `if` condition, plus a
/// ternary initialiser ending in a builtin. Kept as an explicit case so
/// the regression stays covered without the proptest artifact.
#[test]
fn regression_negated_paren_binary_and_ternary_builtin_round_trip() {
    let f = Function {
        kind: FnKind::Device,
        ret: Type::Void,
        name: "fn_a".into(),
        params: vec![],
        body: Block::new(vec![Stmt::While {
            cond: Expr::Int(0),
            body: Block::new(vec![Stmt::If {
                cond: Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(Expr::bin(BinOp::Add, Expr::Int(0), Expr::Float(11.5))),
                },
                then_block: Block::new(vec![
                    Stmt::Decl {
                        name: "bc_94_".into(),
                        ty: Type::Bool,
                        shared: false,
                        volatile: false,
                        array_len: None,
                        init: Some(Expr::Ternary {
                            cond: Box::new(Expr::Unary {
                                op: UnOp::Deref,
                                expr: Box::new(Expr::Ident("e4i_".into())),
                            }),
                            then_expr: Box::new(Expr::Int(-386)),
                            else_expr: Box::new(Expr::Builtin(Builtin::SmId)),
                        }),
                    },
                    Stmt::Continue,
                ]),
                else_block: None,
            }]),
        }]),
    };
    assert_round_trip(&f).unwrap_or_else(|e| panic!("{}", e.message));
}
