//! Property-based tests for the simulation engine's core invariants.

use proptest::prelude::*;

use flep_sim_core::{EventQueue, SimTime, SpanSet};

proptest! {
    /// Events always pop in nondecreasing time order, regardless of the
    /// insertion pattern.
    #[test]
    fn event_queue_pops_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= last, "queue went backwards");
            last = e.time;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Events with equal timestamps pop in insertion (FIFO) order.
    #[test]
    fn event_queue_is_fifo_within_a_timestamp(
        groups in prop::collection::vec((0u64..50, 1usize..10), 1..30)
    ) {
        let mut q = EventQueue::new();
        let mut seq = 0usize;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.push(SimTime::from_ns(t), seq);
                seq += 1;
            }
        }
        let mut per_time: std::collections::HashMap<SimTime, Vec<usize>> = Default::default();
        while let Some(e) = q.pop() {
            per_time.entry(e.time).or_default().push(e.payload);
        }
        for (_, payloads) in per_time {
            let mut sorted = payloads.clone();
            sorted.sort_unstable();
            prop_assert_eq!(payloads, sorted, "same-timestamp events out of FIFO order");
        }
    }

    /// SimTime saturating subtraction never underflows and addition is
    /// commutative/associative on safe ranges.
    #[test]
    fn simtime_arithmetic_laws(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, c in 0u64..u64::MAX / 4) {
        let (ta, tb, tc) = (SimTime::from_ns(a), SimTime::from_ns(b), SimTime::from_ns(c));
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert_eq!((ta + tb) + tc, ta + (tb + tc));
        prop_assert_eq!((ta - tb) + tb >= ta, true); // saturation only rounds up
        prop_assert!((ta - tb).as_ns() <= a);
    }

    /// Scaling by a factor in [0, 2] keeps durations within linear bounds.
    #[test]
    fn simtime_scale_bounds(ns in 0u64..1_000_000_000, factor in 0.0f64..2.0) {
        let t = SimTime::from_ns(ns);
        let scaled = t.scale(factor);
        let expected = ns as f64 * factor;
        prop_assert!((scaled.as_ns() as f64 - expected).abs() <= 1.0);
    }

    /// Span shares over any window always sum to ~1 (or 0 for empty sets).
    #[test]
    fn span_shares_sum_to_one(
        spans in prop::collection::vec((0u64..1000, 1u64..500, 0u64..4), 1..40)
    ) {
        let mut set = SpanSet::new();
        for &(start, len, owner) in &spans {
            set.open(owner, SimTime::from_ns(start));
            set.close(owner, SimTime::from_ns(start + len));
        }
        let from = SimTime::ZERO;
        let to = SimTime::from_ns(2000);
        let total: f64 = (0..4).map(|o| set.share_in(o, from, to)).sum();
        prop_assert!(total == 0.0 || (total - 1.0).abs() < 1e-9, "shares sum {total}");
    }
}
