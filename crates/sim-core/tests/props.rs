//! Property-based tests for the simulation engine's core invariants,
//! running on the in-tree `flep-check` harness.

use flep_sim_core::check::{check, CheckConfig};
use flep_sim_core::{require, require_eq, EventQueue, SimRng, SimTime, SpanSet};

/// Events always pop in nondecreasing time order, regardless of the
/// insertion pattern.
#[test]
fn event_queue_pops_in_time_order() {
    check(
        "event_queue_pops_in_time_order",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let n = rng.uniform_u64(1, 199) as usize;
            (0..n)
                .map(|_| rng.uniform_u64(0, 999_999))
                .collect::<Vec<u64>>()
        },
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ns(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some(e) = q.pop() {
                require!(e.time >= last, "queue went backwards");
                last = e.time;
                count += 1;
            }
            require_eq!(count, times.len());
            Ok(())
        },
    );
}

/// Events with equal timestamps pop in insertion (FIFO) order.
#[test]
fn event_queue_is_fifo_within_a_timestamp() {
    check(
        "event_queue_is_fifo_within_a_timestamp",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let n = rng.uniform_u64(1, 29) as usize;
            (0..n)
                .map(|_| (rng.uniform_u64(0, 49), rng.uniform_u64(1, 9)))
                .collect::<Vec<(u64, u64)>>()
        },
        |groups| {
            let mut q = EventQueue::new();
            let mut seq = 0usize;
            for &(t, n) in groups {
                for _ in 0..n {
                    q.push(SimTime::from_ns(t), seq);
                    seq += 1;
                }
            }
            let mut per_time: std::collections::HashMap<SimTime, Vec<usize>> = Default::default();
            while let Some(e) = q.pop() {
                per_time.entry(e.time).or_default().push(e.payload);
            }
            for (_, payloads) in per_time {
                let mut sorted = payloads.clone();
                sorted.sort_unstable();
                require_eq!(payloads, sorted, "same-timestamp events out of FIFO order");
            }
            Ok(())
        },
    );
}

/// SimTime saturating subtraction never underflows and addition is
/// commutative/associative on safe ranges.
#[test]
fn simtime_arithmetic_laws() {
    check(
        "simtime_arithmetic_laws",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            (
                rng.uniform_u64(0, u64::MAX / 4 - 1),
                rng.uniform_u64(0, u64::MAX / 4 - 1),
                rng.uniform_u64(0, u64::MAX / 4 - 1),
            )
        },
        |&(a, b, c)| {
            let (ta, tb, tc) = (
                SimTime::from_ns(a),
                SimTime::from_ns(b),
                SimTime::from_ns(c),
            );
            require_eq!(ta + tb, tb + ta);
            require_eq!((ta + tb) + tc, ta + (tb + tc));
            require!((ta - tb) + tb >= ta); // saturation only rounds up
            require!((ta - tb).as_ns() <= a);
            Ok(())
        },
    );
}

/// Scaling by a factor in [0, 2] keeps durations within linear bounds.
#[test]
fn simtime_scale_bounds() {
    check(
        "simtime_scale_bounds",
        CheckConfig::default(),
        |rng: &mut SimRng| (rng.uniform_u64(0, 999_999_999), rng.uniform_f64(0.0, 2.0)),
        |&(ns, factor)| {
            let t = SimTime::from_ns(ns);
            let scaled = t.scale(factor);
            let expected = ns as f64 * factor;
            require!(
                (scaled.as_ns() as f64 - expected).abs() <= 1.0,
                "scaled {} vs expected {expected}",
                scaled.as_ns()
            );
            Ok(())
        },
    );
}

/// Span shares over any window always sum to ~1 (or 0 for empty sets).
#[test]
fn span_shares_sum_to_one() {
    check(
        "span_shares_sum_to_one",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let n = rng.uniform_u64(1, 39) as usize;
            (0..n)
                .map(|_| {
                    (
                        rng.uniform_u64(0, 999),
                        rng.uniform_u64(1, 499),
                        rng.uniform_u64(0, 3),
                    )
                })
                .collect::<Vec<(u64, u64, u64)>>()
        },
        |spans| {
            let mut set = SpanSet::new();
            for &(start, len, owner) in spans {
                // Shrinking can drive `len` to 0; zero-length spans are
                // outside the generator's contract.
                let len = len.max(1);
                set.open(owner, SimTime::from_ns(start));
                set.close(owner, SimTime::from_ns(start + len));
            }
            let from = SimTime::ZERO;
            let to = SimTime::from_ns(2000);
            let total: f64 = (0..4).map(|o| set.share_in(o, from, to)).sum();
            require!(
                total == 0.0 || (total - 1.0).abs() < 1e-9,
                "shares sum {total}"
            );
            Ok(())
        },
    );
}
