//! Property-based tests for the simulation engine's core invariants,
//! running on the in-tree `flep-check` harness.

use flep_sim_core::check::{check, CheckConfig};
use flep_sim_core::{require, require_eq, EventQueue, SimRng, SimTime, SpanSet};

/// Events always pop in nondecreasing time order, regardless of the
/// insertion pattern.
#[test]
fn event_queue_pops_in_time_order() {
    check(
        "event_queue_pops_in_time_order",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let n = rng.uniform_u64(1, 199) as usize;
            (0..n)
                .map(|_| rng.uniform_u64(0, 999_999))
                .collect::<Vec<u64>>()
        },
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_ns(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some(e) = q.pop() {
                require!(e.time >= last, "queue went backwards");
                last = e.time;
                count += 1;
            }
            require_eq!(count, times.len());
            Ok(())
        },
    );
}

/// Events with equal timestamps pop in insertion (FIFO) order.
#[test]
fn event_queue_is_fifo_within_a_timestamp() {
    check(
        "event_queue_is_fifo_within_a_timestamp",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let n = rng.uniform_u64(1, 29) as usize;
            (0..n)
                .map(|_| (rng.uniform_u64(0, 49), rng.uniform_u64(1, 9)))
                .collect::<Vec<(u64, u64)>>()
        },
        |groups| {
            let mut q = EventQueue::new();
            let mut seq = 0usize;
            for &(t, n) in groups {
                for _ in 0..n {
                    q.push(SimTime::from_ns(t), seq);
                    seq += 1;
                }
            }
            let mut per_time: std::collections::HashMap<SimTime, Vec<usize>> = Default::default();
            while let Some(e) = q.pop() {
                per_time.entry(e.time).or_default().push(e.payload);
            }
            for (_, payloads) in per_time {
                let mut sorted = payloads.clone();
                sorted.sort_unstable();
                require_eq!(payloads, sorted, "same-timestamp events out of FIFO order");
            }
            Ok(())
        },
    );
}

/// The indexed 4-ary queue is observationally identical to a reference
/// `BinaryHeap` model under arbitrary push/pop/clear interleavings: same
/// lengths after every operation, same `(time, payload)` stream out.
#[test]
fn event_queue_matches_binary_heap_model() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    check(
        "event_queue_matches_binary_heap_model",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let n = rng.uniform_u64(1, 79) as usize;
            (0..n)
                .map(|_| (rng.uniform_u64(0, 99), rng.uniform_u64(0, 499)))
                .collect::<Vec<(u64, u64)>>()
        },
        |ops| {
            let mut q = EventQueue::new();
            // Model: a plain max-heap of `Reverse<(time, seq)>` with its
            // own monotonic sequence counter — exactly the seed
            // implementation this queue replaced.
            let mut model: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
            let mut next_seq = 0u64;
            let mut next_payload = 0u64;
            let pop_both = |q: &mut EventQueue<u64>,
                            model: &mut BinaryHeap<Reverse<(u64, u64, u64)>>|
             -> Result<(), flep_sim_core::check::Falsified> {
                let got = q.pop().map(|e| (e.time.as_ns(), e.payload));
                let want = model.pop().map(|Reverse((t, _, p))| (t, p));
                require_eq!(got, want, "pop mismatch");
                Ok(())
            };
            for &(op, arg) in ops {
                match op % 10 {
                    // Weighted: pushes dominate so the structures grow
                    // deep enough to exercise multi-level sifts.
                    0..=5 => {
                        let t = arg;
                        q.push(SimTime::from_ns(t), next_payload);
                        model.push(Reverse((t, next_seq, next_payload)));
                        next_seq += 1;
                        next_payload += 1;
                    }
                    6..=8 => pop_both(&mut q, &mut model)?,
                    _ => {
                        q.clear();
                        model.clear();
                    }
                }
                require_eq!(q.len(), model.len(), "length diverged");
                require_eq!(
                    q.peek_time().map(|t| t.as_ns()),
                    model.peek().map(|Reverse((t, _, _))| *t),
                    "peek diverged"
                );
            }
            while !model.is_empty() || !q.is_empty() {
                pop_both(&mut q, &mut model)?;
            }
            Ok(())
        },
    );
}

/// The ladder backend, the 4-ary heap backend, and the self-calibrating
/// auto queue (which migrates heap → ladder mid-stream) are
/// observationally identical under adversarial interleavings: same
/// `(time, payload)` pop stream, same lengths, same peeks after every
/// operation.
///
/// Four generation regimes steer the ladder through its hard paths:
/// same-timestamp pileups (FIFO tie-breaking carries all ordering),
/// narrow burst windows (buckets overflow `SPAWN_THRESHOLD` and spill
/// into finer rungs; pushes below the promoted bottom hit the
/// bottom-overflow rule), and timestamps hugging `u64::MAX` (rung edges
/// cross the epoch boundary and must not saturate).
#[test]
fn ladder_and_heap_backends_are_observationally_identical() {
    check(
        "ladder_and_heap_backends_are_observationally_identical",
        CheckConfig {
            cases: 128,
            ..CheckConfig::default()
        },
        |rng: &mut SimRng| {
            let regime = rng.uniform_u64(0, 3);
            let n = rng.uniform_u64(1, 299) as usize;
            let ops = (0..n)
                .map(|_| (rng.uniform_u64(0, 9), rng.uniform_u64(0, u64::MAX - 1)))
                .collect::<Vec<(u64, u64)>>();
            (regime, ops)
        },
        |&(regime, ref ops)| {
            let time_of = |raw: u64| -> u64 {
                match regime {
                    // Wide span: rebuilt rungs calibrate a coarse width.
                    0 => raw % 1_000_000,
                    // Same-instant pileups: pure FIFO tie-breaking.
                    1 => raw % 4,
                    // Narrow bursts: bucket spills + bottom overflow.
                    2 => raw % 600,
                    // Epoch edge: rung windows reach past u64::MAX.
                    _ => u64::MAX - raw % 96,
                }
            };
            let mut queues = [
                EventQueue::new(),
                EventQueue::new_heap(),
                EventQueue::new_ladder(),
            ];
            let mut payload = 0u64;
            for &(op, raw) in ops {
                match op {
                    // Weighted toward pushes so queues get deep enough to
                    // trigger auto-migration (64-push window) and spills.
                    0..=6 => {
                        let t = SimTime::from_ns(time_of(raw));
                        for q in &mut queues {
                            q.push(t, payload);
                        }
                        payload += 1;
                    }
                    7..=8 => {
                        let [a, h, l] = &mut queues;
                        let pops = [a.pop(), h.pop(), l.pop()]
                            .map(|e| e.map(|e| (e.time.as_ns(), e.payload)));
                        require_eq!(pops[0], pops[1], "auto vs heap pop diverged");
                        require_eq!(pops[1], pops[2], "heap vs ladder pop diverged");
                    }
                    _ => {
                        for q in &mut queues {
                            q.clear();
                        }
                    }
                }
                let lens = [queues[0].len(), queues[1].len(), queues[2].len()];
                require_eq!(lens[0], lens[1], "auto vs heap length diverged");
                require_eq!(lens[1], lens[2], "heap vs ladder length diverged");
                let peeks = [
                    queues[0].peek_time(),
                    queues[1].peek_time(),
                    queues[2].peek_time(),
                ];
                require_eq!(peeks[0], peeks[1], "auto vs heap peek diverged");
                require_eq!(peeks[1], peeks[2], "heap vs ladder peek diverged");
            }
            while !queues.iter().all(EventQueue::is_empty) {
                let [a, h, l] = &mut queues;
                let pops =
                    [a.pop(), h.pop(), l.pop()].map(|e| e.map(|e| (e.time.as_ns(), e.payload)));
                require_eq!(pops[0], pops[1], "auto vs heap drain diverged");
                require_eq!(pops[1], pops[2], "heap vs ladder drain diverged");
                require!(pops[0].is_some(), "drain loop with all queues empty");
            }
            Ok(())
        },
    );
}

/// SimTime saturating subtraction never underflows and addition is
/// commutative/associative on safe ranges.
#[test]
fn simtime_arithmetic_laws() {
    check(
        "simtime_arithmetic_laws",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            (
                rng.uniform_u64(0, u64::MAX / 4 - 1),
                rng.uniform_u64(0, u64::MAX / 4 - 1),
                rng.uniform_u64(0, u64::MAX / 4 - 1),
            )
        },
        |&(a, b, c)| {
            let (ta, tb, tc) = (
                SimTime::from_ns(a),
                SimTime::from_ns(b),
                SimTime::from_ns(c),
            );
            require_eq!(ta + tb, tb + ta);
            require_eq!((ta + tb) + tc, ta + (tb + tc));
            require!((ta - tb) + tb >= ta); // saturation only rounds up
            require!((ta - tb).as_ns() <= a);
            Ok(())
        },
    );
}

/// Scaling by a factor in [0, 2] keeps durations within linear bounds.
#[test]
fn simtime_scale_bounds() {
    check(
        "simtime_scale_bounds",
        CheckConfig::default(),
        |rng: &mut SimRng| (rng.uniform_u64(0, 999_999_999), rng.uniform_f64(0.0, 2.0)),
        |&(ns, factor)| {
            let t = SimTime::from_ns(ns);
            let scaled = t.scale(factor);
            let expected = ns as f64 * factor;
            require!(
                (scaled.as_ns() as f64 - expected).abs() <= 1.0,
                "scaled {} vs expected {expected}",
                scaled.as_ns()
            );
            Ok(())
        },
    );
}

/// Span shares over any window always sum to ~1 (or 0 for empty sets).
#[test]
fn span_shares_sum_to_one() {
    check(
        "span_shares_sum_to_one",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let n = rng.uniform_u64(1, 39) as usize;
            (0..n)
                .map(|_| {
                    (
                        rng.uniform_u64(0, 999),
                        rng.uniform_u64(1, 499),
                        rng.uniform_u64(0, 3),
                    )
                })
                .collect::<Vec<(u64, u64, u64)>>()
        },
        |spans| {
            let mut set = SpanSet::new();
            for &(start, len, owner) in spans {
                // Shrinking can drive `len` to 0; zero-length spans are
                // outside the generator's contract.
                let len = len.max(1);
                set.open(owner, SimTime::from_ns(start));
                set.close(owner, SimTime::from_ns(start + len));
            }
            let from = SimTime::ZERO;
            let to = SimTime::from_ns(2000);
            let total: f64 = (0..4).map(|o| set.share_in(o, from, to)).sum();
            require!(
                total == 0.0 || (total - 1.0).abs() < 1e-9,
                "shares sum {total}"
            );
            Ok(())
        },
    );
}
