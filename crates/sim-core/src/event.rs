//! The deterministic event queue.
//!
//! Two interchangeable backends implement the same exact `(time, seq)`
//! FIFO contract behind the sealed [`EventQueueImpl`] trait:
//!
//! * an *indexed 4-ary heap* ([`HeapCore`]): the heap array holds only
//!   16-byte packed keys, Floyd bottom-up sift-down with a branchless
//!   min-of-4 tournament — the general-purpose comparison-based baseline;
//! * a *ladder queue* ([`crate::ladder::LadderCore`]): a calendar-style
//!   bucketed structure that exploits the near-periodic event-interval
//!   distributions of polling-dominated simulations for amortized O(1)
//!   push/pop.
//!
//! The backend is chosen per queue: `FLEP_QUEUE=heap` or
//! `FLEP_QUEUE=ladder` forces one, and when the variable is unset a
//! one-shot self-calibration observes the first
//! [`CALIBRATION_WINDOW`] pushes and migrates to the ladder only when the
//! pending set is deep enough to amortize bucket management. Both
//! backends order events *identically* — dispatch order is a pure
//! function of the push sequence — which is what keeps every golden
//! trace bit-identical whichever backend runs.
//!
//! Payloads never enter a backend: they are parked in a [`SoaSlab`]
//! arena (hot slot metadata packed in a parallel array, cold payloads
//! out-of-line) and addressed by the slot bits of the packed key, so the
//! sift/bucket hot paths move small `Copy` keys instead of full
//! `GpuEvent`/`SystemEvent` payloads.

use std::cmp::Ordering;
use std::sync::OnceLock;

use crate::ladder::LadderCore;
use crate::slab::SoaSlab;
use crate::SimTime;

/// One scheduled event: a timestamp, a tie-breaking sequence number, and the
/// user payload.
///
/// Entries compare so that the *earliest* time pops first and, among equal
/// times, the *first-scheduled* event pops first. This FIFO tie-break is what
/// makes the simulation deterministic independent of queue internals.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index, used as the tie-breaker.
    pub seq: u64,
    /// The payload handed to the world.
    pub payload: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap convention (as `BinaryHeap` expects); invert so the
        // earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Bits of the packed key word reserved for the slab slot; the remaining
/// 40 high bits hold the sequence number.
pub(crate) const SLOT_BITS: u32 = 24;
/// Mask extracting the slot from the packed word.
pub(crate) const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// The key circulating through a queue backend: everything ordering needs,
/// plus the payload's arena slot, packed into one `u128` — the timestamp
/// in the high 64 bits, `seq << SLOT_BITS | slot` in the low 64. 16 bytes
/// and `Copy`, so a 4-child heap group (or a ladder bucket run) spans
/// contiguous cache lines; and because the `(time, seq)` lexicographic
/// order coincides with plain integer order on the packed word,
/// [`PackedKey::before`] is a single flat `u128` compare — no
/// short-circuit branch for the hot loops to mispredict.
///
/// Sequence numbers are unique, so ranking by the low word ranks exactly
/// by `seq` — the slot bits can never tip a comparison. The packing caps
/// a queue at 2^40 events pushed over its lifetime (40× the runtime's
/// entire event budget) and 2^24 simultaneously pending events (more
/// payloads than fit in memory); both are asserted in
/// [`EventQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedKey(pub(crate) u128);

impl PackedKey {
    #[inline]
    pub(crate) fn new(time: SimTime, seq: u64, slot: u32) -> Self {
        PackedKey(u128::from(time.as_ns()) << 64 | u128::from(seq << SLOT_BITS | u64::from(slot)))
    }

    /// Min order: earliest time first, FIFO within a timestamp.
    #[inline]
    #[must_use]
    pub fn before(&self, other: &PackedKey) -> bool {
        self.0 < other.0
    }

    /// The event's timestamp.
    #[inline]
    #[must_use]
    pub fn time(self) -> SimTime {
        SimTime::from_ns((self.0 >> 64) as u64)
    }

    /// The raw nanosecond timestamp (the ladder's bucket math works on
    /// integers).
    #[inline]
    #[must_use]
    pub fn time_ns(self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// The tie-breaking sequence number.
    #[inline]
    #[must_use]
    pub fn seq(self) -> u64 {
        (self.0 as u64) >> SLOT_BITS
    }

    /// The payload's arena slot.
    #[inline]
    #[must_use]
    pub fn slot(self) -> u32 {
        (self.0 as u64 & SLOT_MASK) as u32
    }
}

pub(crate) mod sealed {
    /// Seals [`super::EventQueueImpl`]: the set of queue backends is a
    /// closed implementation detail of this crate, so the exact-ordering
    /// contract can be enforced by the in-tree property suites rather
    /// than asked of downstream implementors.
    pub trait Sealed {}
}

/// The contract every event-queue backend implements: a priority queue of
/// [`PackedKey`]s with *exact* `(time, seq)` min ordering — `pop_min`
/// returns keys in strictly increasing `u128` order among those pending.
///
/// This trait is sealed; the two implementations ([`HeapCore`] and the
/// ladder queue) live in this crate and are proven equivalent by a
/// flep-check property suite. It exists so the backends stay honest about
/// sharing one interface (and one test battery) rather than growing
/// divergent semantics.
pub trait EventQueueImpl: sealed::Sealed {
    /// Inserts a key.
    fn push_key(&mut self, key: PackedKey);
    /// Removes and returns the minimum key, if any.
    fn pop_min(&mut self) -> Option<PackedKey>;
    /// The minimum key without removing it. O(1) on both backends.
    fn min_key(&self) -> Option<PackedKey>;
    /// Number of pending keys.
    fn len(&self) -> usize;
    /// True when no keys are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drops all pending keys, keeping allocations for reuse.
    fn clear(&mut self);
}

/// The branching factor. Quaternary is the sweet spot for small keys:
/// half the depth of a binary heap (fewer cache-missing levels on the
/// sift path) while the 4-child comparison still fits in one cache line.
const ARITY: usize = 4;

/// The indexed 4-ary heap backend: the ablation baseline, and the right
/// choice for shallow or irregular queues where bucket management cannot
/// amortize.
#[derive(Debug, Clone, Default)]
pub struct HeapCore {
    /// The 4-ary min-heap of keys.
    heap: Vec<PackedKey>,
}

impl HeapCore {
    /// Creates an empty heap.
    #[must_use]
    pub fn new() -> Self {
        HeapCore { heap: Vec::new() }
    }

    /// Restores the heap property upward from `idx` after a push.
    fn sift_up(&mut self, mut idx: usize) {
        let key = self.heap[idx];
        while idx > 0 {
            let parent = (idx - 1) / ARITY;
            if !key.before(&self.heap[parent]) {
                break;
            }
            self.heap[idx] = self.heap[parent];
            idx = parent;
        }
        self.heap[idx] = key;
    }

    /// Re-inserts `key` (the displaced last leaf) at the root after a pop,
    /// restoring the heap property.
    ///
    /// Uses Floyd's bottom-up variant (the same trick `std::BinaryHeap`
    /// plays): walk a hole from the root to a leaf choosing the smallest
    /// child at each level *without* comparing against `key`, then bubble
    /// `key` back up from the leaf. `key` came from the bottom of the
    /// heap, so it almost always belongs near the bottom — the bubble-up
    /// is typically zero or one comparison, and the walk down saves one
    /// comparison-and-branch per level over the textbook top-down sift.
    fn sift_down_from_root(&mut self, key: PackedKey) {
        let len = self.heap.len();
        let mut idx = 0;
        loop {
            let first_child = idx * ARITY + 1;
            if first_child + ARITY <= len {
                // Full fan-out (every level but the last): an unrolled
                // min-of-4 tournament over flat u128 keys, which the
                // backend lowers to data-independent selects instead of
                // four unpredictable branches.
                let (k0, k1) = (self.heap[first_child], self.heap[first_child + 1]);
                let (k2, k3) = (self.heap[first_child + 2], self.heap[first_child + 3]);
                let (i01, k01) = if k1.before(&k0) {
                    (first_child + 1, k1)
                } else {
                    (first_child, k0)
                };
                let (i23, k23) = if k3.before(&k2) {
                    (first_child + 3, k3)
                } else {
                    (first_child + 2, k2)
                };
                let (best, best_key) = if k23.before(&k01) {
                    (i23, k23)
                } else {
                    (i01, k01)
                };
                self.heap[idx] = best_key;
                idx = best;
            } else if first_child < len {
                // Ragged last level: at most three children.
                let mut best = first_child;
                for child in first_child + 1..len {
                    if self.heap[child].before(&self.heap[best]) {
                        best = child;
                    }
                }
                self.heap[idx] = self.heap[best];
                idx = best;
            } else {
                break;
            }
        }
        self.heap[idx] = key;
        self.sift_up(idx);
    }
}

impl sealed::Sealed for HeapCore {}

impl EventQueueImpl for HeapCore {
    fn push_key(&mut self, key: PackedKey) {
        self.heap.push(key);
        self.sift_up(self.heap.len() - 1);
    }

    fn pop_min(&mut self) -> Option<PackedKey> {
        let head = *self.heap.first()?;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.sift_down_from_root(last);
        }
        Some(head)
    }

    fn min_key(&self) -> Option<PackedKey> {
        self.heap.first().copied()
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Pushes observed before the one-shot self-calibration decides on a
/// backend (see [`EventQueue::new`]).
pub const CALIBRATION_WINDOW: u32 = 64;

/// Pending-set depth at the calibration point above which the ladder's
/// bucket management amortizes and the queue migrates to it. Below this
/// the heap's ~log4 sift of a handful of keys is already cheaper than
/// maintaining rungs.
const LADDER_DEPTH_THRESHOLD: usize = 48;

/// Default ladder bucket-width exponent (2^9 ns = 512 ns) used when a
/// queue is forced to `ladder` before any intervals have been observed.
/// The ladder recalibrates its width from the live key span at every rung
/// rebuild, so this seed only shapes the very first rung.
const DEFAULT_LADDER_SHIFT: u32 = 9;

/// A forced backend choice from the `FLEP_QUEUE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ForcedBackend {
    Heap,
    Ladder,
}

/// Parses `FLEP_QUEUE` once per process: `heap`/`ladder` force a backend,
/// unset (or empty) selects self-calibration, anything else warns on
/// stderr and falls back to self-calibration.
fn forced_backend() -> Option<ForcedBackend> {
    static CHOICE: OnceLock<Option<ForcedBackend>> = OnceLock::new();
    *CHOICE.get_or_init(|| match std::env::var("FLEP_QUEUE") {
        Ok(v) if v == "heap" => Some(ForcedBackend::Heap),
        Ok(v) if v == "ladder" => Some(ForcedBackend::Ladder),
        Ok(v) if v.is_empty() => None,
        Ok(v) => {
            eprintln!("warning: FLEP_QUEUE={v:?} is not \"heap\" or \"ladder\"; self-calibrating");
            None
        }
        Err(_) => None,
    })
}

/// The active backend, including the pre-decision calibration state.
#[derive(Debug, Clone)]
enum Backend {
    /// The 4-ary heap (forced, or chosen by calibration).
    Heap(HeapCore),
    /// The ladder queue (forced, or chosen by calibration).
    Ladder(LadderCore),
    /// Still observing: runs on the heap, tracking the pushed-time span.
    /// After [`CALIBRATION_WINDOW`] pushes it becomes `Heap` or `Ladder`.
    Calibrating {
        /// The provisional heap holding the observed pushes.
        heap: HeapCore,
        /// Pushes observed so far.
        pushes: u32,
        /// Earliest pushed timestamp (ns) in the window.
        min_t: u64,
        /// Latest pushed timestamp (ns) in the window.
        max_t: u64,
    },
}

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking.
///
/// # Example
///
/// ```
/// use flep_sim_core::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(2), "late");
/// q.push(SimTime::from_us(1), "early");
/// q.push(SimTime::from_us(1), "early-second");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend,
    /// Parked payloads, addressed by [`PackedKey::slot`].
    payloads: SoaSlab<E>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the backend `FLEP_QUEUE` selects; with
    /// the variable unset, a one-shot self-calibration observes the first
    /// [`CALIBRATION_WINDOW`] pushes on the heap and migrates to the
    /// ladder only when the pending set is deep enough to amortize bucket
    /// management. The migration replays the pending keys in sorted
    /// order, so the `(time, seq)` dispatch contract is unaffected by
    /// when — or whether — it happens.
    #[must_use]
    pub fn new() -> Self {
        let backend = match forced_backend() {
            Some(ForcedBackend::Heap) => Backend::Heap(HeapCore::new()),
            Some(ForcedBackend::Ladder) => Backend::Ladder(LadderCore::new(DEFAULT_LADDER_SHIFT)),
            None => Backend::Calibrating {
                heap: HeapCore::new(),
                pushes: 0,
                min_t: u64::MAX,
                max_t: 0,
            },
        };
        EventQueue {
            backend,
            payloads: SoaSlab::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue pinned to the 4-ary heap backend,
    /// regardless of `FLEP_QUEUE` — the ablation baseline.
    #[must_use]
    pub fn new_heap() -> Self {
        EventQueue {
            backend: Backend::Heap(HeapCore::new()),
            payloads: SoaSlab::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue pinned to the ladder backend, regardless of
    /// `FLEP_QUEUE`.
    #[must_use]
    pub fn new_ladder() -> Self {
        EventQueue {
            backend: Backend::Ladder(LadderCore::new(DEFAULT_LADDER_SHIFT)),
            payloads: SoaSlab::new(),
            next_seq: 0,
        }
    }

    /// The backend currently running this queue: `"heap"`, `"ladder"`, or
    /// `"calibrating"` before the one-shot decision.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            Backend::Heap(_) => "heap",
            Backend::Ladder(_) => "ladder",
            Backend::Calibrating { .. } => "calibrating",
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.push_with_seq(time, seq, payload);
    }

    /// Schedules `payload` with an externally assigned sequence number.
    ///
    /// [`PartitionedQueue`](crate::PartitionedQueue) stamps one global
    /// counter across its partitions so the merged pop order reproduces a
    /// single flat queue's `(time, seq)` total order exactly. The local
    /// counter is bumped past `seq` so interleaving with plain [`push`]
    /// calls can never reuse a sequence number.
    ///
    /// [`push`]: EventQueue::push
    pub(crate) fn push_with_seq(&mut self, time: SimTime, seq: u64, payload: E) {
        self.next_seq = self.next_seq.max(seq + 1);
        let slot = self.payloads.insert(payload);
        debug_assert!(seq < 1 << (64 - SLOT_BITS), "event queue seq overflow");
        debug_assert!(u64::from(slot) <= SLOT_MASK, "event queue slot overflow");
        let key = PackedKey::new(time, seq, slot);
        match &mut self.backend {
            Backend::Heap(h) => h.push_key(key),
            Backend::Ladder(l) => l.push_key(key),
            Backend::Calibrating {
                heap,
                pushes,
                min_t,
                max_t,
            } => {
                heap.push_key(key);
                let t = time.as_ns();
                *min_t = (*min_t).min(t);
                *max_t = (*max_t).max(t);
                *pushes += 1;
                if *pushes >= CALIBRATION_WINDOW {
                    self.calibrate();
                }
            }
        }
    }

    /// The one-shot backend decision: deep pending set → migrate the keys
    /// (in sorted order, preserving `(time, seq)` exactly) into a ladder
    /// whose initial bucket width is seeded from the observed time span;
    /// shallow → stay on the heap. Deterministic: depends only on the
    /// pushed `(time, pop)` sequence, never on wall-clock state.
    fn calibrate(&mut self) {
        let Backend::Calibrating {
            heap, min_t, max_t, ..
        } = &mut self.backend
        else {
            unreachable!("calibrate is only invoked from the calibrating state");
        };
        if heap.len() < LADDER_DEPTH_THRESHOLD {
            let heap = std::mem::take(heap);
            self.backend = Backend::Heap(heap);
            return;
        }
        let span = max_t.saturating_sub(*min_t);
        let shift = LadderCore::shift_for_span(span);
        let mut sorted = Vec::with_capacity(heap.len());
        while let Some(k) = heap.pop_min() {
            sorted.push(k);
        }
        self.backend = Backend::Ladder(LadderCore::from_sorted(sorted, shift));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        let key = match &mut self.backend {
            Backend::Heap(h) => h.pop_min(),
            Backend::Ladder(l) => l.pop_min(),
            Backend::Calibrating { heap, .. } => heap.pop_min(),
        }?;
        Some(EventEntry {
            time: key.time(),
            seq: key.seq(),
            payload: self.payloads.remove(key.slot()),
        })
    }

    /// Removes and returns the earliest event only if it fires strictly
    /// before `bound`; leaves the queue untouched otherwise.
    ///
    /// The epoch driver in `flep-runtime` drains each device stream up to
    /// (but not including) the next cross-device interaction timestamp
    /// with this.
    pub fn pop_before(&mut self, bound: SimTime) -> Option<EventEntry<E>> {
        if self.peek_time()? < bound {
            self.pop()
        } else {
            None
        }
    }

    /// The full packed `(time, seq, slot)` key of the earliest pending
    /// event — the merge cursor compares these to validate its entries.
    pub(crate) fn min_packed(&self) -> Option<PackedKey> {
        match &self.backend {
            Backend::Heap(h) => h.min_key(),
            Backend::Ladder(l) => l.min_key(),
            Backend::Calibrating { heap, .. } => heap.min_key(),
        }
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min_packed().map(PackedKey::time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Drops all pending events, keeping the sequence counter (so ordering
    /// guarantees still hold across a clear).
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(h) => h.clear(),
            Backend::Ladder(l) => l.clear(),
            Backend::Calibrating { heap, .. } => heap.clear(),
        }
        self.payloads.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(5), 0);
        q.push(SimTime::from_us(1), 1);
        q.push(SimTime::from_us(5), 2);
        q.push(SimTime::from_us(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_us(9), ());
        q.push(SimTime::from_us(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_us(4)));
    }

    #[test]
    fn clear_preserves_seq_monotonicity() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 'a');
        q.clear();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 'b');
        assert_eq!(q.pop().unwrap().seq, 1);
    }

    #[test]
    fn len_counts() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn keys_stay_small() {
        // The whole point of the key/payload split: the backends must move
        // 16-byte keys however large the payload type grows, so a 4-child
        // heap group spans exactly one 64-byte cache line.
        assert_eq!(std::mem::size_of::<PackedKey>(), 16);
    }

    #[test]
    fn packed_key_roundtrips_fields() {
        let k = PackedKey::new(SimTime::from_ns(7), 123_456, 789);
        assert_eq!(k.time(), SimTime::from_ns(7));
        assert_eq!(k.seq(), 123_456);
        assert_eq!(k.slot(), 789);
    }

    #[test]
    fn packed_key_order_matches_time_seq_order() {
        // Integer order on the packed word must coincide with (time, seq)
        // lexicographic order, whatever the slot bits say.
        let a = PackedKey::new(SimTime::from_ns(5), 9, SLOT_MASK as u32);
        let b = PackedKey::new(SimTime::from_ns(5), 10, 0);
        let c = PackedKey::new(SimTime::from_ns(6), 0, 0);
        assert!(a.before(&b) && b.before(&c) && a.before(&c));
        assert!(!b.before(&a) && !c.before(&b));
    }

    #[test]
    fn heap_property_survives_interleaved_churn() {
        // Deterministic push/pop interleaving exercising slot recycling.
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        for round in 0u64..50 {
            for i in 0..8 {
                q.push(SimTime::from_ns((round * 37 + i * 13) % 101), (round, i));
            }
            for _ in 0..6 {
                popped.push(q.pop().unwrap());
            }
        }
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), 400);
        // Within each drain the times must be nondecreasing; across the
        // whole run every (time, seq) pair must be unique and seq-ordered
        // within a timestamp.
        for w in popped.windows(2) {
            if w[0].time == w[1].time {
                assert!(w[0].seq != w[1].seq);
            }
        }
    }

    /// The same churn, pinned to each backend explicitly: both must
    /// produce the identical pop sequence.
    #[test]
    fn backends_agree_on_interleaved_churn() {
        let mut heap = EventQueue::new_heap();
        let mut ladder = EventQueue::new_ladder();
        let mut outs: Vec<Vec<(SimTime, u64)>> = Vec::new();
        for q in [&mut heap, &mut ladder] {
            let mut popped = Vec::new();
            for round in 0u64..80 {
                for i in 0..7 {
                    q.push(
                        SimTime::from_ns((round * 1_037 + i * 113) % 10_007),
                        (round, i),
                    );
                }
                for _ in 0..5 {
                    let e = q.pop().unwrap();
                    popped.push((e.time, e.seq));
                }
            }
            while let Some(e) = q.pop() {
                popped.push((e.time, e.seq));
            }
            outs.push(popped);
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(heap.backend_name(), "heap");
        assert_eq!(ladder.backend_name(), "ladder");
    }

    /// Self-calibration: a deep queue migrates to the ladder with the
    /// pending set intact and in order; a shallow one stays on the heap.
    #[test]
    fn calibration_picks_backend_by_depth() {
        // Deep: push the whole window without popping.
        let mut deep = EventQueue {
            backend: Backend::Calibrating {
                heap: HeapCore::new(),
                pushes: 0,
                min_t: u64::MAX,
                max_t: 0,
            },
            payloads: SoaSlab::new(),
            next_seq: 0,
        };
        for i in 0..CALIBRATION_WINDOW as u64 {
            deep.push(SimTime::from_ns(i * 977 % 4_001), i);
        }
        assert_eq!(deep.backend_name(), "ladder");
        let mut last = None;
        let mut n = 0;
        while let Some(e) = deep.pop() {
            let k = (e.time, e.seq);
            assert!(last.is_none_or(|p| p < k), "order broke across migration");
            last = Some(k);
            n += 1;
        }
        assert_eq!(n, CALIBRATION_WINDOW);

        // Shallow: pop right behind the pushes.
        let mut shallow = EventQueue {
            backend: Backend::Calibrating {
                heap: HeapCore::new(),
                pushes: 0,
                min_t: u64::MAX,
                max_t: 0,
            },
            payloads: SoaSlab::new(),
            next_seq: 0,
        };
        for i in 0..CALIBRATION_WINDOW as u64 + 8 {
            shallow.push(SimTime::from_ns(i), i);
            if i % 2 == 0 {
                shallow.pop();
            }
        }
        assert_eq!(shallow.backend_name(), "heap");
    }
}
