//! The deterministic event queue.
//!
//! Implemented as an *indexed 4-ary heap*: the heap array holds only
//! 16-byte `(time, seq·slot)` keys, while payloads are parked in a
//! [`Slab`] and addressed by slot. Sift-up/sift-down therefore move small
//! `Copy` keys instead of full `GpuEvent`/`SystemEvent` payloads, and the
//! 4-ary branching halves the tree depth relative to a binary heap —
//! together the hot push/pop path touches far less memory per event. The
//! `(time, seq)` FIFO tie-break is part of the public contract: dispatch
//! order is a pure function of the push sequence, independent of heap
//! internals, which is what keeps every golden trace bit-identical.

use std::cmp::Ordering;

use crate::{SimTime, Slab};

/// One scheduled event: a timestamp, a tie-breaking sequence number, and the
/// user payload.
///
/// Entries compare so that the *earliest* time pops first and, among equal
/// times, the *first-scheduled* event pops first. This FIFO tie-break is what
/// makes the simulation deterministic independent of heap internals.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index, used as the tie-breaker.
    pub seq: u64,
    /// The payload handed to the world.
    pub payload: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap convention (as `BinaryHeap` expects); invert so the
        // earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Bits of the packed key word reserved for the slab slot; the remaining
/// 40 high bits hold the sequence number.
const SLOT_BITS: u32 = 24;
/// Mask extracting the slot from the packed word.
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// The key stored in the heap array: everything ordering needs, plus the
/// payload's slab slot, packed into one `u128` — the timestamp in the
/// high 64 bits, `seq << SLOT_BITS | slot` in the low 64. 16 bytes and
/// `Copy`, so a 4-child group spans a single cache line; and because the
/// `(time, seq)` lexicographic order coincides with plain integer order
/// on the packed word, `before` is a single flat `u128` compare — no
/// short-circuit branch for the sift loops to mispredict.
///
/// Sequence numbers are unique, so ranking by the low word ranks exactly
/// by `seq` — the slot bits can never tip a comparison. The packing caps
/// a queue at 2^40 events pushed over its lifetime (40× the runtime's
/// entire event budget) and 2^24 simultaneously pending events (more
/// payloads than fit in memory); both are asserted in
/// [`EventQueue::push`].
#[derive(Debug, Clone, Copy)]
struct HeapKey(u128);

impl HeapKey {
    #[inline]
    fn new(time: SimTime, seq: u64, slot: u32) -> Self {
        HeapKey(u128::from(time.as_ns()) << 64 | u128::from(seq << SLOT_BITS | u64::from(slot)))
    }

    /// Min-heap order: earliest time first, FIFO within a timestamp.
    #[inline]
    fn before(&self, other: &HeapKey) -> bool {
        self.0 < other.0
    }

    #[inline]
    fn time(self) -> SimTime {
        SimTime::from_ns((self.0 >> 64) as u64)
    }

    #[inline]
    fn seq(self) -> u64 {
        (self.0 as u64) >> SLOT_BITS
    }

    #[inline]
    fn slot(self) -> u32 {
        (self.0 as u64 & SLOT_MASK) as u32
    }
}

/// The branching factor. Quaternary is the sweet spot for small keys:
/// half the depth of a binary heap (fewer cache-missing levels on the
/// sift path) while the 4-child comparison still fits in one cache line.
const ARITY: usize = 4;

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking.
///
/// # Example
///
/// ```
/// use flep_sim_core::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(2), "late");
/// q.push(SimTime::from_us(1), "early");
/// q.push(SimTime::from_us(1), "early-second");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The 4-ary min-heap of keys.
    heap: Vec<HeapKey>,
    /// Parked payloads, addressed by `HeapKey::slot`.
    payloads: Slab<E>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            payloads: Slab::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.payloads.insert(payload);
        debug_assert!(seq < 1 << (64 - SLOT_BITS), "event queue seq overflow");
        debug_assert!(u64::from(slot) <= SLOT_MASK, "event queue slot overflow");
        self.heap.push(HeapKey::new(time, seq, slot));
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        let head = *self.heap.first()?;
        let last = self.heap.pop().expect("heap is non-empty");
        if !self.heap.is_empty() {
            self.sift_down_from_root(last);
        }
        Some(EventEntry {
            time: head.time(),
            seq: head.seq(),
            payload: self.payloads.remove(head.slot()),
        })
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|k| k.time())
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the sequence counter (so ordering
    /// guarantees still hold across a clear).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.payloads.clear();
    }

    /// Restores the heap property upward from `idx` after a push.
    fn sift_up(&mut self, mut idx: usize) {
        let key = self.heap[idx];
        while idx > 0 {
            let parent = (idx - 1) / ARITY;
            if !key.before(&self.heap[parent]) {
                break;
            }
            self.heap[idx] = self.heap[parent];
            idx = parent;
        }
        self.heap[idx] = key;
    }

    /// Re-inserts `key` (the displaced last leaf) at the root after a pop,
    /// restoring the heap property.
    ///
    /// Uses Floyd's bottom-up variant (the same trick `std::BinaryHeap`
    /// plays): walk a hole from the root to a leaf choosing the smallest
    /// child at each level *without* comparing against `key`, then bubble
    /// `key` back up from the leaf. `key` came from the bottom of the
    /// heap, so it almost always belongs near the bottom — the bubble-up
    /// is typically zero or one comparison, and the walk down saves one
    /// comparison-and-branch per level over the textbook top-down sift.
    fn sift_down_from_root(&mut self, key: HeapKey) {
        let len = self.heap.len();
        let mut idx = 0;
        loop {
            let first_child = idx * ARITY + 1;
            if first_child + ARITY <= len {
                // Full fan-out (every level but the last): an unrolled
                // min-of-4 tournament over flat u128 keys, which the
                // backend lowers to data-independent selects instead of
                // four unpredictable branches.
                let (k0, k1) = (self.heap[first_child], self.heap[first_child + 1]);
                let (k2, k3) = (self.heap[first_child + 2], self.heap[first_child + 3]);
                let (i01, k01) = if k1.before(&k0) {
                    (first_child + 1, k1)
                } else {
                    (first_child, k0)
                };
                let (i23, k23) = if k3.before(&k2) {
                    (first_child + 3, k3)
                } else {
                    (first_child + 2, k2)
                };
                let (best, best_key) = if k23.before(&k01) {
                    (i23, k23)
                } else {
                    (i01, k01)
                };
                self.heap[idx] = best_key;
                idx = best;
            } else if first_child < len {
                // Ragged last level: at most three children.
                let mut best = first_child;
                for child in first_child + 1..len {
                    if self.heap[child].before(&self.heap[best]) {
                        best = child;
                    }
                }
                self.heap[idx] = self.heap[best];
                idx = best;
            } else {
                break;
            }
        }
        self.heap[idx] = key;
        self.sift_up(idx);
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(5), 0);
        q.push(SimTime::from_us(1), 1);
        q.push(SimTime::from_us(5), 2);
        q.push(SimTime::from_us(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_us(9), ());
        q.push(SimTime::from_us(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_us(4)));
    }

    #[test]
    fn clear_preserves_seq_monotonicity() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 'a');
        q.clear();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 'b');
        assert_eq!(q.pop().unwrap().seq, 1);
    }

    #[test]
    fn len_counts() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn keys_stay_small() {
        // The whole point of the key/payload split: sifting must move
        // 16-byte keys however large the payload type grows, so a 4-child
        // group spans exactly one 64-byte cache line.
        assert_eq!(std::mem::size_of::<HeapKey>(), 16);
    }

    #[test]
    fn packed_key_roundtrips_fields() {
        let k = HeapKey::new(SimTime::from_ns(7), 123_456, 789);
        assert_eq!(k.time(), SimTime::from_ns(7));
        assert_eq!(k.seq(), 123_456);
        assert_eq!(k.slot(), 789);
    }

    #[test]
    fn packed_key_order_matches_time_seq_order() {
        // Integer order on the packed word must coincide with (time, seq)
        // lexicographic order, whatever the slot bits say.
        let a = HeapKey::new(SimTime::from_ns(5), 9, SLOT_MASK as u32);
        let b = HeapKey::new(SimTime::from_ns(5), 10, 0);
        let c = HeapKey::new(SimTime::from_ns(6), 0, 0);
        assert!(a.before(&b) && b.before(&c) && a.before(&c));
        assert!(!b.before(&a) && !c.before(&b));
    }

    #[test]
    fn heap_property_survives_interleaved_churn() {
        // Deterministic push/pop interleaving exercising slot recycling.
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        for round in 0u64..50 {
            for i in 0..8 {
                q.push(SimTime::from_ns((round * 37 + i * 13) % 101), (round, i));
            }
            for _ in 0..6 {
                popped.push(q.pop().unwrap());
            }
        }
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), 400);
        // Within each drain the times must be nondecreasing; across the
        // whole run every (time, seq) pair must be unique and seq-ordered
        // within a timestamp.
        for w in popped.windows(2) {
            if w[0].time == w[1].time {
                assert!(w[0].seq != w[1].seq);
            }
        }
    }
}
