//! The deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// One scheduled event: a timestamp, a tie-breaking sequence number, and the
/// user payload.
///
/// Entries compare so that the *earliest* time pops first and, among equal
/// times, the *first-scheduled* event pops first. This FIFO tie-break is what
/// makes the simulation deterministic independent of heap internals.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index, used as the tie-breaker.
    pub seq: u64,
    /// The payload handed to the world.
    pub payload: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking.
///
/// # Example
///
/// ```
/// use flep_sim_core::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(2), "late");
/// q.push(SimTime::from_us(1), "early");
/// q.push(SimTime::from_us(1), "early-second");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        self.heap.pop()
    }

    /// The timestamp of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the sequence counter (so ordering
    /// guarantees still hold across a clear).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(5), 0);
        q.push(SimTime::from_us(1), 1);
        q.push(SimTime::from_us(5), 2);
        q.push(SimTime::from_us(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_us(9), ());
        q.push(SimTime::from_us(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_us(4)));
    }

    #[test]
    fn clear_preserves_seq_monotonicity() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 'a');
        q.clear();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 'b');
        assert_eq!(q.pop().unwrap().seq, 1);
    }

    #[test]
    fn len_counts() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
