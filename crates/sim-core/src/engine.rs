//! The simulation driver.

use crate::partition::PartitionedQueue;
use crate::{EventQueue, SimTime};

/// Where a [`Scheduler`] deposits follow-up events: the flat single queue
/// of a [`Simulation`], or the per-partition queues of a
/// [`PartitionedSimulation`](crate::PartitionedSimulation) (routed by the
/// simulation's partition function). Worlds never see the difference, so
/// one `World` impl runs unchanged under either driver.
#[derive(Debug)]
pub(crate) enum SchedSink<'a, E> {
    /// A flat single-queue simulation.
    Flat(&'a mut EventQueue<E>),
    /// A partitioned simulation: events route to `route(&payload)`.
    Partitioned {
        /// The merged per-partition queues.
        queue: &'a mut PartitionedQueue<E>,
        /// Maps a payload to its partition index.
        route: fn(&E) -> u32,
    },
}

/// A handle the [`World`] uses to schedule follow-up events while handling
/// the current one.
///
/// The scheduler knows the current virtual time, so worlds can schedule both
/// relative (`schedule_in`) and absolute (`schedule_at`) events.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    sink: SchedSink<'a, E>,
    stop_requested: &'a mut bool,
}

impl<'a, E> Scheduler<'a, E> {
    /// Builds a scheduler around `sink`; used by both simulation drivers.
    pub(crate) fn new(now: SimTime, sink: SchedSink<'a, E>, stop_requested: &'a mut bool) -> Self {
        Scheduler {
            now,
            sink,
            stop_requested,
        }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn push(&mut self, time: SimTime, payload: E) {
        match &mut self.sink {
            SchedSink::Flat(q) => q.push(time, payload),
            SchedSink::Partitioned { queue, route } => {
                let part = route(&payload);
                queue.push(part, time, payload);
            }
        }
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.push(self.now + delay, payload);
    }

    /// Schedules `payload` at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past: events may never be scheduled before
    /// the current instant, since that would break causality.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "cannot schedule event in the past: now={} requested={}",
            self.now,
            time
        );
        self.push(time, payload);
    }

    /// Requests that the simulation stop after the current event completes,
    /// leaving any still-pending events in the queue.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// The behaviour under simulation.
///
/// A world receives each popped event along with a [`Scheduler`] to emit
/// follow-ups. State lives inside the world; the engine owns only the clock
/// and the queue.
pub trait World {
    /// The event payload type circulating through the queue.
    type Event;

    /// Handles one event at virtual time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// What a single [`Simulation::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was dispatched to the world.
    Dispatched,
    /// The queue was empty; nothing happened.
    Idle,
    /// The world requested a stop during the dispatched event.
    Stopped,
}

/// How a budgeted run (see [`Simulation::run_with_budget`]) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained or the world stopped; the final virtual time.
    Completed(SimTime),
    /// The event budget ran out first — almost certainly a runaway event
    /// feedback loop. The fields are the abort-point diagnostics.
    BudgetExhausted {
        /// Virtual time when the budget ran out.
        now: SimTime,
        /// Events dispatched over the simulation's lifetime.
        dispatched: u64,
        /// Events still pending in the queue.
        pending: usize,
    },
}

/// A discrete-event simulation: a clock, a queue, and a [`World`].
///
/// # Example
///
/// See the crate-level example in [`crate`].
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    dispatched: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation around `world` with an empty queue at time zero.
    #[must_use]
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// The current virtual time (the timestamp of the last dispatched event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Shared access to the world.
    #[must_use]
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. to inspect or mutate state
    /// between runs).
    #[must_use]
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation and returns the world.
    #[must_use]
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event at an absolute time before or during the run.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current virtual time.
    pub fn schedule_at(&mut self, time: SimTime, payload: W::Event) {
        assert!(
            time >= self.now,
            "cannot schedule event in the past: now={} requested={}",
            self.now,
            time
        );
        self.queue.push(time, payload);
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pops and dispatches a single event.
    pub fn step(&mut self) -> StepOutcome {
        let Some(entry) = self.queue.pop() else {
            return StepOutcome::Idle;
        };
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        self.dispatched += 1;
        let mut stop = false;
        let mut sched = Scheduler::new(self.now, SchedSink::Flat(&mut self.queue), &mut stop);
        self.world.handle(entry.time, entry.payload, &mut sched);
        if stop {
            StepOutcome::Stopped
        } else {
            StepOutcome::Dispatched
        }
    }

    /// Runs until the queue is empty or the world requests a stop.
    ///
    /// Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        loop {
            match self.step() {
                StepOutcome::Dispatched => {}
                StepOutcome::Idle | StepOutcome::Stopped => return self.now,
            }
        }
    }

    /// Runs until the queue drains, the world stops, or `max_events` have
    /// been dispatched *by this call* — whichever comes first.
    ///
    /// Worlds that reschedule themselves unconditionally (a buggy policy
    /// ping-ponging preemptions, a looping job whose horizon never
    /// triggers) would make [`Simulation::run`] spin forever; the budget
    /// turns that hang into a diagnosable [`RunOutcome::BudgetExhausted`]
    /// carrying the virtual time, total dispatch count, and pending-event
    /// count at the point of abort.
    pub fn run_with_budget(&mut self, max_events: u64) -> RunOutcome {
        let mut spent: u64 = 0;
        loop {
            // Only an *exhausted budget with work still pending* is a
            // runaway; a run that spends exactly its budget and drains is
            // reported as completed.
            if spent >= max_events && !self.queue.is_empty() {
                return RunOutcome::BudgetExhausted {
                    now: self.now,
                    dispatched: self.dispatched,
                    pending: self.queue.len(),
                };
            }
            match self.step() {
                StepOutcome::Dispatched => spent += 1,
                StepOutcome::Idle | StepOutcome::Stopped => return RunOutcome::Completed(self.now),
            }
        }
    }

    /// Runs until `deadline` (inclusive), the queue drains, or the world
    /// stops. Events scheduled after the deadline stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => match self.step() {
                    StepOutcome::Dispatched => {}
                    StepOutcome::Idle | StepOutcome::Stopped => return self.now,
                },
                _ => return self.now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        chain: u32,
    }

    #[derive(Debug)]
    enum Ev {
        Mark(u32),
        Chain,
        StopNow,
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<'_, Ev>) {
            match ev {
                Ev::Mark(id) => self.seen.push((now, id)),
                Ev::Chain => {
                    self.chain += 1;
                    if self.chain < 5 {
                        sched.schedule_in(SimTime::from_us(1), Ev::Chain);
                    }
                }
                Ev::StopNow => sched.stop(),
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            chain: 0,
        }
    }

    #[test]
    fn dispatches_in_time_order() {
        let mut sim = Simulation::new(recorder());
        sim.schedule_at(SimTime::from_us(3), Ev::Mark(3));
        sim.schedule_at(SimTime::from_us(1), Ev::Mark(1));
        sim.schedule_at(SimTime::from_us(2), Ev::Mark(2));
        sim.run();
        let ids: Vec<u32> = sim.world().seen.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = Simulation::new(recorder());
        sim.schedule_at(SimTime::ZERO, Ev::Chain);
        let end = sim.run();
        assert_eq!(sim.world().chain, 5);
        assert_eq!(end, SimTime::from_us(4));
        assert_eq!(sim.dispatched(), 5);
    }

    #[test]
    fn stop_leaves_pending_events() {
        let mut sim = Simulation::new(recorder());
        sim.schedule_at(SimTime::from_us(1), Ev::StopNow);
        sim.schedule_at(SimTime::from_us(2), Ev::Mark(9));
        sim.run();
        assert_eq!(sim.pending(), 1);
        assert!(sim.world().seen.is_empty());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(recorder());
        sim.schedule_at(SimTime::from_us(1), Ev::Mark(1));
        sim.schedule_at(SimTime::from_us(10), Ev::Mark(10));
        sim.run_until(SimTime::from_us(5));
        assert_eq!(sim.world().seen.len(), 1);
        assert_eq!(sim.pending(), 1);
        // Resuming picks up the rest.
        sim.run();
        assert_eq!(sim.world().seen.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new(recorder());
        sim.schedule_at(SimTime::from_us(5), Ev::Mark(1));
        sim.run();
        sim.schedule_at(SimTime::from_us(1), Ev::Mark(2));
    }

    #[test]
    fn idle_step_reports_idle() {
        let mut sim = Simulation::new(recorder());
        assert_eq!(sim.step(), StepOutcome::Idle);
    }

    /// A world that reschedules itself forever: the budget must catch it.
    struct Runaway;
    impl World for Runaway {
        type Event = ();
        fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<'_, ()>) {
            sched.schedule_in(SimTime::from_ns(1), ());
            sched.schedule_in(SimTime::from_ns(2), ());
        }
    }

    #[test]
    fn budget_aborts_runaway_feedback_loop() {
        let mut sim = Simulation::new(Runaway);
        sim.schedule_at(SimTime::ZERO, ());
        match sim.run_with_budget(1_000) {
            RunOutcome::BudgetExhausted {
                now,
                dispatched,
                pending,
            } => {
                assert_eq!(dispatched, 1_000);
                assert!(now > SimTime::ZERO);
                // Each event schedules two more: the queue keeps growing.
                assert!(pending > 1_000, "pending {pending}");
            }
            RunOutcome::Completed(_) => panic!("runaway loop must exhaust the budget"),
        }
    }

    #[test]
    fn budget_completion_matches_plain_run() {
        let mut sim = Simulation::new(recorder());
        sim.schedule_at(SimTime::ZERO, Ev::Chain);
        assert_eq!(
            sim.run_with_budget(1_000_000),
            RunOutcome::Completed(SimTime::from_us(4))
        );
        assert_eq!(sim.dispatched(), 5);
    }

    /// The boundary case: spending *exactly* the budget and then draining
    /// is a completion, not an abort; one event over is an abort with the
    /// straggler still pending.
    #[test]
    fn budget_of_exactly_the_event_count_completes() {
        // The chain dispatches exactly 5 events.
        let mut sim = Simulation::new(recorder());
        sim.schedule_at(SimTime::ZERO, Ev::Chain);
        assert_eq!(
            sim.run_with_budget(5),
            RunOutcome::Completed(SimTime::from_us(4))
        );
        assert_eq!(sim.dispatched(), 5);

        // One short, and the last link stays queued.
        let mut sim = Simulation::new(recorder());
        sim.schedule_at(SimTime::ZERO, Ev::Chain);
        match sim.run_with_budget(4) {
            RunOutcome::BudgetExhausted {
                now,
                dispatched,
                pending,
            } => {
                assert_eq!(dispatched, 4);
                assert_eq!(pending, 1);
                assert_eq!(now, SimTime::from_us(3));
            }
            RunOutcome::Completed(_) => panic!("budget 4 cannot finish a 5-event chain"),
        }
    }

    #[test]
    fn zero_budget_aborts_immediately_with_pending_work() {
        let mut sim = Simulation::new(recorder());
        sim.schedule_at(SimTime::from_us(1), Ev::Mark(1));
        match sim.run_with_budget(0) {
            RunOutcome::BudgetExhausted {
                now,
                dispatched,
                pending,
            } => {
                assert_eq!((now, dispatched, pending), (SimTime::ZERO, 0, 1));
            }
            RunOutcome::Completed(_) => panic!("pending work under a zero budget must abort"),
        }
        // With nothing queued, even a zero budget completes idle.
        let mut idle = Simulation::new(recorder());
        assert_eq!(
            idle.run_with_budget(0),
            RunOutcome::Completed(SimTime::ZERO)
        );
    }

    #[test]
    fn budget_counts_only_this_call() {
        let mut sim = Simulation::new(recorder());
        for i in 0..4u64 {
            sim.schedule_at(SimTime::from_us(i), Ev::Mark(i as u32));
        }
        // First call spends its whole budget of 2...
        assert!(matches!(
            sim.run_with_budget(2),
            RunOutcome::BudgetExhausted { pending: 2, .. }
        ));
        // ...and a fresh call gets a fresh budget for the rest.
        assert!(matches!(sim.run_with_budget(2), RunOutcome::Completed(_)));
        assert_eq!(sim.world().seen.len(), 4);
    }
}
