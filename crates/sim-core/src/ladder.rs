//! The ladder-queue backend: a calendar-style bucketed priority queue.
//!
//! FLEP's simulated timeline is dominated by near-periodic polling events
//! (batch completions every `L · task_cost`, watchdog ticks every
//! `poll_interval`), which is the textbook best case for bucketed event
//! queues: most pushes land a roughly constant horizon ahead of the
//! clock, so dropping a key into the right time bucket is O(1) and the
//! sort work is deferred until a bucket's narrow window is actually
//! reached — by which point it holds only a handful of keys.
//!
//! # Structure
//!
//! Three tiers, in pop order (the classic ladder-queue layout):
//!
//! * **Bottom** — a sorted `Vec<u128>` of packed keys drained through a
//!   cursor; the head of the queue. `min_key` is a single indexed load.
//! * **Rungs** — a ladder of bucket arrays. Each rung divides a time
//!   window into [`NB`] equal buckets of width `2^shift` ns. When the
//!   bottom drains, the next non-empty bucket of the *finest* rung is
//!   sorted and promoted to become the new bottom. A bucket holding more
//!   than [`SPAWN_THRESHOLD`] keys is not sorted directly: it is *spilled*
//!   into a freshly spawned finer rung (width `2^(shift-6)`) first, so no
//!   single promotion ever sorts a large run — this is the "spill ladder"
//!   that bounds promotion cost even when a coarse bucket swallows a
//!   burst.
//! * **Top** — an unsorted overflow list for keys beyond the coarsest
//!   rung's window. When the ladder runs dry, a new coarsest rung is
//!   rebuilt from the top, recalibrating its start and bucket width from
//!   the *observed* key span (`shift_for_span`), so bucket widths track
//!   the live event-interval distribution with no tuning knob.
//!
//! # Exactness
//!
//! All ordering is integer order on the packed `(time << 64 | seq << 24 |
//! slot)` key word (see [`crate::PackedKey`]): within a bucket an
//! unstable sort of unique `u128`s reproduces `(time, seq)` FIFO order
//! *exactly*, so the ladder and the 4-ary heap are observationally
//! identical — a property pinned by the flep-check equivalence suite.
//!
//! Boundary arithmetic is carried in `u128` (`bottom_limit`, rung ends),
//! so timestamps at the far edge of the epoch (near `u64::MAX`) bucket
//! correctly instead of saturating — the epoch-rollover edge the property
//! suite drives explicitly.

use crate::event::{EventQueueImpl, PackedKey};

/// Buckets per rung (a power of two so bucket indexing is a shift).
const NB: usize = 64;
/// `log2(NB)`: each spawned rung refines bucket width by this many bits.
const NB_SHIFT: u32 = 6;
/// Promoting a bucket larger than this spills it into a finer rung
/// instead of sorting it wholesale.
const SPAWN_THRESHOLD: usize = 48;
/// Ladder depth cap. Width shrinks by `NB_SHIFT` bits per level, so 11
/// levels already reach 1 ns buckets from the widest possible rung; 16 is
/// unreachable headroom (same-timestamp pileups stop spawning at
/// `shift == 0` and sort instead, which FIFO-orders them by `seq`).
const MAX_RUNGS: usize = 16;
/// A live bottom run longer than this is spilled back into the ladder
/// (the classic ladder-queue bottom-overflow rule): without it, a push
/// pattern that keeps landing below `bottom_limit` degenerates into
/// insertion sort on an ever-growing array.
const BOTTOM_SPILL: usize = 128;
/// How much of the bottom's head survives a spill — the keys about to
/// pop anyway, so `min_key` stays a single load.
const BOTTOM_KEEP: usize = 32;

/// One rung: a window starting at `start`, divided into [`NB`] buckets of
/// width `2^shift` nanoseconds. Buckets before `base` are consumed.
#[derive(Debug, Clone, Default)]
struct Rung {
    /// Left edge (ns) of bucket 0.
    start: u64,
    /// Bucket width exponent: width = `1 << shift` ns.
    shift: u32,
    /// One-past-the-end of this rung's *owned* window, in `u128` so a
    /// rung reaching past `u64::MAX` does not saturate. May be tighter
    /// than `start + NB << shift`: a child rung is capped at its parent
    /// bucket's edge (and a bottom-spill rung at the old `bottom_limit`)
    /// so overlapping windows never claim each other's keys — a push
    /// landing in a finer rung while an earlier key for the same instant
    /// range still sits in a coarser one would pop out of order.
    end: u128,
    /// First unconsumed bucket index.
    base: usize,
    /// The buckets; unsorted packed keys.
    buckets: Vec<Vec<u128>>,
}

impl Rung {
    /// The pop boundary after consuming bucket `b`: everything earlier
    /// lives in the bottom (or was popped). Clamped to the owned window
    /// so a capped rung hands over exactly at its parent's edge.
    fn limit_after(&self, b: usize) -> u128 {
        (u128::from(self.start) + (((b as u128) + 1) << self.shift)).min(self.end)
    }

    /// The bucket holding timestamp `t` (caller guarantees `t` is inside
    /// the window).
    fn index_of(&self, t: u64) -> usize {
        ((t - self.start) >> self.shift) as usize
    }
}

/// The ladder-queue backend. See the module docs for the structure; the
/// public surface is the sealed [`EventQueueImpl`] contract.
#[derive(Debug, Clone)]
pub struct LadderCore {
    /// Sorted head run; `bottom[cursor..]` are live.
    bottom: Vec<u128>,
    /// First live index in `bottom`.
    cursor: usize,
    /// Every live key with `time < bottom_limit` is in the bottom. Kept
    /// in `u128` so the limit can exceed `u64::MAX` (epoch rollover).
    bottom_limit: u128,
    /// The ladder; `rungs[0]` is the coarsest, the last is draining.
    rungs: Vec<Rung>,
    /// Retired rungs kept so their bucket allocations are reused.
    spare: Vec<Rung>,
    /// Unsorted keys at/after the coarsest rung's end.
    top: Vec<u128>,
    /// Total live keys.
    len: usize,
    /// Bucket-width exponent for the first rung built before any span has
    /// been observed (seeded by queue self-calibration).
    init_shift: u32,
}

impl LadderCore {
    /// Creates an empty ladder whose first rung uses `2^init_shift` ns
    /// buckets (later rungs recalibrate from observed spans).
    #[must_use]
    pub fn new(init_shift: u32) -> Self {
        LadderCore {
            bottom: Vec::new(),
            cursor: 0,
            bottom_limit: 0,
            rungs: Vec::new(),
            spare: Vec::new(),
            top: Vec::new(),
            len: 0,
            init_shift: init_shift.min(63),
        }
    }

    /// Builds a ladder from keys already in ascending key order (the
    /// backend-migration path). The keys seed the top and the first
    /// bucket promotion runs immediately, so the rung geometry is
    /// calibrated from the migrated span and the pop sequence continues
    /// exactly where the previous backend stopped. (Dumping the keys
    /// into the bottom instead would leave `bottom_limit` past the whole
    /// set and turn every later push into insertion sort.)
    #[must_use]
    pub fn from_sorted(keys: Vec<PackedKey>, init_shift: u32) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0].before(&w[1])));
        let mut l = LadderCore::new(init_shift);
        l.len = keys.len();
        l.top = keys.into_iter().map(|k| k.0).collect();
        if l.len > 0 {
            l.refill_bottom();
        }
        l
    }

    /// The smallest bucket-width exponent whose [`NB`] buckets cover a
    /// key span of `span` nanoseconds.
    #[must_use]
    pub fn shift_for_span(span: u64) -> u32 {
        let bits = 64 - span.leading_zeros();
        bits.saturating_sub(NB_SHIFT)
    }

    /// A fresh (or recycled) rung at `start` with `2^shift` ns buckets,
    /// owning the window `[start, end)` (`end` at most `start + NB <<
    /// shift`; tighter when capped at a parent's edge).
    fn take_rung(&mut self, start: u64, shift: u32, end: u128) -> Rung {
        let mut r = self.spare.pop().unwrap_or_default();
        debug_assert!(r.buckets.iter().all(Vec::is_empty));
        debug_assert!(end <= u128::from(start) + ((NB as u128) << shift));
        r.buckets.resize_with(NB, Vec::new);
        r.start = start;
        r.shift = shift;
        r.end = end;
        r.base = 0;
        r
    }

    /// Refills the bottom from the ladder/top. Caller guarantees the
    /// bottom is empty and `len > 0`; on return the bottom is non-empty.
    fn refill_bottom(&mut self) {
        loop {
            let depth = self.rungs.len();
            let Some(r) = self.rungs.last_mut() else {
                // Ladder dry: rebuild the coarsest rung from the top,
                // recalibrating start and width from the observed span.
                debug_assert!(!self.top.is_empty(), "len > 0 but nothing is live");
                let mut min_t = u64::MAX;
                let mut max_t = 0u64;
                for &k in &self.top {
                    let t = PackedKey(k).time_ns();
                    min_t = min_t.min(t);
                    max_t = max_t.max(t);
                }
                let shift = if min_t == max_t {
                    self.init_shift
                } else {
                    Self::shift_for_span(max_t - min_t)
                };
                let end = u128::from(min_t) + ((NB as u128) << shift);
                let mut r = self.take_rung(min_t, shift, end);
                for k in self.top.drain(..) {
                    let idx = r.index_of(PackedKey(k).time_ns());
                    r.buckets[idx].push(k);
                }
                self.bottom_limit = u128::from(min_t);
                self.rungs.push(r);
                continue;
            };
            let Some(b) = (r.base..NB).find(|&b| !r.buckets[b].is_empty()) else {
                // Rung fully consumed; retire it (keeping its buckets'
                // capacity) and resume its parent — or the top.
                let dead = self.rungs.pop().expect("last_mut saw a rung");
                self.spare.push(dead);
                continue;
            };
            if r.shift > 0 && r.buckets[b].len() > SPAWN_THRESHOLD && depth < MAX_RUNGS {
                // Spill: too many keys to sort in one promotion. Spawn a
                // finer rung covering exactly this bucket's window and
                // redistribute; the loop then drains the child.
                let child_start = r.start + ((b as u64) << r.shift);
                let child_shift = r.shift.saturating_sub(NB_SHIFT);
                // The child owns exactly this bucket's window; a shift
                // below NB_SHIFT would otherwise make it wider than the
                // bucket and shadow the parent's unconsumed buckets.
                let child_end = r.limit_after(b);
                r.base = b + 1;
                let mut keys = std::mem::take(&mut r.buckets[b]);
                let mut child = self.take_rung(child_start, child_shift, child_end);
                for k in keys.drain(..) {
                    let idx = child.index_of(PackedKey(k).time_ns());
                    child.buckets[idx].push(k);
                }
                // Hand the emptied buffer back so the parent bucket keeps
                // its capacity for future pushes.
                self.rungs.last_mut().expect("parent rung exists").buckets[b] = keys;
                self.rungs.push(child);
                continue;
            }
            // Promote: sort this bucket's keys into the bottom. Unstable
            // sort on unique packed words is exact (time, seq) order.
            self.bottom.append(&mut r.buckets[b]);
            r.base = b + 1;
            self.bottom_limit = r.limit_after(b);
            self.bottom.sort_unstable();
            self.cursor = 0;
            return;
        }
    }

    /// Bottom overflow: re-buckets the tail of the live bottom run into
    /// a fresh finest rung so pushes below `bottom_limit` stay O(1)
    /// amortised. The split happens at a time boundary (equal-timestamp
    /// keys never straddle bottom and rung, preserving FIFO), and the
    /// new rung's window covers `[t_split, bottom_limit)` gaplessly so
    /// every future push below the old limit still has a home.
    fn spill_bottom(&mut self) {
        let pivot = self.cursor + BOTTOM_KEEP;
        let t_split = PackedKey(self.bottom[pivot]).time_ns();
        let live = &self.bottom[self.cursor..];
        let split = self.cursor + live.partition_point(|&k| PackedKey(k).time_ns() < t_split);
        if split == self.cursor {
            // The whole live run shares one timestamp: splitting would
            // empty the bottom. Leave it; the sorted insert is still
            // FIFO-exact, just not O(1).
            return;
        }
        // Width so that NB buckets cover [t_split, bottom_limit); the
        // u64 cap keeps the subtraction sane if the limit sits past the
        // epoch edge (the rung then covers every representable time).
        let span = u64::try_from(self.bottom_limit - 1 - u128::from(t_split)).unwrap_or(u64::MAX);
        let mut r = self.take_rung(t_split, Self::shift_for_span(span), self.bottom_limit);
        for k in self.bottom.drain(split..) {
            let idx = r.index_of(PackedKey(k).time_ns());
            r.buckets[idx].push(k);
        }
        self.rungs.push(r);
        self.bottom_limit = u128::from(t_split);
    }
}

impl crate::event::sealed::Sealed for LadderCore {}

impl EventQueueImpl for LadderCore {
    fn push_key(&mut self, key: PackedKey) {
        let t = key.time_ns();
        let tk = u128::from(t);
        self.len += 1;
        if self.len == 1 {
            // Empty queue: restart the bottom right at this key.
            self.bottom.clear();
            self.cursor = 0;
            self.bottom.push(key.0);
            self.bottom_limit = tk + 1;
            while let Some(dead) = self.rungs.pop() {
                self.spare.push(dead);
            }
            debug_assert!(self.top.is_empty());
            return;
        }
        if tk < self.bottom_limit {
            // Inside the already-promoted window (same-instant follow-ups
            // land here): binary-insert into the live run. The run is one
            // bucket wide, so the shift is short in steady state — and if
            // a push pattern keeps feeding it, the overflow rule spills
            // the tail back into the ladder before it grows quadratic.
            let live = &self.bottom[self.cursor..];
            let pos = self.cursor + live.partition_point(|&k| k < key.0);
            self.bottom.insert(pos, key.0);
            if self.bottom.len() - self.cursor > BOTTOM_SPILL && self.rungs.len() < MAX_RUNGS {
                self.spill_bottom();
            }
            return;
        }
        // Finest-to-coarsest: the first rung whose window contains the key
        // owns it (finer rungs cover earlier, already-opened windows, and
        // every rung's `end` is capped at its parent's edge, so windows
        // tile without shadowing).
        for r in self.rungs.iter_mut().rev() {
            if tk < r.end {
                let idx = r.index_of(t);
                debug_assert!(idx >= r.base, "push into a consumed bucket");
                r.buckets[idx].push(key.0);
                return;
            }
        }
        self.top.push(key.0);
    }

    fn pop_min(&mut self) -> Option<PackedKey> {
        if self.len == 0 {
            return None;
        }
        debug_assert!(self.cursor < self.bottom.len(), "bottom invariant broken");
        let k = self.bottom[self.cursor];
        self.cursor += 1;
        self.len -= 1;
        if self.cursor == self.bottom.len() {
            self.bottom.clear();
            self.cursor = 0;
            if self.len > 0 {
                self.refill_bottom();
            }
        }
        Some(PackedKey(k))
    }

    fn min_key(&self) -> Option<PackedKey> {
        // Invariant: the bottom is non-empty whenever the queue is.
        self.bottom.get(self.cursor).map(|&k| PackedKey(k))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.bottom.clear();
        self.cursor = 0;
        self.bottom_limit = 0;
        while let Some(mut dead) = self.rungs.pop() {
            for b in &mut dead.buckets {
                b.clear();
            }
            dead.base = 0;
            self.spare.push(dead);
        }
        self.top.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTime;

    fn key(t: u64, seq: u64) -> PackedKey {
        PackedKey::new(SimTime::from_ns(t), seq, 0)
    }

    /// Drains the ladder, asserting strict ascending key order.
    fn drain_sorted(l: &mut LadderCore) -> Vec<PackedKey> {
        let mut out = Vec::new();
        while let Some(k) = l.pop_min() {
            if let Some(prev) = out.last() {
                assert!(PackedKey::before(prev, &k), "pop order broke");
            }
            out.push(k);
        }
        assert_eq!(l.len(), 0);
        out
    }

    #[test]
    fn empty_ladder_behaves() {
        let mut l = LadderCore::new(9);
        assert_eq!(l.pop_min(), None);
        assert_eq!(l.min_key(), None);
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn periodic_pattern_round_trips() {
        let mut l = LadderCore::new(9);
        let mut seq = 0u64;
        // Steady-state timer pattern: hold 256 keys, pop-and-reschedule.
        for i in 0..256u64 {
            l.push_key(key(i * 700, seq));
            seq += 1;
        }
        let mut last = 0u64;
        for _ in 0..10_000 {
            let k = l.pop_min().unwrap();
            assert!(k.time_ns() >= last);
            last = k.time_ns();
            l.push_key(key(last + 256 * 700, seq));
            seq += 1;
        }
        assert_eq!(l.len(), 256);
        drain_sorted(&mut l);
    }

    #[test]
    fn same_timestamp_pileup_is_fifo() {
        // Thousands of keys at one instant: spawning stops at shift 0 and
        // the sort must order them by seq (FIFO).
        let mut l = LadderCore::new(3);
        l.push_key(key(5, 0));
        for s in 1..4_000u64 {
            l.push_key(key(1_000, s));
        }
        assert_eq!(l.pop_min().unwrap().seq(), 0);
        let out = drain_sorted(&mut l);
        let seqs: Vec<u64> = out.iter().map(|k| k.seq()).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn push_below_bottom_limit_lands_at_head() {
        let mut l = LadderCore::new(9);
        for s in 0..200u64 {
            l.push_key(key(10_000 + s * 13, s));
        }
        // Drain a few so the bottom window is open...
        for _ in 0..3 {
            l.pop_min();
        }
        // ...then push at (and below) the current head time.
        let head = l.min_key().unwrap().time_ns();
        l.push_key(key(head, 500));
        l.push_key(key(1, 501));
        assert_eq!(l.pop_min().unwrap().seq(), 501);
        drain_sorted(&mut l);
    }

    #[test]
    fn epoch_rollover_edge_buckets_correctly() {
        let mut l = LadderCore::new(9);
        l.push_key(key(u64::MAX, 2));
        l.push_key(key(u64::MAX - 1, 1));
        l.push_key(key(0, 0));
        l.push_key(key(u64::MAX, 3));
        let out = drain_sorted(&mut l);
        assert_eq!(
            out.iter().map(|k| k.seq()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // And again after going empty (reset path at the epoch edge).
        l.push_key(key(u64::MAX, 4));
        l.push_key(key(u64::MAX, 5));
        let out = drain_sorted(&mut l);
        assert_eq!(out.iter().map(|k| k.seq()).collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn burst_into_one_bucket_spawns_spill_rung() {
        // A coarse first rung with everything in one bucket: promotion
        // must spill into finer rungs, never sort the burst wholesale.
        let mut l = LadderCore::new(9);
        l.push_key(key(0, 0));
        // 10k keys spread over ~1ms, plus one far outlier so the rebuilt
        // rung is maximally coarse.
        for s in 1..10_000u64 {
            l.push_key(key(1_000_000 + (s * 97) % 1_000_000, s));
        }
        l.push_key(key(u64::MAX / 2, 10_000));
        let out = drain_sorted(&mut l);
        assert_eq!(out.len(), 10_001);
    }

    #[test]
    fn clear_resets_and_reuses() {
        let mut l = LadderCore::new(9);
        for s in 0..1_000u64 {
            l.push_key(key(s * 31, s));
        }
        l.pop_min();
        l.clear();
        assert_eq!(l.len(), 0);
        assert_eq!(l.min_key(), None);
        for s in 0..100u64 {
            l.push_key(key(s * 7, s));
        }
        assert_eq!(drain_sorted(&mut l).len(), 100);
    }
}
