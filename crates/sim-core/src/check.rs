//! `flep-check`: a minimal, fully deterministic property-testing harness.
//!
//! The workspace's property suites used to run on `proptest`; this module
//! replaces the thin slice actually needed with an in-tree harness so the
//! repository builds and tests offline with a bare toolchain:
//!
//! * **Seeded generation** — every case's input is generated from a
//!   [`SimRng`] derived from a fixed root seed, so `cargo test` output is
//!   bit-identical run to run.
//! * **Configurable case count** — [`CheckConfig::cases`] (default 64,
//!   override with `FLEP_CHECK_CASES`).
//! * **Shrinking** — on failure the input is shrunk via the [`Shrink`]
//!   trait, which halves/decrements scalars and prunes collections.
//! * **Reproducible failures** — the panic message names the per-case seed;
//!   re-run just that case with `FLEP_CHECK_REPRO=<seed>`.
//!
//! # Example
//!
//! ```
//! use flep_sim_core::check::{check, CheckConfig};
//! use flep_sim_core::require;
//!
//! check(
//!     "addition_commutes",
//!     CheckConfig::default(),
//!     |rng| (rng.uniform_u64(0, 1000), rng.uniform_u64(0, 1000)),
//!     |&(a, b)| {
//!         require!(a + b == b + a, "{a} + {b} not commutative");
//!         Ok(())
//!     },
//! );
//! ```

use std::fmt::Debug;

use crate::SimRng;

/// The default root seed: fixed so test output is identical across runs.
pub const DEFAULT_SEED: u64 = 0xF1EB_C4EC_0DE5_EED5;

/// The default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Configuration for one [`check`] run.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Root seed all case seeds derive from.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking a failure.
    pub max_shrink_steps: u32,
}

impl Default for CheckConfig {
    fn default() -> Self {
        let cases = std::env::var("FLEP_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        let seed = std::env::var("FLEP_CHECK_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(DEFAULT_SEED);
        CheckConfig {
            cases,
            seed,
            max_shrink_steps: 2_000,
        }
    }
}

impl CheckConfig {
    /// A config with an explicit case count (root seed stays the default).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        CheckConfig {
            cases,
            ..CheckConfig::default()
        }
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// A falsified (or discarded) property case.
///
/// Produced by the [`require!`](crate::require), [`require_eq!`](crate::require_eq) and
/// [`assume!`](crate::assume) macros; rarely constructed by hand.
#[derive(Debug, Clone)]
pub struct Falsified {
    /// Human-readable description of the violated requirement.
    pub message: String,
    pub(crate) discard: bool,
}

impl Falsified {
    /// A genuine property violation.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Falsified {
            message: message.into(),
            discard: false,
        }
    }

    /// A case that does not meet the property's preconditions and should be
    /// regenerated rather than counted as pass or fail.
    #[must_use]
    pub fn discard() -> Self {
        Falsified {
            message: "case discarded by assume!".into(),
            discard: true,
        }
    }
}

/// Result type of a property body.
pub type CaseResult = Result<(), Falsified>;

/// Asserts a condition inside a property body; on failure the surrounding
/// property returns a [`Falsified`](crate::check::Falsified) carrying the message.
#[macro_export]
macro_rules! require {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::check::Falsified::new(format!(
                "requirement failed: `{}` at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::check::Falsified::new(format!(
                "requirement failed: `{}` — {} (at {}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Asserts equality inside a property body, reporting both values on failure.
#[macro_export]
macro_rules! require_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::check::Falsified::new(format!(
                "requirement failed: `{} == {}`\n  left:  {:?}\n  right: {:?}\n  (at {}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::check::Falsified::new(format!(
                "requirement failed: `{} == {}` — {}\n  left:  {:?}\n  right: {:?}\n  (at {}:{})",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Discards the current case when a precondition does not hold; the harness
/// generates a replacement case instead of counting a pass.
#[macro_export]
macro_rules! assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::check::Falsified::discard());
        }
    };
}

/// Types that can propose strictly-simpler versions of themselves.
///
/// The default implementation proposes nothing, which is always sound: the
/// harness then reports the originally generated counterexample. Scalars
/// shrink toward zero by halving and decrementing; collections shrink by
/// dropping chunks and elements, then shrinking elements in place.
pub trait Shrink: Sized {
    /// Candidate simplifications, simplest first. Every candidate must be
    /// different from `self` and "smaller" under some well-founded order so
    /// shrinking terminates.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                for c in [0, *self / 2, self.saturating_sub(1)] {
                    if c != *self && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}

shrink_unsigned!(u8, u16, u32, u64, usize);

macro_rules! shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                for c in [0, *self / 2, *self - self.signum()] {
                    if c != *self && !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
        }
    )*};
}

shrink_signed!(i8, i16, i32, i64, isize);

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for c in [0.0, *self / 2.0, self.trunc()] {
            if c.is_finite() && c != *self && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        let n = self.chars().count();
        if n == 0 {
            return Vec::new();
        }
        let half: String = self.chars().take(n / 2).collect();
        let minus_one: String = self.chars().take(n - 1).collect();
        let mut out = vec![half];
        if !out.contains(&minus_one) {
            out.push(minus_one);
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

impl<T: Shrink + Clone + PartialEq> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Structural shrinks first: halves, then single-element removals.
        out.push(self[..n / 2].to_vec());
        out.push(self[n / 2..].to_vec());
        for i in 0..n {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Element-wise shrinks, one element at a time.
        for i in 0..n {
            for cand in self[i].shrink() {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out.retain(|v| v != self);
        out
    }
}

macro_rules! shrink_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )+};
}

shrink_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Derives the seed of case `i` from the root seed (SplitMix64-style mix so
/// neighbouring cases get unrelated streams).
#[must_use]
pub fn case_seed(root: u64, index: u64) -> u64 {
    let mut z = root
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `prop` against `cfg.cases` generated inputs, shrinking and panicking
/// with a reproducing seed on the first falsified case.
///
/// Set `FLEP_CHECK_REPRO=<seed>` (decimal or `0x`-hex) to re-run exactly one
/// case from that seed — the harness prints nothing and runs only it.
///
/// # Panics
///
/// Panics when the property is falsified (after shrinking), or when more
/// than 20× `cfg.cases` consecutive inputs are discarded by
/// [`assume!`](crate::assume).
pub fn check<T, G, P>(name: &str, cfg: CheckConfig, gen: G, prop: P)
where
    T: Debug + Clone + Shrink,
    G: Fn(&mut SimRng) -> T,
    P: Fn(&T) -> CaseResult,
{
    if let Some(seed) = std::env::var("FLEP_CHECK_REPRO")
        .ok()
        .and_then(|v| parse_seed(&v))
    {
        let mut rng = SimRng::seed_from(seed);
        let input = gen(&mut rng);
        match prop(&input) {
            Ok(()) => println!("[flep-check] {name}: seed {seed:#x} passes"),
            Err(f) if f.discard => println!("[flep-check] {name}: seed {seed:#x} discarded"),
            Err(f) => fail(name, &cfg, seed, 0, &prop, input, f),
        }
        return;
    }

    let mut passed: u32 = 0;
    let mut index: u64 = 0;
    let budget = u64::from(cfg.cases) * 20;
    while passed < cfg.cases {
        assert!(
            index < budget,
            "[flep-check] property '{name}': {passed}/{} cases passed but {index} inputs \
             were generated — assume! discards too much; loosen the generator",
            cfg.cases
        );
        let seed = case_seed(cfg.seed, index);
        index += 1;
        let mut rng = SimRng::seed_from(seed);
        let input = gen(&mut rng);
        match prop(&input) {
            Ok(()) => passed += 1,
            Err(f) if f.discard => {}
            Err(f) => fail(name, &cfg, seed, passed, &prop, input, f),
        }
    }
}

fn fail<T, P>(
    name: &str,
    cfg: &CheckConfig,
    seed: u64,
    passed_before: u32,
    prop: &P,
    input: T,
    first: Falsified,
) -> !
where
    T: Debug + Clone + Shrink,
    P: Fn(&T) -> CaseResult,
{
    let (shrunk, message, steps) = shrink_failure(prop, input, first, cfg.max_shrink_steps);
    panic!(
        "\n[flep-check] property '{name}' falsified after {passed_before} passing case(s)\n\
         reproducing seed: {seed:#018x}  (re-run just this case with FLEP_CHECK_REPRO={seed:#x})\n\
         counterexample (after {steps} shrink step(s)):\n  {shrunk:?}\n{message}\n"
    );
}

/// Greedily walks the shrink tree: keeps the first candidate that still
/// falsifies the property, restarting from it, until no candidate fails or
/// the step budget is exhausted.
fn shrink_failure<T, P>(prop: &P, input: T, first: Falsified, max_steps: u32) -> (T, String, u32)
where
    T: Debug + Clone + Shrink,
    P: Fn(&T) -> CaseResult,
{
    let mut best = input;
    let mut message = first.message;
    let mut steps: u32 = 0;
    'outer: loop {
        for cand in best.shrink() {
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if let Err(f) = prop(&cand) {
                if !f.discard {
                    best = cand;
                    message = f.message;
                    continue 'outer;
                }
            }
        }
        break;
    }
    (best, message, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check(
            "tautology",
            CheckConfig::with_cases(100),
            |rng| rng.uniform_u64(0, 100),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 100);
    }

    #[test]
    fn case_seeds_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..32).map(|i| case_seed(DEFAULT_SEED, i)).collect();
        let b: Vec<u64> = (0..32).map(|i| case_seed(DEFAULT_SEED, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
    }

    #[test]
    #[should_panic(expected = "reproducing seed")]
    fn failing_property_reports_seed() {
        check(
            "always_false",
            CheckConfig::with_cases(8),
            |rng| rng.uniform_u64(0, 100),
            |_| Err(Falsified::new("nope")),
        );
    }

    #[test]
    fn shrinking_reaches_a_minimal_scalar() {
        // Property: value < 50. Smallest counterexample is exactly 50.
        let (shrunk, _, _) = shrink_failure(
            &|&v: &u64| {
                if v < 50 {
                    Ok(())
                } else {
                    Err(Falsified::new("too big"))
                }
            },
            931_004,
            Falsified::new("too big"),
            10_000,
        );
        assert_eq!(shrunk, 50);
    }

    #[test]
    fn shrinking_prunes_vectors() {
        // Property: no element exceeds 9. Minimal counterexample: [10].
        let (shrunk, _, _) = shrink_failure(
            &|v: &Vec<u64>| {
                if v.iter().all(|&x| x <= 9) {
                    Ok(())
                } else {
                    Err(Falsified::new("element too big"))
                }
            },
            vec![3, 77, 12, 0, 41],
            Falsified::new("element too big"),
            10_000,
        );
        assert_eq!(shrunk, vec![10]);
    }

    #[test]
    fn assume_discards_do_not_count_as_passes() {
        let evaluated = std::cell::Cell::new(0u32);
        check(
            "assume_filter",
            CheckConfig::with_cases(16),
            |rng| rng.uniform_u64(0, 100),
            |&v| {
                assume!(v % 2 == 0);
                evaluated.set(evaluated.get() + 1);
                require!(v % 2 == 0);
                Ok(())
            },
        );
        assert_eq!(evaluated.get(), 16);
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let t = (4u64, 2u32);
        for cand in t.shrink() {
            let changed = usize::from(cand.0 != t.0) + usize::from(cand.1 != t.1);
            assert_eq!(changed, 1, "candidate {cand:?} changed {changed} fields");
        }
    }
}
