//! Deterministic discrete-event simulation engine underpinning the FLEP GPU
//! simulator.
//!
//! This crate provides the time base, event queue, simulation driver, and
//! deterministic random-number utilities shared by every other crate in the
//! workspace. It deliberately knows nothing about GPUs: the GPU device model
//! in `flep-gpu-sim` and the FLEP runtime in `flep-runtime` are both built as
//! "worlds" driven by this engine.
//!
//! # Design
//!
//! * [`SimTime`] is a nanosecond-resolution virtual clock value. All paper
//!   numbers are reported in microseconds; the [`SimTime::as_us`] accessor
//!   converts for reporting.
//! * [`EventQueue`] keeps small packed `(time, seq, slot)` keys in one of
//!   two exact-FIFO backends — an indexed 4-ary heap or a calendar-style
//!   ladder queue, selected by `FLEP_QUEUE` or one-shot self-calibration
//!   — with payloads parked in a [`SoaSlab`] arena and a monotonically
//!   increasing sequence number as the tie-breaker, which makes
//!   simulations fully deterministic even when many events share a
//!   timestamp (and bit-identical across backends).
//! * [`Simulation`] drives a user-supplied [`World`]: each popped event is
//!   handed to the world together with a [`Scheduler`] handle with which the
//!   world may schedule follow-up events.
//! * [`SimRng`] is a from-scratch seeded PRNG (SplitMix64-seeded
//!   xoshiro256\*\*) with the distributions the workloads need (uniform,
//!   normal, lognormal) so that every experiment is reproducible from a
//!   single `u64` seed with no third-party dependency.
//! * [`check`] is the in-tree `flep-check` property-testing harness the
//!   workspace's property suites run on, and [`json`] the minimal JSON
//!   emitter used by the experiment harness — both exist so the whole
//!   workspace builds and tests offline with a bare toolchain.
//!
//! # Example
//!
//! ```
//! use flep_sim_core::{Simulation, SimTime, World, Scheduler};
//!
//! struct Counter { fired: u32 }
//!
//! #[derive(Debug, Clone, PartialEq, Eq)]
//! enum Ev { Tick }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             sched.schedule_in(SimTime::from_us(10), Ev::Tick);
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.schedule_at(SimTime::ZERO, Ev::Tick);
//! sim.run();
//! assert_eq!(sim.world().fired, 3);
//! assert_eq!(sim.now(), SimTime::from_us(20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod engine;
mod event;
pub mod json;
mod ladder;
mod partition;
mod rng;
mod slab;
mod time;
mod trace;

pub use engine::{RunOutcome, Scheduler, Simulation, StepOutcome, World};
pub use event::{EventEntry, EventQueue, EventQueueImpl, HeapCore, PackedKey, CALIBRATION_WINDOW};
pub use ladder::LadderCore;
pub use partition::{PartitionedQueue, PartitionedSimulation};
pub use rng::SimRng;
pub use slab::{GenSlab, Slab, SoaSlab};
pub use time::SimTime;
pub use trace::{Span, SpanSet, TraceEvent, TraceLog};
