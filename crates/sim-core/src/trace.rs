//! Lightweight event tracing and span accounting.
//!
//! Experiments need two kinds of observability:
//!
//! * a timestamped log of interesting moments ([`TraceLog`] of
//!   [`TraceEvent`]s) used by tests to assert ordering properties, and
//! * closed intervals of "who held the resource when" ([`SpanSet`]) used to
//!   compute GPU-share curves (Fig. 13) and busy-time utilization.

use crate::SimTime;

/// One timestamped trace record with a free-form label and an integer tag
/// (typically a kernel or SM identifier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// What happened (stable, test-matchable label such as `"preempt"`).
    pub label: String,
    /// Which entity it happened to.
    pub tag: u64,
}

/// An append-only in-memory trace.
///
/// # Example
///
/// ```
/// use flep_sim_core::{TraceLog, SimTime};
/// let mut log = TraceLog::new();
/// log.record(SimTime::from_us(1), "launch", 0);
/// log.record(SimTime::from_us(5), "finish", 0);
/// assert_eq!(log.events_labeled("launch").count(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl TraceLog {
    /// Creates an enabled, empty log.
    #[must_use]
    pub fn new() -> Self {
        TraceLog {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled log: `record` becomes a no-op. Experiments that
    /// run millions of events use this to avoid unbounded memory growth.
    #[must_use]
    pub fn disabled() -> Self {
        TraceLog {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Appends an event (no-op when disabled).
    pub fn record(&mut self, at: SimTime, label: impl Into<String>, tag: u64) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                label: label.into(),
                tag,
            });
        }
    }

    /// All events, in insertion (and therefore time) order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over events with the given label.
    pub fn events_labeled<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.label == label)
    }

    /// The first event carrying `label`, if any.
    #[must_use]
    pub fn first_labeled(&self, label: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.label == label)
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A closed interval of virtual time attributed to an owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Interval start (inclusive).
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
    /// Owning entity (kernel id, SM id, ...).
    pub owner: u64,
}

impl Span {
    /// The length of the interval.
    #[must_use]
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }

    /// The part of this span that overlaps `[from, to)`.
    #[must_use]
    pub fn clipped(&self, from: SimTime, to: SimTime) -> SimTime {
        let s = self.start.max(from);
        let e = self.end.min(to);
        e.saturating_sub(s)
    }
}

/// A collection of ownership spans with helpers for share computation.
#[derive(Debug, Default, Clone)]
pub struct SpanSet {
    spans: Vec<Span>,
    open: Vec<(u64, SimTime)>,
}

impl SpanSet {
    /// Creates an empty span set.
    #[must_use]
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Marks `owner` as acquiring the resource at `at`. Re-opening an
    /// already-open owner is ignored (idempotent).
    pub fn open(&mut self, owner: u64, at: SimTime) {
        if self.open.iter().any(|&(o, _)| o == owner) {
            return;
        }
        self.open.push((owner, at));
    }

    /// Marks `owner` as releasing the resource at `at`, closing its span.
    /// Closing a never-opened owner is ignored.
    pub fn close(&mut self, owner: u64, at: SimTime) {
        if let Some(pos) = self.open.iter().position(|&(o, _)| o == owner) {
            let (_, start) = self.open.swap_remove(pos);
            if at > start {
                self.spans.push(Span {
                    start,
                    end: at,
                    owner,
                });
            }
        }
    }

    /// Closes every still-open span at `at` (end of experiment).
    pub fn close_all(&mut self, at: SimTime) {
        let owners: Vec<u64> = self.open.iter().map(|&(o, _)| o).collect();
        for owner in owners {
            self.close(owner, at);
        }
    }

    /// All closed spans.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total closed time attributed to `owner`.
    #[must_use]
    pub fn total_for(&self, owner: u64) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.owner == owner)
            .map(Span::duration)
            .sum()
    }

    /// Time attributed to `owner` within the window `[from, to)`.
    #[must_use]
    pub fn total_for_in(&self, owner: u64, from: SimTime, to: SimTime) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.owner == owner)
            .map(|s| s.clipped(from, to))
            .sum()
    }

    /// `owner`'s share of all closed time in `[from, to)`, in `[0, 1]`.
    #[must_use]
    pub fn share_in(&self, owner: u64, from: SimTime, to: SimTime) -> f64 {
        let total: SimTime = self.spans.iter().map(|s| s.clipped(from, to)).sum();
        self.total_for_in(owner, from, to).ratio(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::ZERO, "x", 0);
        assert!(log.is_empty());
    }

    #[test]
    fn label_filtering() {
        let mut log = TraceLog::new();
        log.record(SimTime::from_us(1), "a", 1);
        log.record(SimTime::from_us(2), "b", 2);
        log.record(SimTime::from_us(3), "a", 3);
        assert_eq!(log.events_labeled("a").count(), 2);
        assert_eq!(log.first_labeled("b").unwrap().tag, 2);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn span_duration_and_clip() {
        let s = Span {
            start: SimTime::from_us(10),
            end: SimTime::from_us(20),
            owner: 1,
        };
        assert_eq!(s.duration(), SimTime::from_us(10));
        assert_eq!(
            s.clipped(SimTime::from_us(15), SimTime::from_us(30)),
            SimTime::from_us(5)
        );
        assert_eq!(
            s.clipped(SimTime::from_us(30), SimTime::from_us(40)),
            SimTime::ZERO
        );
    }

    #[test]
    fn spanset_shares() {
        let mut set = SpanSet::new();
        set.open(1, SimTime::ZERO);
        set.close(1, SimTime::from_us(60));
        set.open(2, SimTime::from_us(60));
        set.close(2, SimTime::from_us(90));
        let share1 = set.share_in(1, SimTime::ZERO, SimTime::from_us(90));
        assert!((share1 - 2.0 / 3.0).abs() < 1e-9, "{share1}");
    }

    #[test]
    fn spanset_idempotent_open_ignored_close() {
        let mut set = SpanSet::new();
        set.open(1, SimTime::ZERO);
        set.open(1, SimTime::from_us(5)); // ignored
        set.close(1, SimTime::from_us(10));
        assert_eq!(set.total_for(1), SimTime::from_us(10));
        set.close(99, SimTime::from_us(10)); // never opened: ignored
        assert_eq!(set.spans().len(), 1);
    }

    #[test]
    fn close_all_flushes_open_spans() {
        let mut set = SpanSet::new();
        set.open(1, SimTime::ZERO);
        set.open(2, SimTime::from_us(3));
        set.close_all(SimTime::from_us(10));
        assert_eq!(set.total_for(1), SimTime::from_us(10));
        assert_eq!(set.total_for(2), SimTime::from_us(7));
    }

    #[test]
    fn zero_length_span_dropped() {
        let mut set = SpanSet::new();
        set.open(1, SimTime::from_us(4));
        set.close(1, SimTime::from_us(4));
        assert!(set.spans().is_empty());
    }
}
