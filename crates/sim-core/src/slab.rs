//! A slab allocator for event payloads.
//!
//! The indexed event queue (see [`crate::EventQueue`]) keeps only small
//! `(time, seq, slot)` keys in its heap array; the payloads themselves are
//! parked here and addressed by slot. A free-list threaded through the
//! vacant entries makes insert/remove O(1) with no per-event allocation
//! once the slab has grown to the queue's high-water mark.

/// A slot entry: either a parked payload or a link in the free list.
#[derive(Debug, Clone)]
enum Entry<T> {
    /// A live payload.
    Occupied(T),
    /// A vacant slot; holds the index of the next free slot (`u32::MAX`
    /// terminates the list).
    Vacant(u32),
}

/// Sentinel terminating the free list.
const NIL: u32 = u32::MAX;

/// A fixed-key slab: `insert` returns a `u32` slot that stays valid until
/// `remove`. Slots are recycled in LIFO order, so a steady-state
/// push/pop workload touches the same few cache lines over and over.
///
/// # Example
///
/// ```
/// use flep_sim_core::Slab;
/// let mut slab = Slab::new();
/// let a = slab.insert("first");
/// let b = slab.insert("second");
/// assert_eq!(slab.remove(a), "first");
/// // Slot `a` is recycled by the next insert.
/// assert_eq!(slab.insert("third"), a);
/// assert_eq!(slab.remove(b), "second");
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Head of the free list, or [`NIL`].
    free_head: u32,
    /// Number of occupied slots.
    len: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Creates an empty slab with room for `capacity` payloads before
    /// reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(capacity),
            free_head: NIL,
            len: 0,
        }
    }

    /// Parks `value` and returns its slot.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX - 1` slots (the event
    /// queue never holds that many pending events).
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free_head != NIL {
            let slot = self.free_head;
            match self.entries[slot as usize] {
                Entry::Vacant(next) => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at an occupied slot"),
            }
            self.entries[slot as usize] = Entry::Occupied(value);
            slot
        } else {
            let slot = u32::try_from(self.entries.len()).expect("slab overflow");
            assert!(slot != NIL, "slab overflow");
            self.entries.push(Entry::Occupied(value));
            slot
        }
    }

    /// Removes and returns the payload parked at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is vacant or out of bounds — slots come only from
    /// [`Slab::insert`], so this indicates queue corruption.
    pub fn remove(&mut self, slot: u32) -> T {
        let entry = std::mem::replace(
            &mut self.entries[slot as usize],
            Entry::Vacant(self.free_head),
        );
        match entry {
            Entry::Occupied(value) => {
                self.free_head = slot;
                self.len -= 1;
                value
            }
            Entry::Vacant(next) => {
                // Undo the replacement so the free list stays intact, then
                // report the misuse.
                self.entries[slot as usize] = Entry::Vacant(next);
                panic!("slab: remove of vacant slot {slot}");
            }
        }
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slots are occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every payload and resets the free list; capacity is kept.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.free_head = NIL;
        self.len = 0;
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        let c = slab.insert(30);
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.remove(b), 20);
        assert_eq!(slab.remove(a), 10);
        assert_eq!(slab.remove(c), 30);
        assert!(slab.is_empty());
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert('a');
        let b = slab.insert('b');
        slab.remove(a);
        slab.remove(b);
        // LIFO: the most recently freed slot is reused first.
        assert_eq!(slab.insert('c'), b);
        assert_eq!(slab.insert('d'), a);
        // No growth beyond the high-water mark.
        assert_eq!(slab.entries.len(), 2);
    }

    #[test]
    #[should_panic(expected = "remove of vacant slot")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        slab.remove(a);
    }

    #[test]
    fn clear_resets() {
        let mut slab = Slab::with_capacity(4);
        slab.insert(1);
        slab.insert(2);
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!(slab.insert(3), 0);
    }
}
