//! A slab allocator for event payloads.
//!
//! The indexed event queue (see [`crate::EventQueue`]) keeps only small
//! `(time, seq, slot)` keys in its heap array; the payloads themselves are
//! parked here and addressed by slot. A free-list threaded through the
//! vacant entries makes insert/remove O(1) with no per-event allocation
//! once the slab has grown to the queue's high-water mark.

/// A slot entry: either a parked payload or a link in the free list.
#[derive(Debug, Clone)]
enum Entry<T> {
    /// A live payload.
    Occupied(T),
    /// A vacant slot; holds the index of the next free slot (`u32::MAX`
    /// terminates the list).
    Vacant(u32),
}

/// Sentinel terminating the free list.
const NIL: u32 = u32::MAX;

/// A fixed-key slab: `insert` returns a `u32` slot that stays valid until
/// `remove`. Slots are recycled in LIFO order, so a steady-state
/// push/pop workload touches the same few cache lines over and over.
///
/// # Example
///
/// ```
/// use flep_sim_core::Slab;
/// let mut slab = Slab::new();
/// let a = slab.insert("first");
/// let b = slab.insert("second");
/// assert_eq!(slab.remove(a), "first");
/// // Slot `a` is recycled by the next insert.
/// assert_eq!(slab.insert("third"), a);
/// assert_eq!(slab.remove(b), "second");
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Head of the free list, or [`NIL`].
    free_head: u32,
    /// Number of occupied slots.
    len: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Creates an empty slab with room for `capacity` payloads before
    /// reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(capacity),
            free_head: NIL,
            len: 0,
        }
    }

    /// Parks `value` and returns its slot.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX - 1` slots (the event
    /// queue never holds that many pending events).
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free_head != NIL {
            let slot = self.free_head;
            match self.entries[slot as usize] {
                Entry::Vacant(next) => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at an occupied slot"),
            }
            self.entries[slot as usize] = Entry::Occupied(value);
            slot
        } else {
            let slot = u32::try_from(self.entries.len()).expect("slab overflow");
            assert!(slot != NIL, "slab overflow");
            self.entries.push(Entry::Occupied(value));
            slot
        }
    }

    /// Removes and returns the payload parked at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is vacant or out of bounds — slots come only from
    /// [`Slab::insert`], so this indicates queue corruption.
    pub fn remove(&mut self, slot: u32) -> T {
        let entry = std::mem::replace(
            &mut self.entries[slot as usize],
            Entry::Vacant(self.free_head),
        );
        match entry {
            Entry::Occupied(value) => {
                self.free_head = slot;
                self.len -= 1;
                value
            }
            Entry::Vacant(next) => {
                // Undo the replacement so the free list stays intact, then
                // report the misuse.
                self.entries[slot as usize] = Entry::Vacant(next);
                panic!("slab: remove of vacant slot {slot}");
            }
        }
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slots are occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every payload and resets the free list; capacity is kept.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.free_head = NIL;
        self.len = 0;
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

/// A slot entry of a [`GenSlab`]: payload-or-free-link plus the slot's
/// current generation.
#[derive(Debug, Clone)]
struct GenEntry<T> {
    /// Incremented on every removal, so stale keys miss.
    generation: u32,
    state: Entry<T>,
}

/// A generational slab: like [`Slab`], but keys carry the slot's
/// generation, so a key kept across a remove-and-reuse cycle reads as
/// *absent* instead of aliasing the slot's new occupant.
///
/// This is the state-table flavour of the slab: long-lived entities (the
/// GPU simulator's grids) hand out their keys to an embedding world that
/// may legitimately hold on to them past retirement — exactly the lookup
/// pattern `HashMap<Id, T>` gives, at array-index cost. Slots are recycled
/// in LIFO order like [`Slab`], so id assignment is deterministic.
///
/// # Example
///
/// ```
/// use flep_sim_core::GenSlab;
/// let mut slab = GenSlab::new();
/// let a = slab.insert("first");
/// assert_eq!(slab.get(a), Some(&"first"));
/// assert_eq!(slab.remove(a), Some("first"));
/// let b = slab.insert("second"); // reuses the slot...
/// assert_ne!(a, b);              // ...under a fresh generation
/// assert_eq!(slab.get(a), None, "stale key must not alias");
/// ```
#[derive(Debug, Clone, Default)]
pub struct GenSlab<T> {
    entries: Vec<GenEntry<T>>,
    free_head: u32,
    len: usize,
}

impl<T> GenSlab<T> {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        GenSlab {
            entries: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Packs a slot and generation into a key.
    fn key(slot: u32, generation: u32) -> u64 {
        (u64::from(generation) << 32) | u64::from(slot)
    }

    /// Splits a key into `(slot, generation)`.
    fn unpack(key: u64) -> (u32, u32) {
        (key as u32, (key >> 32) as u32)
    }

    /// Parks `value` and returns its key.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX - 1` slots.
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        if self.free_head != NIL {
            let slot = self.free_head;
            let entry = &mut self.entries[slot as usize];
            match entry.state {
                Entry::Vacant(next) => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at an occupied slot"),
            }
            entry.state = Entry::Occupied(value);
            Self::key(slot, entry.generation)
        } else {
            let slot = u32::try_from(self.entries.len()).expect("slab overflow");
            assert!(slot != NIL, "slab overflow");
            self.entries.push(GenEntry {
                generation: 0,
                state: Entry::Occupied(value),
            });
            Self::key(slot, 0)
        }
    }

    /// Removes and returns the payload at `key`, or `None` when the key is
    /// stale (already removed) or was never issued.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let (slot, generation) = Self::unpack(key);
        let entry = self.entries.get_mut(slot as usize)?;
        if entry.generation != generation || !matches!(entry.state, Entry::Occupied(_)) {
            return None;
        }
        let state = std::mem::replace(&mut entry.state, Entry::Vacant(self.free_head));
        entry.generation = entry.generation.wrapping_add(1);
        self.free_head = slot;
        self.len -= 1;
        match state {
            Entry::Occupied(value) => Some(value),
            Entry::Vacant(_) => unreachable!("checked occupied above"),
        }
    }

    /// The payload at `key`, or `None` for stale/foreign keys.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&T> {
        let (slot, generation) = Self::unpack(key);
        match self.entries.get(slot as usize) {
            Some(GenEntry {
                generation: g,
                state: Entry::Occupied(value),
            }) if *g == generation => Some(value),
            _ => None,
        }
    }

    /// Mutable access to the payload at `key`, or `None` for stale keys.
    #[must_use]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let (slot, generation) = Self::unpack(key);
        match self.entries.get_mut(slot as usize) {
            Some(GenEntry {
                generation: g,
                state: Entry::Occupied(value),
            }) if *g == generation => Some(value),
            _ => None,
        }
    }

    /// Iterates the occupied entries in slot order as `(key, &T)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            if let Entry::Occupied(value) = &e.state {
                Some((Self::key(i as u32, e.generation), value))
            } else {
                None
            }
        })
    }

    /// Iterates the occupied payloads in slot order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }

    /// Keeps only the entries for which `keep` returns true, freeing the
    /// rest (their keys become stale).
    pub fn retain(&mut self, mut keep: impl FnMut(u64, &mut T) -> bool) {
        for slot in 0..self.entries.len() as u32 {
            let entry = &mut self.entries[slot as usize];
            let retained = match &mut entry.state {
                Entry::Occupied(value) => keep(Self::key(slot, entry.generation), value),
                Entry::Vacant(_) => continue,
            };
            if !retained {
                entry.state = Entry::Vacant(self.free_head);
                entry.generation = entry.generation.wrapping_add(1);
                self.free_head = slot;
                self.len -= 1;
            }
        }
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slots are occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-slot marker in a [`SoaSlab`]'s packed metadata array: the slot is
/// occupied (its payload lives in the cold array).
const OCCUPIED: u32 = u32::MAX - 1;

/// A structure-of-arrays slab: the event queue's payload arena.
///
/// [`Slab`] stores an array of `payload-or-free-link` enums, so walking
/// the free list strides over payload-sized entries — for a fat event
/// enum that is a cache line (or more) per hop. `SoaSlab` splits the two
/// planes: the *hot* per-slot metadata (free-list link or the
/// [`OCCUPIED`] marker) lives in a packed parallel `u32` array that
/// allocation traffic touches exclusively, and the *cold* payloads sit
/// out-of-line in their own array, touched exactly twice per event (the
/// write at push, the move-out at pop).
///
/// Same contract as [`Slab`]: `insert` returns a `u32` slot valid until
/// `remove`, slots recycle in LIFO order (steady-state churn touches the
/// same few metadata words over and over), and removing a vacant slot
/// panics — the queue's corruption tripwire.
///
/// # Example
///
/// ```
/// use flep_sim_core::SoaSlab;
/// let mut slab = SoaSlab::new();
/// let a = slab.insert("first");
/// let b = slab.insert("second");
/// assert_eq!(slab.remove(a), "first");
/// // Slot `a` is recycled by the next insert.
/// assert_eq!(slab.insert("third"), a);
/// assert_eq!(slab.remove(b), "second");
/// ```
#[derive(Debug, Clone)]
pub struct SoaSlab<T> {
    /// Hot plane: per-slot free-list link, or [`OCCUPIED`].
    meta: Vec<u32>,
    /// Cold plane: the payloads, parallel to `meta`. `None` iff vacant.
    vals: Vec<Option<T>>,
    /// Head of the free list, or [`NIL`].
    free_head: u32,
    /// Number of occupied slots.
    len: usize,
}

impl<T> SoaSlab<T> {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        SoaSlab {
            meta: Vec::new(),
            vals: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Parks `value` and returns its slot.
    ///
    /// # Panics
    ///
    /// Panics if the arena would exceed `u32::MAX - 2` slots (the event
    /// queue never holds that many pending events).
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free_head != NIL {
            let slot = self.free_head;
            self.free_head = self.meta[slot as usize];
            self.meta[slot as usize] = OCCUPIED;
            self.vals[slot as usize] = Some(value);
            slot
        } else {
            let slot = u32::try_from(self.meta.len()).expect("slab overflow");
            assert!(slot < OCCUPIED, "slab overflow");
            self.meta.push(OCCUPIED);
            self.vals.push(Some(value));
            slot
        }
    }

    /// Removes and returns the payload parked at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is vacant or out of bounds — slots come only from
    /// [`SoaSlab::insert`], so this indicates queue corruption.
    pub fn remove(&mut self, slot: u32) -> T {
        assert!(
            self.meta.get(slot as usize) == Some(&OCCUPIED),
            "slab: remove of vacant slot {slot}"
        );
        self.meta[slot as usize] = self.free_head;
        self.free_head = slot;
        self.len -= 1;
        self.vals[slot as usize]
            .take()
            .expect("occupied slot holds a payload")
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slots are occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every payload and resets the free list; capacity is kept.
    pub fn clear(&mut self) {
        self.meta.clear();
        self.vals.clear();
        self.free_head = NIL;
        self.len = 0;
    }
}

impl<T> Default for SoaSlab<T> {
    fn default() -> Self {
        SoaSlab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        let c = slab.insert(30);
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.remove(b), 20);
        assert_eq!(slab.remove(a), 10);
        assert_eq!(slab.remove(c), 30);
        assert!(slab.is_empty());
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert('a');
        let b = slab.insert('b');
        slab.remove(a);
        slab.remove(b);
        // LIFO: the most recently freed slot is reused first.
        assert_eq!(slab.insert('c'), b);
        assert_eq!(slab.insert('d'), a);
        // No growth beyond the high-water mark.
        assert_eq!(slab.entries.len(), 2);
    }

    #[test]
    #[should_panic(expected = "remove of vacant slot")]
    fn double_remove_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        slab.remove(a);
    }

    #[test]
    fn clear_resets() {
        let mut slab = Slab::with_capacity(4);
        slab.insert(1);
        slab.insert(2);
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!(slab.insert(3), 0);
    }

    #[test]
    fn gen_slab_roundtrip_and_iteration() {
        let mut slab = GenSlab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        let c = slab.insert(30);
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.get(b), Some(&20));
        *slab.get_mut(b).unwrap() += 1;
        assert_eq!(
            slab.iter().map(|(_, &v)| v).collect::<Vec<_>>(),
            vec![10, 21, 30]
        );
        assert_eq!(slab.remove(b), Some(21));
        assert_eq!(slab.values().copied().collect::<Vec<_>>(), vec![10, 30]);
        assert_eq!(slab.remove(a), Some(10));
        assert_eq!(slab.remove(c), Some(30));
        assert!(slab.is_empty());
    }

    #[test]
    fn gen_slab_stale_keys_miss_after_reuse() {
        let mut slab = GenSlab::new();
        let a = slab.insert('a');
        assert_eq!(slab.remove(a), Some('a'));
        let b = slab.insert('b');
        // Same slot, new generation: the stale key must not alias.
        assert_eq!(a as u32, b as u32, "slot is recycled LIFO");
        assert_ne!(a, b);
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get_mut(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.get(b), Some(&'b'));
    }

    /// The generation counter is 32-bit and wraps: removing at generation
    /// `u32::MAX` recycles the slot at generation 0. A key from the
    /// wrapped (pre-wrap) generation still misses; the documented caveat
    /// is that a key from exactly 2^32 cycles ago becomes bit-identical
    /// to the fresh key (the ABA horizon of the scheme).
    #[test]
    fn gen_slab_stale_keys_miss_at_generation_wraparound() {
        let mut slab = GenSlab::new();
        let k0 = slab.insert("first");
        let (slot, g0) = GenSlab::<&str>::unpack(k0);
        assert_eq!(g0, 0);
        // Fast-forward the slot to the final generation, as if 2^32 - 1
        // remove/insert cycles had happened.
        slab.entries[slot as usize].generation = u32::MAX;
        let k_max = GenSlab::<&str>::key(slot, u32::MAX);
        assert_eq!(slab.get(k0), None, "pre-fast-forward key must be stale");
        assert_eq!(slab.get(k_max), Some(&"first"));
        // Removing at u32::MAX wraps the slot's generation to 0...
        assert_eq!(slab.remove(k_max), Some("first"));
        assert_eq!(slab.remove(k_max), None, "double remove must miss");
        assert_eq!(slab.get(k_max), None);
        // ...so the recycled slot re-issues generation 0: the new key is
        // bit-identical to the original, and the last pre-wrap key still
        // misses.
        let k_new = slab.insert("second");
        assert_eq!(k_new, k0, "wraparound re-issues the generation-0 key");
        assert_eq!(slab.get(k_max), None, "wrapped-generation key aliased");
        assert_eq!(slab.remove(k_max), None);
        assert_eq!(slab.get(k_new), Some(&"second"));
    }

    #[test]
    fn gen_slab_retain_frees_and_recycles() {
        let mut slab = GenSlab::new();
        let keys: Vec<u64> = (0..6).map(|i| slab.insert(i)).collect();
        slab.retain(|_, &mut v| v % 2 == 0);
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.values().copied().collect::<Vec<_>>(), vec![0, 2, 4]);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(slab.get(k).is_some(), i % 2 == 0, "key {i}");
        }
        // Freed slots are reused (LIFO: highest freed slot first) under
        // fresh generations.
        let n = slab.insert(9);
        assert_eq!(n as u32, 5);
        assert!(slab.get(keys[5]).is_none());
        assert_eq!(slab.get(n), Some(&9));
    }
}
