//! A minimal JSON document model and emitter.
//!
//! The experiment harness serializes its result rows to JSON so figures can
//! be regenerated and diffed without a plotting stack. The workspace is
//! hermetic (no third-party crates), so this module provides the thin slice
//! of serialization actually used: a [`JsonValue`] tree, a [`ToJson`] trait,
//! and a deterministic emitter. There is deliberately no parser and no
//! reflection — types opt in by building the tree explicitly, which keeps
//! the output format an explicit, reviewable contract.
//!
//! # Example
//!
//! ```
//! use flep_sim_core::json::{JsonValue, ToJson};
//!
//! struct Point { x: f64, y: f64 }
//!
//! impl ToJson for Point {
//!     fn to_json(&self) -> JsonValue {
//!         JsonValue::object([("x", self.x.to_json()), ("y", self.y.to_json())])
//!     }
//! }
//!
//! assert_eq!(
//!     Point { x: 1.5, y: -2.0 }.to_json().render(),
//!     r#"{"x":1.5,"y":-2.0}"#
//! );
//! ```

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer (emitted without a decimal point).
    UInt(u64),
    /// A finite float. Non-finite values render as `null` per JSON.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved so output is deterministic.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting each element.
    #[must_use]
    pub fn array<T: ToJson>(items: impl IntoIterator<Item = T>) -> Self {
        JsonValue::Array(items.into_iter().map(|v| v.to_json()).collect())
    }

    /// Renders the value as compact JSON (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest-roundtrip formatting is deterministic;
                    // force a decimal point so integral floats stay floats.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`JsonValue`]. The harness's result rows implement this
/// to define their on-disk format.
pub trait ToJson {
    /// Converts `self` into a JSON document.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

macro_rules! to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::UInt(u64::from(*self))
            }
        }
    )*};
}

to_json_uint!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> JsonValue {
        JsonValue::UInt(*self as u64)
    }
}

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Int(i64::from(*self))
            }
        }
    )*};
}

to_json_int!(i8, i16, i32, i64);

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            None => JsonValue::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl ToJson for crate::SimTime {
    /// Times serialize as integer nanoseconds — lossless and unit-explicit
    /// via the field name convention (`*_ns` keys in the harness rows).
    fn to_json(&self) -> JsonValue {
        JsonValue::UInt(self.as_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(true.to_json().render(), "true");
        assert_eq!(42u64.to_json().render(), "42");
        assert_eq!((-7i64).to_json().render(), "-7");
        assert_eq!(1.5f64.to_json().render(), "1.5");
        assert_eq!(2.0f64.to_json().render(), "2.0");
        assert_eq!(f64::NAN.to_json().render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            "a\"b\\c\nd\u{1}".to_json().render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn arrays_and_objects_preserve_order() {
        let v = JsonValue::object([
            ("b", 1u64.to_json()),
            ("a", JsonValue::array(vec![1u64, 2, 3])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[1,2,3]}"#);
    }

    #[test]
    fn rendering_is_deterministic() {
        let v = JsonValue::object([("x", 0.1f64.to_json()), ("y", (1.0f64 / 3.0).to_json())]);
        assert_eq!(v.render(), v.render());
        assert_eq!(v.render(), r#"{"x":0.1,"y":0.3333333333333333}"#);
    }

    #[test]
    fn simtime_is_integer_ns() {
        assert_eq!(crate::SimTime::from_us(3).to_json().render(), "3000");
    }
}
