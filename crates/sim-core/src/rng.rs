//! Deterministic randomness for experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded pseudo-random source with the handful of distributions the
/// workload models need.
///
/// Every experiment in the repository derives all of its randomness from a
/// single `u64` seed through this type, which makes each figure exactly
/// reproducible run-to-run.
///
/// # Example
///
/// ```
/// use flep_sim_core::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream; used to give each benchmark or
    /// co-run pair its own stream so adding experiments does not perturb
    /// existing ones.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::seed_from(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 requires lo <= hi ({lo} > {hi})");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_f64 requires lo <= hi ({lo} > {hi})");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Box-Muller needs u1 in (0, 1]; gen() yields [0, 1).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal sample: `exp(N(mu, sigma))`. Used to model heavy-tailed
    /// task durations in irregular kernels.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// A multiplicative noise factor `max(0.05, 1 + N(0, rel_sigma))`.
    ///
    /// Centered at 1 so that applying it to a duration preserves the mean to
    /// first order; floored well above zero so durations stay positive.
    pub fn noise_factor(&mut self, rel_sigma: f64) -> f64 {
        (1.0 + self.normal(0.0, rel_sigma)).max(0.05)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Picks one element uniformly, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            return None;
        }
        let i = self.inner.gen_range(0..items.len());
        Some(&items[i])
    }

    /// A raw uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let xs: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn fork_gives_independent_streams() {
        let mut root = SimRng::seed_from(3);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(
            (0..8).map(|_| c1.f64()).collect::<Vec<_>>(),
            (0..8).map(|_| c2.f64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            let v = rng.uniform_u64(5, 10);
            assert!((5..=10).contains(&v));
            let f = rng.uniform_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut rng = SimRng::seed_from(11);
        assert_eq!(rng.uniform_u64(4, 4), 4);
        assert_eq!(rng.uniform_f64(2.5, 2.5), 2.5);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn noise_factor_positive() {
        let mut rng = SimRng::seed_from(17);
        for _ in 0..10_000 {
            let f = rng.noise_factor(0.5);
            assert!(f >= 0.05);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(19);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::seed_from(23);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
