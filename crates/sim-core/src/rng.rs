//! Deterministic randomness for experiments.
//!
//! The generator is implemented from scratch so the workspace builds with a
//! bare Rust toolchain: a [xoshiro256\*\*](https://prng.di.unimi.it/) core
//! seeded through SplitMix64, the combination recommended by the xoshiro
//! authors. Both algorithms are public-domain; the implementation here is
//! self-contained and has no platform- or time-dependent state, so streams
//! are bit-identical across runs, machines, and Rust versions.

use std::f64::consts::PI;

/// SplitMix64 step: expands a 64-bit seed into a stream of well-mixed words.
///
/// Used only for seeding; xoshiro's authors recommend it because it tolerates
/// low-entropy seeds (0, 1, 2, …) that would leave xoshiro in a weak state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded pseudo-random source with the handful of distributions the
/// workload models need.
///
/// Every experiment in the repository derives all of its randomness from a
/// single `u64` seed through this type, which makes each figure exactly
/// reproducible run-to-run.
///
/// # Example
///
/// ```
/// use flep_sim_core::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw word of the xoshiro256\*\* stream.
    pub fn u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        // The top bit; xoshiro's low bits are its weakest.
        self.u64() >> 63 == 1
    }

    /// Derives an independent child stream; used to give each benchmark or
    /// co-run pair its own stream so adding experiments does not perturb
    /// existing ones.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base = self.u64();
        SimRng::seed_from(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A named, independent stream derived from `(seed, stream)` without
    /// consuming any state — unlike [`SimRng::fork`], which advances the
    /// parent. Two different stream ids over the same seed give unrelated
    /// sequences, and the same pair is bit-identical across runs.
    ///
    /// This is how subsystems that must not perturb each other split one
    /// experiment seed: the fault-injection layer draws from
    /// `stream(seed, FAULT_STREAM)` while workload noise keeps its own
    /// streams, so enabling faults never shifts a single workload draw
    /// (and fault-off runs stay byte-identical to fault-less builds).
    #[must_use]
    pub fn stream(seed: u64, stream: u64) -> SimRng {
        // Pre-mix the stream id through SplitMix64 so adjacent ids (0, 1,
        // 2, …) land far apart before they touch the seed.
        let mut sm = stream;
        let mixed = splitmix64(&mut sm);
        SimRng::seed_from(seed ^ mixed)
    }

    /// Uniform word in `[0, bound)` via Lemire's widening-multiply rejection
    /// method — unbiased for every bound without a modulo.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(self.u64()) * u128::from(bound);
            if m as u64 >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64 requires lo <= hi ({lo} > {hi})");
        let span = hi - lo;
        if span == u64::MAX {
            return self.u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_f64 requires lo <= hi ({lo} > {hi})");
        if lo == hi {
            return lo;
        }
        let v = lo + (hi - lo) * self.f64();
        // Floating-point rounding can land exactly on `hi`; keep the
        // half-open contract.
        if v < hi {
            v
        } else {
            lo
        }
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Box-Muller needs u1 in (0, 1]; f64() yields [0, 1).
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal sample: `exp(N(mu, sigma))`. Used to model heavy-tailed
    /// task durations in irregular kernels.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// A multiplicative noise factor `max(0.05, 1 + N(0, rel_sigma))`.
    ///
    /// Centered at 1 so that applying it to a duration preserves the mean to
    /// first order; floored well above zero so durations stay positive.
    pub fn noise_factor(&mut self, rel_sigma: f64) -> f64 {
        (1.0 + self.normal(0.0, rel_sigma)).max(0.05)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks one element uniformly, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            return None;
        }
        let i = self.below(items.len() as u64) as usize;
        Some(&items[i])
    }

    /// A raw uniform `f64` in `[0, 1)`: the top 53 bits of the stream scaled
    /// by 2⁻⁵³.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let xs: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn matches_xoshiro_reference_vector() {
        // First outputs of xoshiro256** from the state {1, 2, 3, 4}
        // (cross-checked against the reference C implementation at
        // prng.di.unimi.it). Pins the core so refactors cannot silently
        // change every experiment in the repo.
        let mut rng = SimRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
        ];
        for e in expected {
            assert_eq!(rng.u64(), e);
        }
    }

    #[test]
    fn seeding_avoids_weak_low_entropy_states() {
        // The all-zero seed must not produce the all-zero xoshiro state
        // (which is a fixed point of the transition function).
        let mut rng = SimRng::seed_from(0);
        assert_ne!(rng.s, [0; 4]);
        let words: Vec<u64> = (0..8).map(|_| rng.u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn fork_gives_independent_streams() {
        let mut root = SimRng::seed_from(3);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(
            (0..8).map(|_| c1.f64()).collect::<Vec<_>>(),
            (0..8).map(|_| c2.f64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            let v = rng.uniform_u64(5, 10);
            assert!((5..=10).contains(&v));
            let f = rng.uniform_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut rng = SimRng::seed_from(11);
        assert_eq!(rng.uniform_u64(4, 4), 4);
        assert_eq!(rng.uniform_f64(2.5, 2.5), 2.5);
    }

    #[test]
    fn uniform_full_range_does_not_overflow() {
        let mut rng = SimRng::seed_from(29);
        for _ in 0..64 {
            let _ = rng.uniform_u64(0, u64::MAX);
        }
    }

    #[test]
    fn uniform_is_unbiased_over_small_range() {
        // Lemire rejection: each bucket of [0, 3] gets ~25% of draws.
        let mut rng = SimRng::seed_from(31);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.uniform_u64(0, 3) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn noise_factor_positive() {
        let mut rng = SimRng::seed_from(17);
        for _ in 0..10_000 {
            let f = rng.noise_factor(0.5);
            assert!(f >= 0.05);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(19);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::seed_from(23);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SimRng::seed_from(37);
        let heads = (0..10_000).filter(|_| rng.bool()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }
}
