//! The virtual clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, with nanosecond resolution.
///
/// `SimTime` doubles as an instant and a duration, exactly like a plain
/// integer timestamp would; the arithmetic operators below keep the common
/// manipulations readable. Saturating semantics are used for subtraction so
/// that clock skew bugs show up as zero-length spans rather than panics in
/// release experiments (debug builds still catch overflow in `Add`).
///
/// # Example
///
/// ```
/// use flep_sim_core::SimTime;
/// let a = SimTime::from_us(5);
/// let b = SimTime::from_us(2);
/// assert_eq!((a + b).as_us(), 7.0);
/// assert_eq!((a - b).as_ns(), 3_000);
/// assert_eq!((b - a), SimTime::ZERO); // saturating
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time value from raw nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time value from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time value from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time value from a fractional number of microseconds.
    ///
    /// Negative inputs clamp to zero; the fractional part is rounded to the
    /// nearest nanosecond.
    #[must_use]
    pub fn from_us_f64(us: f64) -> Self {
        if us <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((us * 1_000.0).round() as u64)
    }

    /// Raw nanosecond count.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This time expressed in (fractional) microseconds.
    #[must_use]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time expressed in (fractional) milliseconds.
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time expressed in (fractional) seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, returning `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Scales this span by a floating-point factor (rounding to the nearest
    /// nanosecond; negative factors clamp to zero).
    #[must_use]
    pub fn scale(self, factor: f64) -> SimTime {
        if factor <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the larger of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True when this is the zero instant / an empty span.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ratio `self / other` as `f64`.
    ///
    /// Returns 0.0 when `other` is zero so callers computing shares do not
    /// need a special case for empty denominators.
    #[must_use]
    pub fn ratio(self, other: SimTime) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = self.saturating_sub(rhs);
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_us_f64(1.5), SimTime::from_ns(1_500));
    }

    #[test]
    fn from_us_f64_clamps_negative() {
        assert_eq!(SimTime::from_us_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn saturating_subtraction() {
        let a = SimTime::from_us(1);
        let b = SimTime::from_us(2);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_us(1));
    }

    #[test]
    fn sub_assign_saturates() {
        let mut t = SimTime::from_us(1);
        t -= SimTime::from_us(5);
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn scale_rounds_and_clamps() {
        assert_eq!(SimTime::from_ns(10).scale(0.55), SimTime::from_ns(6));
        assert_eq!(SimTime::from_ns(10).scale(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ns(10).scale(2.0), SimTime::from_ns(20));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(SimTime::from_us(5).ratio(SimTime::ZERO), 0.0);
        assert!((SimTime::from_us(5).ratio(SimTime::from_us(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_ms(1200).to_string(), "1.200s");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&u| SimTime::from_us(u)).sum();
        assert_eq!(total, SimTime::from_us(6));
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_us(1);
        let b = SimTime::from_us(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX.checked_add(SimTime::from_ns(1)).is_none());
        assert_eq!(
            SimTime::from_ns(1).checked_add(SimTime::from_ns(2)),
            Some(SimTime::from_ns(3))
        );
    }
}
