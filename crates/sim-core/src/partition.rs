//! Partitioned event scheduling: per-partition [`EventQueue`]s merged by a
//! tiny cursor heap into the exact global `(time, seq)` total order
//! (DESIGN.md §13).
//!
//! A [`PartitionedQueue`] holds one full ladder/heap `EventQueue` per
//! partition (in the cluster: one per device plus one control partition)
//! and stamps every push from a single global sequence counter. A
//! [`HeapCore`] *merge cursor* tracks, for each non-empty partition, the
//! packed key of that partition's head event — repacked with the partition
//! index in the slot bits — so popping the cursor's minimum yields exactly
//! the event a flat single queue would pop next. Because pushes receive
//! the same sequence numbers in the same order as a flat queue would
//! assign, the merged pop sequence is *identical* to the flat queue's,
//! payload for payload — which is what keeps every golden trace
//! byte-identical when a driver switches to partitioned stepping.
//!
//! # Cursor invariant
//!
//! Every non-empty partition's current head has an entry in the cursor.
//! The cursor is maintained lazily: a push that becomes its partition's
//! new head adds an entry (the *old* head's entry goes stale in place),
//! and a pop re-adds the partition's next head. Stale entries are
//! discarded on the way out by re-validating against the partition's
//! actual head, so the cursor never needs random-access deletion.
//!
//! Partition queues may also be drained *directly* (the epoch driver in
//! `flep-runtime` steps device streams without consulting the cursor),
//! but a queue handed out via [`PartitionedQueue::parts_mut`] must not be
//! mixed with merged pops afterwards — direct pops leave the cursor
//! pointing at events that no longer exist, which merged popping would
//! silently skip.

use crate::engine::{RunOutcome, SchedSink, Scheduler, StepOutcome, World};
use crate::event::{EventQueueImpl, SLOT_BITS, SLOT_MASK};
use crate::{EventQueue, HeapCore, PackedKey, SimTime};

/// Per-partition event queues merged in exact global `(time, seq)` order.
///
/// # Example
///
/// ```
/// use flep_sim_core::{PartitionedQueue, SimTime};
/// let mut q = PartitionedQueue::new(2);
/// q.push(1, SimTime::from_us(2), "b");
/// q.push(0, SimTime::from_us(1), "a");
/// q.push(0, SimTime::from_us(2), "c"); // same time as "b": FIFO by push order
/// assert_eq!(q.pop().unwrap(), (0, SimTime::from_us(1), "a"));
/// assert_eq!(q.pop().unwrap(), (1, SimTime::from_us(2), "b"));
/// assert_eq!(q.pop().unwrap(), (0, SimTime::from_us(2), "c"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct PartitionedQueue<E> {
    parts: Vec<EventQueue<E>>,
    /// Merge cursor: per-partition head keys, `(time, seq, partition)`
    /// packed, possibly with stale entries (validated on pop).
    cursor: HeapCore,
    /// The single global sequence counter all partitions stamp from.
    next_seq: u64,
    /// Total pending events across partitions (cursor entries can be
    /// stale, so the cursor's length is not authoritative).
    len: usize,
}

impl<E> PartitionedQueue<E> {
    /// Creates `partitions` empty queues (each on the `FLEP_QUEUE`-selected
    /// backend, self-calibrating independently).
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero or does not fit the cursor's
    /// partition-index field (2^24 partitions).
    #[must_use]
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        assert!(
            (partitions as u64) <= SLOT_MASK + 1,
            "partition count {partitions} exceeds the cursor index space"
        );
        PartitionedQueue {
            parts: (0..partitions).map(|_| EventQueue::new()).collect(),
            cursor: HeapCore::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of partitions.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Total pending events across all partitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when every partition is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at `time` in partition `part`, stamped from the
    /// global sequence counter.
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn push(&mut self, part: u32, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        debug_assert!(
            seq < 1 << (64 - SLOT_BITS),
            "partitioned queue seq overflow"
        );
        let q = &mut self.parts[part as usize];
        let old_head = q.min_packed();
        q.push_with_seq(time, seq, payload);
        let new_head = q.min_packed().expect("partition head after push");
        // The cursor only needs updating when the pushed key became the
        // partition's head (keys are unique, so comparing heads suffices).
        if old_head != Some(new_head) {
            self.cursor
                .push_key(PackedKey::new(new_head.time(), new_head.seq(), part));
        }
        self.len += 1;
    }

    /// Checks a cursor entry against partition `part`'s actual head.
    fn cursor_entry_is_live(&self, key: PackedKey) -> bool {
        self.parts[key.slot() as usize]
            .min_packed()
            .is_some_and(|h| h.seq() == key.seq() && h.time_ns() == key.time_ns())
    }

    /// Removes and returns the globally earliest event as
    /// `(partition, time, payload)` — exactly the event a flat queue
    /// holding every push would return.
    pub fn pop(&mut self) -> Option<(u32, SimTime, E)> {
        loop {
            let key = self.cursor.pop_min()?;
            if !self.cursor_entry_is_live(key) {
                continue; // stale: this head was superseded or already popped
            }
            let part = key.slot();
            let q = &mut self.parts[part as usize];
            let entry = q.pop().expect("validated head");
            if let Some(next) = q.min_packed() {
                self.cursor
                    .push_key(PackedKey::new(next.time(), next.seq(), part));
            }
            self.len -= 1;
            return Some((part, entry.time, entry.payload));
        }
    }

    /// The timestamp of the globally earliest pending event. Takes `&mut`
    /// because stale cursor entries are garbage-collected on the way.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let key = self.cursor.min_key()?;
            if self.cursor_entry_is_live(key) {
                return Some(key.time());
            }
            self.cursor.pop_min();
        }
    }

    /// Direct access to the partition queues, bypassing the merge cursor.
    ///
    /// For epoch-style drivers that drain partitions independently and
    /// never pop the merged view again (see the module docs); the length
    /// counter and cursor are NOT maintained across direct mutation.
    pub fn parts_mut(&mut self) -> &mut [EventQueue<E>] {
        &mut self.parts
    }
}

/// A discrete-event simulation over a [`PartitionedQueue`]: same contract
/// as [`Simulation`](crate::Simulation) — same `World` trait, same
/// dispatch order, same budget semantics — with events routed to
/// partitions by a pure `fn(&Event) -> u32`.
///
/// Because the merged pop order is identical to a flat queue's (see the
/// module docs), a world driven by this produces byte-identical output to
/// the flat driver; the payoff is that each partition's queue stays small
/// and cache-hot, so per-event cost no longer grows with the number of
/// partitions sharing the clock.
#[derive(Debug)]
pub struct PartitionedSimulation<W: World> {
    world: W,
    queue: PartitionedQueue<W::Event>,
    route: fn(&W::Event) -> u32,
    now: SimTime,
    dispatched: u64,
}

impl<W: World> PartitionedSimulation<W> {
    /// Creates a simulation around `world` with `partitions` empty queues
    /// at time zero; `route` maps each event to its partition.
    #[must_use]
    pub fn new(world: W, partitions: usize, route: fn(&W::Event) -> u32) -> Self {
        PartitionedSimulation {
            world,
            queue: PartitionedQueue::new(partitions),
            route,
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// The current virtual time (the timestamp of the last dispatched event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Shared access to the world.
    #[must_use]
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world.
    #[must_use]
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation and returns the world.
    #[must_use]
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event at an absolute time before or during the run.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current virtual time.
    pub fn schedule_at(&mut self, time: SimTime, payload: W::Event) {
        assert!(
            time >= self.now,
            "cannot schedule event in the past: now={} requested={}",
            self.now,
            time
        );
        let part = (self.route)(&payload);
        self.queue.push(part, time, payload);
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pops and dispatches the globally earliest event.
    pub fn step(&mut self) -> StepOutcome {
        let Some((_, time, payload)) = self.queue.pop() else {
            return StepOutcome::Idle;
        };
        debug_assert!(time >= self.now, "partitioned queue went backwards");
        self.now = time;
        self.dispatched += 1;
        let mut stop = false;
        let sink = SchedSink::Partitioned {
            queue: &mut self.queue,
            route: self.route,
        };
        let mut sched = Scheduler::new(self.now, sink, &mut stop);
        self.world.handle(time, payload, &mut sched);
        if stop {
            StepOutcome::Stopped
        } else {
            StepOutcome::Dispatched
        }
    }

    /// Runs until the queues drain or the world requests a stop.
    ///
    /// Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        loop {
            match self.step() {
                StepOutcome::Dispatched => {}
                StepOutcome::Idle | StepOutcome::Stopped => return self.now,
            }
        }
    }

    /// Runs until the queues drain, the world stops, or `max_events` have
    /// been dispatched *by this call* — same semantics as
    /// [`Simulation::run_with_budget`](crate::Simulation::run_with_budget).
    pub fn run_with_budget(&mut self, max_events: u64) -> RunOutcome {
        let mut spent: u64 = 0;
        loop {
            if spent >= max_events && !self.queue.is_empty() {
                return RunOutcome::BudgetExhausted {
                    now: self.now,
                    dispatched: self.dispatched,
                    pending: self.queue.len(),
                };
            }
            match self.step() {
                StepOutcome::Dispatched => spent += 1,
                StepOutcome::Idle | StepOutcome::Stopped => return RunOutcome::Completed(self.now),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimRng, Simulation};

    /// Merged pops must match a flat queue fed the same push sequence.
    #[test]
    fn merged_order_matches_flat_queue() {
        let mut rng = SimRng::seed_from(7);
        let mut flat: EventQueue<u64> = EventQueue::new();
        let mut parted: PartitionedQueue<u64> = PartitionedQueue::new(5);
        let mut payload = 0u64;
        for _ in 0..2_000 {
            if rng.f64() < 0.6 || flat.is_empty() {
                // Cluster timestamps, with deliberate collisions.
                let t = SimTime::from_ns(rng.uniform_u64(0, 64) * 100);
                let part = rng.uniform_u64(0, 4) as u32;
                flat.push(t, payload);
                parted.push(part, t, payload);
                payload += 1;
            } else {
                let f = flat.pop().expect("flat nonempty");
                let (_, t, p) = parted.pop().expect("partitioned nonempty");
                assert_eq!((f.time, f.payload), (t, p));
                assert_eq!(parted.peek_time(), flat.peek_time());
            }
        }
        while let Some(f) = flat.pop() {
            let (_, t, p) = parted.pop().expect("same length");
            assert_eq!((f.time, f.payload), (t, p));
        }
        assert!(parted.pop().is_none());
        assert!(parted.is_empty());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q: PartitionedQueue<u8> = PartitionedQueue::new(3);
        assert!(q.is_empty());
        q.push(0, SimTime::from_us(1), 1);
        q.push(2, SimTime::from_us(1), 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn same_timestamp_pileup_pops_in_push_order_across_partitions() {
        let mut q: PartitionedQueue<u32> = PartitionedQueue::new(4);
        let t = SimTime::from_us(10);
        for i in 0..16u32 {
            q.push(i % 4, t, i);
        }
        for i in 0..16u32 {
            let (part, time, p) = q.pop().expect("pending");
            assert_eq!((part, time, p), (i % 4, t, i));
        }
    }

    /// Heads that are superseded by an earlier push leave stale cursor
    /// entries; pops must skip them without losing events.
    #[test]
    fn superseded_heads_are_skipped_not_lost() {
        let mut q: PartitionedQueue<&'static str> = PartitionedQueue::new(2);
        q.push(0, SimTime::from_us(30), "c");
        q.push(0, SimTime::from_us(20), "b"); // new head of partition 0
        q.push(0, SimTime::from_us(10), "a"); // newer head still
        q.push(1, SimTime::from_us(15), "x");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, _, p)| p).collect();
        assert_eq!(order, vec!["a", "x", "b", "c"]);
    }

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    #[derive(Debug, Clone, Copy)]
    struct Tagged {
        part: u32,
        id: u32,
        fanout: bool,
    }

    impl World for Recorder {
        type Event = Tagged;
        fn handle(&mut self, now: SimTime, ev: Tagged, sched: &mut Scheduler<'_, Tagged>) {
            self.seen.push((now, ev.id));
            if ev.fanout {
                // Follow-ups land in other partitions via the route fn.
                for p in 0..3 {
                    sched.schedule_in(
                        SimTime::from_us(u64::from(p) + 1),
                        Tagged {
                            part: p,
                            id: ev.id * 10 + p,
                            fanout: false,
                        },
                    );
                }
            }
        }
    }

    fn route(ev: &Tagged) -> u32 {
        ev.part
    }

    /// The partitioned driver must replay the flat driver's dispatch
    /// sequence exactly, including world-scheduled follow-ups.
    #[test]
    fn partitioned_simulation_matches_flat_simulation() {
        let seed_events = [
            (
                5,
                Tagged {
                    part: 2,
                    id: 1,
                    fanout: true,
                },
            ),
            (
                5,
                Tagged {
                    part: 0,
                    id: 2,
                    fanout: true,
                },
            ),
            (
                9,
                Tagged {
                    part: 1,
                    id: 3,
                    fanout: false,
                },
            ),
        ];
        let mut flat = Simulation::new(Recorder { seen: Vec::new() });
        let mut parted = PartitionedSimulation::new(Recorder { seen: Vec::new() }, 3, route);
        for (us, ev) in seed_events {
            flat.schedule_at(SimTime::from_us(us), ev);
            parted.schedule_at(SimTime::from_us(us), ev);
        }
        let end_flat = flat.run();
        let end_parted = parted.run();
        assert_eq!(end_flat, end_parted);
        assert_eq!(flat.dispatched(), parted.dispatched());
        assert_eq!(flat.world().seen, parted.world().seen);
    }

    #[test]
    fn budget_semantics_match_flat_driver() {
        let mut parted = PartitionedSimulation::new(Recorder { seen: Vec::new() }, 3, route);
        parted.schedule_at(
            SimTime::from_us(1),
            Tagged {
                part: 0,
                id: 1,
                fanout: true,
            },
        );
        match parted.run_with_budget(2) {
            RunOutcome::BudgetExhausted {
                dispatched,
                pending,
                ..
            } => {
                assert_eq!(dispatched, 2);
                assert_eq!(pending, 2);
            }
            RunOutcome::Completed(_) => panic!("budget 2 cannot finish a 4-event run"),
        }
        assert!(matches!(
            parted.run_with_budget(10),
            RunOutcome::Completed(_)
        ));
        assert_eq!(parted.world().seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "partition count")]
    fn oversized_partition_count_is_rejected() {
        let _ = PartitionedQueue::<u8>::new(1 << 25);
    }
}
