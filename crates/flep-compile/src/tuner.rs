//! The offline amortizing-factor tuner (§4.1): "FLEP can automatically
//! find the smallest value for L through offline tuning (trying different
//! values from small to large) such that the runtime overhead introduced
//! by the transformation is less than 4%."
//!
//! Tuning runs are noise-free profiling runs: the transformed and original
//! kernels execute standalone on a fresh simulated device, and overhead is
//! the relative makespan difference.

use flep_gpu_sim::{run_single, GpuConfig, GridShape, LaunchDesc, TaskCost};
use flep_sim_core::SimTime;
use flep_workloads::{Benchmark, InputClass};

/// The default candidate grid, "from small to large" (§4.1).
pub const DEFAULT_CANDIDATES: [u32; 11] = [1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 500];

/// The paper's overhead budget for the transformation.
pub const DEFAULT_MAX_OVERHEAD: f64 = 0.04;

/// One candidate's measured overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateResult {
    /// The amortizing factor tried.
    pub amortize: u32,
    /// Measured relative overhead vs the original kernel.
    pub overhead: f64,
}

/// The tuner's outcome for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// The chosen (smallest passing) amortizing factor.
    pub chosen: u32,
    /// Whether any candidate met the budget (when false, `chosen` is the
    /// largest candidate — the best available).
    pub within_budget: bool,
    /// Every candidate measured, in trial order. Tuning stops at the first
    /// passing candidate, so this ends at `chosen`.
    pub trials: Vec<CandidateResult>,
}

/// Measures the transformation overhead of one (kernel, L) pair: the
/// relative slowdown of the persistent form over the original form running
/// standalone with noise-free task costs.
#[must_use]
pub fn measure_overhead(
    config: &GpuConfig,
    bench: &Benchmark,
    class: InputClass,
    amortize: u32,
) -> f64 {
    let p = bench.profile(class);
    let cost = TaskCost::fixed(p.task_base);
    let original = run_single(
        config.clone(),
        LaunchDesc::new("orig", GridShape::Original { ctas: p.tasks }, cost)
            .with_resources(bench.resources)
            .with_mem_intensity(bench.mem_intensity),
    );
    let transformed = run_single(
        config.clone(),
        LaunchDesc::new(
            "flep",
            GridShape::Persistent {
                total_tasks: p.tasks,
                amortize,
            },
            cost,
        )
        .with_resources(bench.resources)
        .with_mem_intensity(bench.mem_intensity),
    );
    (transformed.as_us() - original.as_us()) / original.as_us()
}

/// Tunes the amortizing factor for a benchmark on its large input with the
/// default candidate grid and 4% budget.
#[must_use]
pub fn tune(config: &GpuConfig, bench: &Benchmark) -> TuneResult {
    tune_with(
        config,
        bench,
        InputClass::Large,
        &DEFAULT_CANDIDATES,
        DEFAULT_MAX_OVERHEAD,
    )
}

/// Tunes with explicit input class, candidate grid, and budget.
///
/// # Panics
///
/// Panics if `candidates` is empty.
#[must_use]
pub fn tune_with(
    config: &GpuConfig,
    bench: &Benchmark,
    class: InputClass,
    candidates: &[u32],
    max_overhead: f64,
) -> TuneResult {
    assert!(!candidates.is_empty(), "need at least one candidate L");
    let mut trials = Vec::new();
    for &l in candidates {
        let overhead = measure_overhead(config, bench, class, l);
        trials.push(CandidateResult {
            amortize: l,
            overhead,
        });
        if overhead < max_overhead {
            return TuneResult {
                chosen: l,
                within_budget: true,
                trials,
            };
        }
    }
    TuneResult {
        chosen: *candidates.last().expect("non-empty"),
        within_budget: false,
        trials,
    }
}

/// Convenience: the preemption latency implied by an amortizing factor —
/// the time a CTA spends finishing its current batch before the next poll,
/// `L × task_base` (plus the flag visibility latency).
#[must_use]
pub fn preemption_latency(
    config: &GpuConfig,
    bench: &Benchmark,
    class: InputClass,
    amortize: u32,
) -> SimTime {
    bench.profile(class).task_base * u64::from(amortize) + config.flag_visibility_latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use flep_workloads::BenchmarkId;

    #[test]
    fn tuner_reproduces_table1_amortizing_factors() {
        let cfg = GpuConfig::k40();
        for id in BenchmarkId::ALL {
            let b = Benchmark::get(id);
            let result = tune(&cfg, &b);
            assert!(result.within_budget, "{id}: no candidate met 4%");
            assert_eq!(
                result.chosen, b.table1_amortize,
                "{id}: tuner chose {} but Table 1 says {} (trials: {:?})",
                result.chosen, b.table1_amortize, result.trials
            );
        }
    }

    #[test]
    fn overhead_decreases_with_l() {
        let cfg = GpuConfig::k40();
        let b = Benchmark::get(BenchmarkId::Nn);
        let o1 = measure_overhead(&cfg, &b, InputClass::Large, 1);
        let o100 = measure_overhead(&cfg, &b, InputClass::Large, 100);
        assert!(o1 > o100, "{o1} vs {o100}");
        assert!(o100 < 0.04);
    }

    #[test]
    fn impossible_budget_reports_failure() {
        let cfg = GpuConfig::k40();
        let b = Benchmark::get(BenchmarkId::Va);
        let result = tune_with(&cfg, &b, InputClass::Large, &[1, 2], 0.0001);
        assert!(!result.within_budget);
        assert_eq!(result.chosen, 2);
        assert_eq!(result.trials.len(), 2);
    }

    #[test]
    fn tuning_stops_at_first_pass() {
        let cfg = GpuConfig::k40();
        let b = Benchmark::get(BenchmarkId::Cfd);
        let result = tune(&cfg, &b);
        assert_eq!(result.trials.len(), 1, "CFD passes at L=1 immediately");
    }

    #[test]
    fn preemption_latency_scales_with_l() {
        let cfg = GpuConfig::k40();
        let b = Benchmark::get(BenchmarkId::Va);
        let l1 = preemption_latency(&cfg, &b, InputClass::Large, 1);
        let l200 = preemption_latency(&cfg, &b, InputClass::Large, 200);
        assert!(l200 > l1 * 100);
    }
}
