//! The FLEP kernel transformation passes (Fig. 4 of the paper).
//!
//! Each pass rewrites a mini-CU translation unit:
//!
//! 1. The original kernel body is extracted into a `__device__` *task
//!    function* whose `blockIdx.x` occurrences are replaced by an explicit
//!    task index — a task is "the computations that should be done by a CTA
//!    in the original kernel" (§4.1).
//! 2. A persistent-threads kernel is generated around it. Three flavors:
//!    * [`TransformMode::TemporalNaive`] — Fig. 4(a): poll the pinned
//!      boolean before every task.
//!    * [`TransformMode::TemporalAmortized`] — Fig. 4(b): poll once per
//!      `L` tasks (the amortizing factor).
//!    * [`TransformMode::Spatial`] — Fig. 4(c): poll an integer `spa_P`
//!      and exit only when `__smid() < spa_P`, enabling partial-SM yields.
//!
//!    All three use the §4.1 optimization: one thread per CTA reads the
//!    flag and pulls the task index via `atomicAdd`, stages them in
//!    `__shared__` variables, and a `__syncthreads()` broadcast makes them
//!    visible to the whole CTA.
//! 3. The host launch site is rewritten into the Fig. 5 state machine:
//!    notify the runtime (S1→S2), wait for the grant, launch the
//!    persistent grid sized `num_SMs * max_CTAs_per_SM`, and loop while
//!    the runtime reports preemption instead of completion (S3→S2→S3).

use std::error::Error;
use std::fmt;

use flep_minicu::{
    analyze, estimate_resources, AssignOp, BinOp, Block, Builtin, Expr, FnKind, Function, Param,
    Program, ResourceEstimate, SemaError, Stmt, Type, UnOp,
};

/// Which Fig. 4 form to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformMode {
    /// Fig. 4(a): temporal preemption, flag polled before every task.
    TemporalNaive,
    /// Fig. 4(b): temporal preemption, flag polled once per `L` tasks.
    TemporalAmortized,
    /// Fig. 4(c): spatial preemption via `%smid` (subsumes temporal when
    /// the host writes a value ≥ the SM count).
    Spatial,
}

/// Errors from the transformation passes.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// The program failed semantic analysis.
    Sema(SemaError),
    /// The named kernel does not exist in the program.
    NoSuchKernel(String),
    /// The kernel uses a 2-D grid (`blockIdx.y` / `gridDim`), which the
    /// persistent-thread transform linearizes in the real system but this
    /// reproduction does not implement.
    MultiDimGrid(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Sema(e) => write!(f, "semantic error: {e}"),
            TransformError::NoSuchKernel(k) => write!(f, "no kernel named `{k}`"),
            TransformError::MultiDimGrid(k) => {
                write!(
                    f,
                    "kernel `{k}` uses a multi-dimensional grid (unsupported)"
                )
            }
        }
    }
}

impl Error for TransformError {}

impl From<SemaError> for TransformError {
    fn from(e: SemaError) -> Self {
        TransformError::Sema(e)
    }
}

/// Metadata about one transformed kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformedKernel {
    /// The original kernel name.
    pub original: String,
    /// The generated persistent kernel's name.
    pub persistent: String,
    /// The generated `__device__` task function's name.
    pub task_fn: String,
    /// The numeric kernel id the generated host code passes to the runtime.
    pub kernel_id: u32,
    /// Which form was generated.
    pub mode: TransformMode,
    /// Resource estimate of the *transformed* kernel (the linear scan that
    /// feeds the occupancy calculation).
    pub resources: ResourceEstimate,
    /// How many `blockIdx.x` occurrences became task indices.
    pub block_idx_replacements: usize,
}

/// The result of running a pass over a translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformResult {
    /// The transformed program (kernels + rewritten host code).
    pub program: Program,
    /// Per-kernel metadata, in definition order.
    pub kernels: Vec<TransformedKernel>,
}

/// Transforms every `__global__` kernel in `program` into the requested
/// preemptable form and rewrites every host launch site into the Fig. 5
/// state machine.
///
/// # Errors
///
/// Returns [`TransformError`] if the program fails semantic analysis, or a
/// kernel uses features the persistent-thread transform does not support.
///
/// # Example
///
/// ```
/// use flep_compile::{transform, TransformMode};
/// let src = r#"
/// __global__ void k(float* a, int n) {
///     int i = blockIdx.x * blockDim.x + threadIdx.x;
///     if (i < n) { a[i] = a[i] + 1.0f; }
/// }
/// void host_main(float* a, int n) { k<<<n / 256 + 1, 256>>>(a, n); }
/// "#;
/// let program = flep_minicu::parse(src).unwrap();
/// let out = transform(&program, TransformMode::Spatial).unwrap();
/// let printed = out.program.to_string();
/// assert!(printed.contains("__smid()"));
/// assert!(printed.contains("atomicAdd"));
/// // Generated code is valid mini-CU.
/// flep_minicu::parse(&printed).unwrap();
/// ```
pub fn transform(
    program: &Program,
    mode: TransformMode,
) -> Result<TransformResult, TransformError> {
    analyze(program)?;

    let mut out = Program::default();
    let mut kernels = Vec::new();
    let mut kernel_id: u32 = 0;

    for f in &program.functions {
        match f.kind {
            FnKind::Global => {
                check_supported(f)?;
                let task_fn = make_task_fn(f);
                let replacements = count_block_idx(&f.body);
                let persistent = make_persistent_kernel(f, &task_fn, mode);
                let resources = estimate_resources(&persistent);
                kernels.push(TransformedKernel {
                    original: f.name.clone(),
                    persistent: persistent.name.clone(),
                    task_fn: task_fn.name.clone(),
                    kernel_id,
                    mode,
                    resources,
                    block_idx_replacements: replacements,
                });
                kernel_id += 1;
                out.functions.push(task_fn);
                out.functions.push(persistent);
            }
            FnKind::Device => out.functions.push(f.clone()),
            FnKind::Host => {
                // Rewritten in a second pass once all kernel ids are known.
                out.functions.push(f.clone());
            }
        }
    }

    // Second pass: rewrite host launch sites.
    for f in &mut out.functions {
        if f.kind == FnKind::Host {
            rewrite_launches(&mut f.body, &kernels);
        }
    }

    Ok(TransformResult {
        program: out,
        kernels,
    })
}

fn check_supported(kernel: &Function) -> Result<(), TransformError> {
    let mut multi_dim = false;
    flep_minicu::visit_exprs(&kernel.body, &mut |e| {
        if matches!(
            e,
            Expr::Builtin(Builtin::BlockIdxY)
                | Expr::Builtin(Builtin::ThreadIdxY)
                | Expr::Builtin(Builtin::GridDimX)
                | Expr::Builtin(Builtin::BlockDimY)
        ) {
            multi_dim = true;
        }
    });
    if multi_dim {
        return Err(TransformError::MultiDimGrid(kernel.name.clone()));
    }
    Ok(())
}

fn count_block_idx(body: &Block) -> usize {
    let mut n = 0;
    flep_minicu::visit_exprs(body, &mut |e| {
        if matches!(e, Expr::Builtin(Builtin::BlockIdxX)) {
            n += 1;
        }
    });
    n
}

/// Extracts the kernel body into `__device__ void <k>_task(params...,
/// unsigned int flep_task)` with `blockIdx.x` replaced by the task index.
fn make_task_fn(kernel: &Function) -> Function {
    let mut body = kernel.body.clone();
    body.replace_builtin(Builtin::BlockIdxX, &Expr::ident("flep_task"));
    let mut params = kernel.params.clone();
    params.push(Param {
        name: "flep_task".into(),
        ty: Type::Uint,
        volatile: false,
    });
    Function {
        kind: FnKind::Device,
        ret: Type::Void,
        name: format!("{}_task", kernel.name),
        params,
        body,
    }
}

/// Builds the persistent kernel wrapping the task function.
fn make_persistent_kernel(kernel: &Function, task_fn: &Function, mode: TransformMode) -> Function {
    let mut params = kernel.params.clone();
    // The pinned flag: a boolean for temporal modes, the spa_P integer for
    // spatial (Fig. 4's `temp_P` / `spa_P`).
    params.push(Param {
        name: "flep_flag".into(),
        ty: Type::Uint.ptr(),
        volatile: true,
    });
    if mode == TransformMode::TemporalAmortized || mode == TransformMode::Spatial {
        params.push(Param {
            name: "flep_l".into(),
            ty: Type::Uint,
            volatile: false,
        });
    }
    params.push(Param {
        name: "flep_counter".into(),
        ty: Type::Uint.ptr(),
        volatile: false,
    });
    params.push(Param {
        name: "flep_total".into(),
        ty: Type::Uint,
        volatile: false,
    });

    // Shared staging for the one-reader broadcast optimization (§4.1).
    let decl_stop = Stmt::Decl {
        name: "flep_stop".into(),
        ty: Type::Uint,
        shared: true,
        volatile: false,
        array_len: None,
        init: None,
    };
    let decl_task = Stmt::Decl {
        name: "flep_task_idx".into(),
        ty: Type::Uint,
        shared: true,
        volatile: false,
        array_len: None,
        init: None,
    };

    let tid_is_zero = Expr::bin(BinOp::Eq, Expr::Builtin(Builtin::ThreadIdxX), Expr::Int(0));
    // The flag check that thread 0 performs.
    let stop_cond = match mode {
        TransformMode::TemporalNaive | TransformMode::TemporalAmortized => Expr::bin(
            BinOp::Ne,
            Expr::deref(Expr::ident("flep_flag")),
            Expr::Int(0),
        ),
        TransformMode::Spatial => Expr::bin(
            BinOp::Lt,
            Expr::Builtin(Builtin::SmId),
            Expr::deref(Expr::ident("flep_flag")),
        ),
    };
    let read_flag = Stmt::If {
        cond: tid_is_zero.clone(),
        then_block: Block::new(vec![Stmt::Assign {
            target: Expr::ident("flep_stop"),
            op: AssignOp::Assign,
            value: Expr::Ternary {
                cond: Box::new(stop_cond),
                then_expr: Box::new(Expr::Int(1)),
                else_expr: Box::new(Expr::Int(0)),
            },
        }]),
        else_block: None,
    };
    let sync = Stmt::Expr(Expr::call("__syncthreads", vec![]));
    let exit_if_stopped = Stmt::If {
        cond: Expr::bin(BinOp::Eq, Expr::ident("flep_stop"), Expr::Int(1)),
        then_block: Block::new(vec![Stmt::Return(None)]),
        else_block: None,
    };

    // Pull one task: thread 0 does the atomicAdd, broadcast via shared.
    let pull_task = Stmt::If {
        cond: tid_is_zero,
        then_block: Block::new(vec![Stmt::Assign {
            target: Expr::ident("flep_task_idx"),
            op: AssignOp::Assign,
            value: Expr::call("atomicAdd", vec![Expr::ident("flep_counter"), Expr::Int(1)]),
        }]),
        else_block: None,
    };
    let exit_if_done = Stmt::If {
        cond: Expr::bin(
            BinOp::Ge,
            Expr::ident("flep_task_idx"),
            Expr::ident("flep_total"),
        ),
        then_block: Block::new(vec![Stmt::Return(None)]),
        else_block: None,
    };
    let call_task = Stmt::Expr(Expr::call(task_fn.name.clone(), {
        let mut args: Vec<Expr> = kernel
            .params
            .iter()
            .map(|p| Expr::ident(p.name.clone()))
            .collect();
        args.push(Expr::ident("flep_task_idx"));
        args
    }));

    let task_sequence = vec![
        pull_task,
        sync.clone(),
        exit_if_done,
        call_task,
        sync.clone(),
    ];

    let loop_body = match mode {
        TransformMode::TemporalNaive => {
            // Poll, then process exactly one task per iteration.
            let mut stmts = vec![read_flag, sync, exit_if_stopped];
            stmts.extend(task_sequence);
            Block::new(stmts)
        }
        TransformMode::TemporalAmortized | TransformMode::Spatial => {
            // Poll, then process L tasks.
            let inner = Stmt::For {
                init: Some(Box::new(Stmt::Decl {
                    name: "flep_i".into(),
                    ty: Type::Uint,
                    shared: false,
                    volatile: false,
                    array_len: None,
                    init: Some(Expr::Int(0)),
                })),
                cond: Some(Expr::bin(
                    BinOp::Lt,
                    Expr::ident("flep_i"),
                    Expr::ident("flep_l"),
                )),
                step: Some(Box::new(Stmt::Expr(Expr::Unary {
                    op: UnOp::PreInc,
                    expr: Box::new(Expr::ident("flep_i")),
                }))),
                body: Block::new(task_sequence),
            };
            Block::new(vec![read_flag, sync, exit_if_stopped, inner])
        }
    };

    let body = Block::new(vec![
        decl_stop,
        decl_task,
        Stmt::While {
            cond: Expr::Bool(true),
            body: loop_body,
        },
    ]);

    Function {
        kind: FnKind::Global,
        ret: Type::Void,
        name: format!("{}_flep", kernel.name),
        params,
        body,
    }
}

/// Rewrites each launch statement into the Fig. 5 state machine calling
/// into the FLEP runtime API.
fn rewrite_launches(block: &mut Block, kernels: &[TransformedKernel]) {
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                rewrite_launches(then_block, kernels);
                if let Some(e) = else_block {
                    rewrite_launches(e, kernels);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                rewrite_launches(body, kernels);
            }
            Stmt::Block(b) => rewrite_launches(b, kernels),
            Stmt::Launch {
                kernel,
                grid,
                block: cta,
                args,
            } => {
                let Some(meta) = kernels.iter().find(|k| &k.original == kernel) else {
                    continue;
                };
                let id = Expr::Int(i64::from(meta.kernel_id));
                // S1 -> S2: hand the invocation (name id + original launch
                // configuration, for the performance model's features) to
                // the runtime instead of launching.
                let request = Stmt::Expr(Expr::call(
                    "flep_request",
                    vec![id.clone(), grid.clone(), cta.clone()],
                ));
                // S2: block until the runtime grants the GPU.
                let wait_grant = Stmt::Expr(Expr::call("flep_wait_grant", vec![id.clone()]));
                // S3 loop: launch the persistent grid; if the runtime
                // preempts us, wait for a new grant and relaunch to finish
                // the remaining tasks.
                let mut flep_args: Vec<Expr> = args.to_vec();
                flep_args.push(Expr::call("flep_flag_ptr", vec![id.clone()]));
                if meta.mode != TransformMode::TemporalNaive {
                    flep_args.push(Expr::call("flep_amortize", vec![id.clone()]));
                }
                flep_args.push(Expr::call("flep_counter_ptr", vec![id.clone()]));
                flep_args.push(Expr::call("flep_remaining", vec![id.clone()]));
                let relaunch_loop = Stmt::While {
                    cond: Expr::bin(
                        BinOp::Eq,
                        Expr::call("flep_wait_gpu", vec![id.clone()]),
                        Expr::Int(0),
                    ),
                    body: Block::new(vec![
                        Stmt::Expr(Expr::call("flep_wait_grant", vec![id.clone()])),
                        Stmt::Launch {
                            kernel: meta.persistent.clone(),
                            grid: Expr::call("flep_grid_size", vec![id.clone()]),
                            block: cta.clone(),
                            args: flep_args.clone(),
                        },
                    ]),
                };
                let first_launch = Stmt::Launch {
                    kernel: meta.persistent.clone(),
                    grid: Expr::call("flep_grid_size", vec![id]),
                    block: cta.clone(),
                    args: flep_args,
                };
                *stmt = Stmt::Block(Block::new(vec![
                    request,
                    wait_grant,
                    first_launch,
                    relaunch_loop,
                ]));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flep_minicu::parse;
    use flep_workloads::{source, BenchmarkId};

    const SIMPLE: &str = r#"
        __global__ void k(float* a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { a[i] = a[i] * 2.0f; }
        }
        void host_main(float* a, int n) {
            k<<<n / 256 + 1, 256>>>(a, n);
        }
    "#;

    #[test]
    fn temporal_naive_matches_fig4a_shape() {
        let p = parse(SIMPLE).unwrap();
        let out = transform(&p, TransformMode::TemporalNaive).unwrap();
        let printed = out.program.to_string();
        assert!(printed.contains("while (true)"));
        assert!(printed.contains("*flep_flag != 0"));
        assert!(printed.contains("atomicAdd(flep_counter, 1)"));
        // Naive mode has no amortizing parameter.
        assert!(!printed.contains("flep_l"));
    }

    #[test]
    fn amortized_adds_inner_loop() {
        let p = parse(SIMPLE).unwrap();
        let out = transform(&p, TransformMode::TemporalAmortized).unwrap();
        let printed = out.program.to_string();
        assert!(printed.contains("for (unsigned int flep_i = 0; flep_i < flep_l; ++flep_i)"));
    }

    #[test]
    fn spatial_gates_on_smid() {
        let p = parse(SIMPLE).unwrap();
        let out = transform(&p, TransformMode::Spatial).unwrap();
        let printed = out.program.to_string();
        assert!(printed.contains("__smid() < *flep_flag"));
    }

    #[test]
    fn block_idx_is_replaced_in_task_fn() {
        let p = parse(SIMPLE).unwrap();
        let out = transform(&p, TransformMode::Spatial).unwrap();
        assert_eq!(out.kernels[0].block_idx_replacements, 1);
        let task = out.program.function("k_task").unwrap();
        let printed = task.to_string();
        assert!(printed.contains("flep_task * blockDim.x"));
        assert!(!printed.contains("blockIdx.x"));
    }

    #[test]
    fn host_code_becomes_state_machine() {
        let p = parse(SIMPLE).unwrap();
        let out = transform(&p, TransformMode::Spatial).unwrap();
        let host = out.program.function("host_main").unwrap().to_string();
        assert!(host.contains("flep_request(0, n / 256 + 1, 256)"));
        assert!(host.contains("flep_wait_grant(0)"));
        assert!(host.contains("k_flep<<<flep_grid_size(0), 256>>>"));
        assert!(host.contains("while (flep_wait_gpu(0) == 0)"));
        // The original direct launch is gone.
        assert!(!host.contains("k<<<"));
    }

    #[test]
    fn transformed_output_is_valid_minicu() {
        for mode in [
            TransformMode::TemporalNaive,
            TransformMode::TemporalAmortized,
            TransformMode::Spatial,
        ] {
            let p = parse(SIMPLE).unwrap();
            let out = transform(&p, mode).unwrap();
            let printed = out.program.to_string();
            let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{mode:?}: {e}\n{printed}"));
            // And it re-analyzes cleanly (arity of the rewritten launches
            // matches the generated kernel signatures).
            flep_minicu::analyze(&reparsed).unwrap_or_else(|e| panic!("{mode:?}: {e}\n{printed}"));
        }
    }

    #[test]
    fn transformed_programs_type_check() {
        // The generated persistent kernels, task functions, and host state
        // machines must pass the full mini-CU type checker.
        for id in BenchmarkId::ALL {
            let p = parse(source(id)).unwrap();
            for mode in [
                TransformMode::TemporalNaive,
                TransformMode::TemporalAmortized,
                TransformMode::Spatial,
            ] {
                let out = transform(&p, mode).unwrap();
                flep_minicu::type_check(&out.program)
                    .unwrap_or_else(|e| panic!("{id} {mode:?}: {e}\n{}", out.program));
            }
        }
    }

    #[test]
    fn sliced_programs_type_check() {
        for id in BenchmarkId::ALL {
            let p = parse(source(id)).unwrap();
            let out = crate::slicing::slice_transform(&p, 120).unwrap();
            flep_minicu::type_check(&out).unwrap_or_else(|e| panic!("{id}: {e}\n{out}"));
        }
    }

    #[test]
    fn all_eight_benchmarks_transform_cleanly() {
        for id in BenchmarkId::ALL {
            let p = parse(source(id)).unwrap();
            for mode in [
                TransformMode::TemporalNaive,
                TransformMode::TemporalAmortized,
                TransformMode::Spatial,
            ] {
                let out = transform(&p, mode).unwrap_or_else(|e| panic!("{id} {mode:?}: {e}"));
                let printed = out.program.to_string();
                parse(&printed).unwrap_or_else(|e| panic!("{id} {mode:?} reparse: {e}"));
                assert!(
                    out.kernels[0].block_idx_replacements > 0,
                    "{id}: kernel must consume blockIdx.x"
                );
            }
        }
    }

    #[test]
    fn transformed_kernel_uses_slightly_more_registers() {
        let p = parse(SIMPLE).unwrap();
        let original_est = flep_minicu::estimate_resources(p.function("k").unwrap());
        let out = transform(&p, TransformMode::Spatial).unwrap();
        assert!(out.kernels[0].resources.regs_per_thread >= original_est.regs_per_thread);
        // The two __shared__ staging words.
        assert_eq!(out.kernels[0].resources.smem_per_cta, 8);
    }

    #[test]
    fn unknown_kernel_launch_is_semantic_error() {
        let p = parse("void h() { ghost<<<1, 1>>>(); }").unwrap();
        assert!(matches!(
            transform(&p, TransformMode::Spatial),
            Err(TransformError::Sema(_))
        ));
    }

    #[test]
    fn multi_dim_kernels_are_rejected() {
        let p = parse("__global__ void k2(float* a) { a[blockIdx.y] = 0.0f; }").unwrap();
        assert_eq!(
            transform(&p, TransformMode::Spatial).unwrap_err(),
            TransformError::MultiDimGrid("k2".into())
        );
    }

    #[test]
    fn launch_inside_loop_is_rewritten() {
        let src = r#"
            __global__ void k(float* a) { a[blockIdx.x] = 0.0f; }
            void h(float* a, int iters) {
                for (int t = 0; t < iters; ++t) {
                    k<<<120, 256>>>(a);
                }
            }
        "#;
        let p = parse(src).unwrap();
        let out = transform(&p, TransformMode::TemporalAmortized).unwrap();
        let host = out.program.function("h").unwrap().to_string();
        assert!(host.contains("flep_request(0, 120, 256)"));
    }
}
