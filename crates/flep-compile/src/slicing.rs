//! The kernel-slicing baseline (§2.2, Fig. 17): the pre-FLEP software
//! approach to GPU preemption, implemented both as a source transform and
//! as a timing-level execution plan for the simulator.
//!
//! A sliced kernel launches as a sequence of sub-kernels, each covering a
//! contiguous range of the original CTAs; the GPU can be "preempted" at
//! sub-kernel boundaries. Costs relative to FLEP: every sub-kernel pays a
//! launch overhead, and sub-kernels in one stream serialize (the inter-
//! slice barrier idles the tail of each wave). To compare at equal
//! preemption granularity (Fig. 17's setup), a slice covers
//! `amortize × device_capacity` CTAs — the same work FLEP's persistent
//! CTAs complete between two flag polls.

use std::error::Error;
use std::fmt;

use flep_minicu::{
    analyze, AssignOp, BinOp, Block, Builtin, Expr, FnKind, Function, Param, Program, SemaError,
    Stmt, Type,
};

use flep_gpu_sim::{GpuConfig, GridShape, LaunchDesc, Scenario};
use flep_sim_core::SimTime;

/// Errors from the slicing transform.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceError {
    /// The program failed semantic analysis.
    Sema(SemaError),
    /// Slice size must be positive.
    ZeroSliceSize,
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::Sema(e) => write!(f, "semantic error: {e}"),
            SliceError::ZeroSliceSize => f.write_str("slice size must be at least 1 CTA"),
        }
    }
}

impl Error for SliceError {}

impl From<SemaError> for SliceError {
    fn from(e: SemaError) -> Self {
        SliceError::Sema(e)
    }
}

/// Source-level slicing transform: each kernel gains a CTA-offset
/// parameter (its `blockIdx.x` becomes `blockIdx.x + flep_offset`) and each
/// host launch becomes a loop of sub-launches of at most `slice_ctas` CTAs.
///
/// # Errors
///
/// Returns [`SliceError`] if the program is semantically invalid or
/// `slice_ctas` is zero.
///
/// # Example
///
/// ```
/// let src = r#"
/// __global__ void k(float* a, int n) {
///     int i = blockIdx.x * blockDim.x + threadIdx.x;
///     if (i < n) { a[i] = 0.0f; }
/// }
/// void h(float* a, int n) { k<<<4096, 256>>>(a, n); }
/// "#;
/// let p = flep_minicu::parse(src).unwrap();
/// let out = flep_compile::slice_transform(&p, 120).unwrap();
/// let printed = out.to_string();
/// assert!(printed.contains("k_sliced"));
/// flep_minicu::parse(&printed).unwrap();
/// ```
pub fn slice_transform(program: &Program, slice_ctas: u64) -> Result<Program, SliceError> {
    analyze(program)?;
    if slice_ctas == 0 {
        return Err(SliceError::ZeroSliceSize);
    }

    let mut out = Program::default();
    let mut sliced_names: Vec<(String, String)> = Vec::new();

    for f in &program.functions {
        match f.kind {
            FnKind::Global => {
                let mut body = f.body.clone();
                body.replace_builtin(
                    Builtin::BlockIdxX,
                    &Expr::bin(
                        BinOp::Add,
                        Expr::Builtin(Builtin::BlockIdxX),
                        Expr::ident("flep_offset"),
                    ),
                );
                let mut params = f.params.clone();
                params.push(Param {
                    name: "flep_offset".into(),
                    ty: Type::Uint,
                    volatile: false,
                });
                let name = format!("{}_sliced", f.name);
                sliced_names.push((f.name.clone(), name.clone()));
                out.functions.push(Function {
                    kind: FnKind::Global,
                    ret: Type::Void,
                    name,
                    params,
                    body,
                });
            }
            _ => out.functions.push(f.clone()),
        }
    }

    for f in &mut out.functions {
        if f.kind == FnKind::Host {
            rewrite_launches(&mut f.body, &sliced_names, slice_ctas);
        }
    }
    Ok(out)
}

fn rewrite_launches(block: &mut Block, sliced: &[(String, String)], slice_ctas: u64) {
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                rewrite_launches(then_block, sliced, slice_ctas);
                if let Some(e) = else_block {
                    rewrite_launches(e, sliced, slice_ctas);
                }
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                rewrite_launches(body, sliced, slice_ctas)
            }
            Stmt::Block(b) => rewrite_launches(b, sliced, slice_ctas),
            Stmt::Launch {
                kernel,
                grid,
                block: cta,
                args,
            } => {
                let Some((_, new_name)) = sliced.iter().find(|(orig, _)| orig == kernel) else {
                    continue;
                };
                // for (unsigned int flep_s = 0; flep_s < GRID; flep_s += S)
                //     k_sliced<<<(GRID - flep_s < S ? GRID - flep_s : S), B>>>(args..., flep_s);
                let grid_e = grid.clone();
                let remaining = Expr::bin(BinOp::Sub, grid_e.clone(), Expr::ident("flep_s"));
                let slice_lit = Expr::Int(slice_ctas as i64);
                let this_slice = Expr::Ternary {
                    cond: Box::new(Expr::bin(BinOp::Lt, remaining.clone(), slice_lit.clone())),
                    then_expr: Box::new(remaining),
                    else_expr: Box::new(slice_lit.clone()),
                };
                let mut new_args = args.clone();
                new_args.push(Expr::ident("flep_s"));
                let inner = Stmt::Launch {
                    kernel: new_name.clone(),
                    grid: this_slice,
                    block: cta.clone(),
                    args: new_args,
                };
                *stmt = Stmt::For {
                    init: Some(Box::new(Stmt::Decl {
                        name: "flep_s".into(),
                        ty: Type::Uint,
                        shared: false,
                        volatile: false,
                        array_len: None,
                        init: Some(Expr::Int(0)),
                    })),
                    cond: Some(Expr::bin(BinOp::Lt, Expr::ident("flep_s"), grid_e)),
                    step: Some(Box::new(Stmt::Assign {
                        target: Expr::ident("flep_s"),
                        op: AssignOp::Add,
                        value: slice_lit,
                    })),
                    body: Block::new(vec![inner]),
                };
            }
            _ => {}
        }
    }
}

/// The timing-level slice plan: how many sub-kernels a sliced run issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicePlan {
    /// CTAs per sub-kernel.
    pub slice_ctas: u64,
    /// Number of sub-kernels.
    pub num_slices: u64,
}

impl SlicePlan {
    /// Plans slices of `slice_ctas` CTAs over `total_ctas`.
    ///
    /// # Panics
    ///
    /// Panics if `slice_ctas` is zero.
    #[must_use]
    pub fn new(total_ctas: u64, slice_ctas: u64) -> Self {
        assert!(slice_ctas > 0, "slice size must be positive");
        SlicePlan {
            slice_ctas,
            num_slices: total_ctas.div_ceil(slice_ctas),
        }
    }

    /// The Fig. 17 equal-granularity plan: one slice covers the work FLEP
    /// completes between flag polls, `amortize × device_capacity` CTAs.
    #[must_use]
    pub fn matching_flep_granularity(total_ctas: u64, amortize: u32, capacity: u64) -> Self {
        SlicePlan::new(
            total_ctas,
            u64::from(amortize).saturating_mul(capacity).max(1),
        )
    }
}

/// Runs a sliced kernel standalone: sub-kernels issue back-to-back in one
/// CUDA stream (the same-stream barrier makes each slice wait for its
/// predecessor), returning the total makespan.
///
/// # Panics
///
/// Panics if the descriptor is not original-shape or a launch is rejected
/// by the device.
#[must_use]
pub fn run_sliced_standalone(config: GpuConfig, desc: &LaunchDesc, plan: SlicePlan) -> SimTime {
    let GridShape::Original { ctas } = desc.shape else {
        panic!("slicing applies to original-shape kernels");
    };
    let mut sc = Scenario::new(config);
    let mut offset = 0u64;
    let mut slice_idx = 0u64;
    let mut last_tag = desc.tag;
    while offset < ctas {
        let this = plan.slice_ctas.min(ctas - offset);
        let mut slice = desc.clone_without_task_fn();
        slice.name = format!("{}_slice{}", desc.name, slice_idx);
        slice.shape = GridShape::Original { ctas: this };
        slice.seed = desc.seed.wrapping_add(slice_idx);
        slice.first_task = desc.first_task + offset;
        // Distinct tags so the record of the *last* slice marks the end;
        // all slices share stream 0 and therefore serialize.
        last_tag = desc.tag.wrapping_add(slice_idx);
        slice.tag = last_tag;
        sc.launch_at(SimTime::ZERO, slice.with_stream(0));
        offset += this;
        slice_idx += 1;
    }
    let result = sc.run();
    result.records[&last_tag]
        .completed_at
        .expect("sliced run completes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flep_gpu_sim::{run_single, TaskCost};

    fn clean_cfg() -> GpuConfig {
        GpuConfig {
            launch_overhead: SimTime::ZERO,
            poll_cost: SimTime::ZERO,
            pull_cost: SimTime::ZERO,
            ..GpuConfig::k40()
        }
    }

    #[test]
    fn plan_counts_slices() {
        let p = SlicePlan::new(1000, 120);
        assert_eq!(p.num_slices, 9);
        let p2 = SlicePlan::matching_flep_granularity(14_400, 1, 120);
        assert_eq!(p2.num_slices, 120);
        let p3 = SlicePlan::matching_flep_granularity(14_400, 200, 120);
        assert_eq!(p3.num_slices, 1);
    }

    #[test]
    #[should_panic(expected = "slice size must be positive")]
    fn zero_slice_panics() {
        let _ = SlicePlan::new(10, 0);
    }

    #[test]
    fn sliced_run_without_overheads_matches_original() {
        // With zero launch overhead and uniform tasks, slicing at capacity
        // granularity costs nothing: 480 CTAs = 4 slices of 120 = 4 waves.
        let desc = LaunchDesc::new(
            "k",
            GridShape::Original { ctas: 480 },
            TaskCost::fixed(SimTime::from_us(50)),
        );
        let original = run_single(
            clean_cfg(),
            LaunchDesc::new(
                "k",
                GridShape::Original { ctas: 480 },
                TaskCost::fixed(SimTime::from_us(50)),
            ),
        );
        let sliced = run_sliced_standalone(clean_cfg(), &desc, SlicePlan::new(480, 120));
        assert_eq!(original, SimTime::from_us(200));
        assert_eq!(sliced, SimTime::from_us(200));
    }

    #[test]
    fn launch_overhead_accumulates_per_slice() {
        let cfg = GpuConfig {
            launch_overhead: SimTime::from_us(8),
            ..clean_cfg()
        };
        let desc = LaunchDesc::new(
            "k",
            GridShape::Original { ctas: 480 },
            TaskCost::fixed(SimTime::from_us(50)),
        );
        let sliced = run_sliced_standalone(cfg, &desc, SlicePlan::new(480, 120));
        // 4 slices, each 8us launch + 50us work.
        assert_eq!(sliced, SimTime::from_us(232));
    }

    #[test]
    fn finer_slices_cost_more() {
        let cfg = GpuConfig {
            launch_overhead: SimTime::from_us(8),
            ..clean_cfg()
        };
        let mk = || {
            LaunchDesc::new(
                "k",
                GridShape::Original { ctas: 960 },
                TaskCost::fixed(SimTime::from_us(20)),
            )
        };
        let coarse = run_sliced_standalone(cfg.clone(), &mk(), SlicePlan::new(960, 480));
        let fine = run_sliced_standalone(cfg, &mk(), SlicePlan::new(960, 120));
        assert!(fine > coarse, "{fine} vs {coarse}");
    }

    #[test]
    fn transform_produces_valid_minicu() {
        let src = r#"
            __global__ void k(float* a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { a[i] = 1.0f; }
            }
            void h(float* a, int n) { k<<<n / 256 + 1, 256>>>(a, n); }
        "#;
        let p = flep_minicu::parse(src).unwrap();
        let out = slice_transform(&p, 120).unwrap();
        let printed = out.to_string();
        let reparsed = flep_minicu::parse(&printed).unwrap();
        flep_minicu::analyze(&reparsed).unwrap();
        assert!(printed.contains("blockIdx.x + flep_offset"));
        assert!(printed.contains("flep_s += 120"));
    }

    #[test]
    fn zero_slice_size_rejected() {
        let p =
            flep_minicu::parse("__global__ void k(float* a) { a[blockIdx.x] = 0.0f; }").unwrap();
        assert_eq!(
            slice_transform(&p, 0).unwrap_err(),
            SliceError::ZeroSliceSize
        );
    }
}
