//! The FLEP compilation engine (§4.1 of the paper).
//!
//! The paper's offline phase transforms CUDA programs with a Clang-based
//! source-to-source compiler so that (1) GPU kernels can yield an arbitrary
//! number of SMs, and (2) the CPU code routes kernel invocations through
//! the FLEP runtime and reacts to its preemption signals. This crate is the
//! reproduction of that engine over the mini-CU language:
//!
//! * [`transform`] — the three Fig. 4 kernel forms
//!   ([`TransformMode::TemporalNaive`], [`TransformMode::TemporalAmortized`],
//!   [`TransformMode::Spatial`]) plus the Fig. 5 host state machine.
//! * [`slice_transform`] / [`run_sliced_standalone`] — the kernel-slicing
//!   baseline FLEP is compared against in Fig. 17.
//! * [`tune`] — the offline amortizing-factor search (smallest `L` with
//!   < 4% overhead); a test asserts it re-derives every Table 1 factor.
//! * [`measure_overhead`] / [`preemption_latency`] — the profiling
//!   primitives behind the tuner and the overhead model.
//!
//! Generated code is valid mini-CU: every transform's output re-parses and
//! re-analyzes, which the test-suite asserts for all eight benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod passes;
mod slicing;
mod tuner;

pub use passes::{transform, TransformError, TransformMode, TransformResult, TransformedKernel};
pub use slicing::{run_sliced_standalone, slice_transform, SliceError, SlicePlan};
pub use tuner::{
    measure_overhead, preemption_latency, tune, tune_with, CandidateResult, TuneResult,
    DEFAULT_CANDIDATES, DEFAULT_MAX_OVERHEAD,
};
