//! The watchdog's poll wheel: one coalesced timer fan-out per device
//! tick instead of conceptual per-grid poll events (DESIGN.md §12).
//!
//! The wheel tracks exactly the jobs currently holding a live grid — the
//! only jobs a watchdog tick can act on. Registration happens when a
//! grid launches, deregistration when it retires (completion, preemption,
//! eviction), both O(1); a tick then visits only registered pollers
//! instead of walking the full active-job list that a long-lived serving
//! frontend accumulates.
//!
//! # Contract
//!
//! * **Fan-out order is ascending job index.** [`PollWheel::next_after`]
//!   is a successor scan over a word bitset, so iteration visits
//!   registered indices in exactly the order the old full active-list
//!   scan visited jobs with live grids — escalation decisions and lost
//!   -note reconciliation fire in an identical sequence, keeping every
//!   golden trace byte-identical.
//! * **Same-tick churn is safe.** Iteration holds no cursor into the
//!   set: each step asks for the successor of the last *visited* index,
//!   so a poller registered mid-tick at a lower index is simply not
//!   revisited, one deregistered mid-tick is never visited again, and a
//!   poller registered and deregistered within one tick fires at most
//!   once.
//! * **The wheel never decides *when* ticks happen** — arming,
//!   re-arming, and disarm-when-idle stay with the watchdog itself; the
//!   wheel only answers *who* a tick visits.

/// Membership bitset over job indices with O(1) register/deregister and
/// an ascending successor scan for iteration.
#[derive(Debug, Default)]
pub(crate) struct PollWheel {
    /// One bit per job index, LSB-first within each 64-bit word.
    words: Vec<u64>,
    /// Registered pollers (kept so emptiness checks are O(1)).
    len: usize,
}

impl PollWheel {
    /// Registers job `idx` (no-op if already registered).
    pub(crate) fn register(&mut self, idx: usize) {
        let (w, b) = (idx / 64, idx % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        if self.words[w] & (1 << b) == 0 {
            self.words[w] |= 1 << b;
            self.len += 1;
        }
    }

    /// Deregisters job `idx` (no-op if not registered).
    pub(crate) fn deregister(&mut self, idx: usize) {
        let (w, b) = (idx / 64, idx % 64);
        if let Some(word) = self.words.get_mut(w) {
            if *word & (1 << b) != 0 {
                *word &= !(1 << b);
                self.len -= 1;
            }
        }
    }

    /// Whether job `idx` is registered.
    #[cfg(test)]
    pub(crate) fn contains(&self, idx: usize) -> bool {
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1 << (idx % 64)) != 0)
    }

    /// Number of registered pollers.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The smallest registered index strictly greater than `after`
    /// (or the smallest overall when `after` is `None`). The tick
    /// fan-out loop: `while let Some(i) = wheel.next_after(cur) { ... }`.
    pub(crate) fn next_after(&self, after: Option<usize>) -> Option<usize> {
        let start = after.map_or(0, |i| i + 1);
        let (mut w, b) = (start / 64, start % 64);
        let mut masked = self.words.get(w).copied().unwrap_or(0) & (!0u64 << b);
        loop {
            if masked != 0 {
                return Some(w * 64 + masked.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            masked = self.words[w];
        }
    }

    /// Deregisters everything (device decommission).
    pub(crate) fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::PollWheel;

    fn collect(w: &PollWheel) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = None;
        while let Some(i) = w.next_after(cur) {
            out.push(i);
            cur = Some(i);
        }
        out
    }

    #[test]
    fn iterates_in_ascending_index_order() {
        let mut w = PollWheel::default();
        for idx in [130, 2, 64, 63, 5, 129] {
            w.register(idx);
        }
        assert_eq!(collect(&w), vec![2, 5, 63, 64, 129, 130]);
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn register_is_idempotent_and_deregister_is_exact() {
        let mut w = PollWheel::default();
        w.register(7);
        w.register(7);
        assert_eq!(w.len(), 1);
        w.deregister(8); // not registered: no-op
        w.deregister(7);
        assert_eq!(w.len(), 0);
        assert_eq!(collect(&w), Vec::<usize>::new());
        w.deregister(7); // double-deregister: no-op
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn mid_scan_deregister_skips_the_removed_poller() {
        let mut w = PollWheel::default();
        for idx in [3, 70, 200] {
            w.register(idx);
        }
        let first = w.next_after(None).unwrap();
        assert_eq!(first, 3);
        // Visiting 3 deregisters 70 (e.g. a kill retired its grid).
        w.deregister(70);
        assert_eq!(w.next_after(Some(first)), Some(200));
    }

    #[test]
    fn mid_scan_register_below_cursor_is_not_revisited() {
        let mut w = PollWheel::default();
        w.register(100);
        let first = w.next_after(None).unwrap();
        assert_eq!(first, 100);
        // A reschedule during the tick launches job 4: it registers but
        // this tick's scan is already past index 4.
        w.register(4);
        assert_eq!(w.next_after(Some(first)), None);
        // The next tick sees it.
        assert_eq!(w.next_after(None), Some(4));
    }

    #[test]
    fn clear_empties_the_wheel() {
        let mut w = PollWheel::default();
        w.register(1);
        w.register(65);
        w.clear();
        assert_eq!(w.len(), 0);
        assert!(!w.contains(1));
        assert_eq!(w.next_after(None), None);
    }
}
