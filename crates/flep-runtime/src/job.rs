//! Kernel invocations as the runtime sees them: specs in, records out.

use flep_gpu_sim::{GpuConfig, GridShape, LaunchDesc, ResourceUsage, TaskCost};
use flep_sim_core::SimTime;
use flep_workloads::{Benchmark, InputClass};

/// Everything the runtime needs to launch (and relaunch) one kernel.
///
/// This is what the transformed CPU code sends to the runtime at a launch
/// site (§5.1): the kernel's identity, configuration, and the preemption
/// parameters baked in by the compilation engine.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name (for diagnostics).
    pub name: String,
    /// Per-CTA resource usage.
    pub resources: ResourceUsage,
    /// Total tasks of the invocation.
    pub total_tasks: u64,
    /// Per-task cost model.
    pub task_cost: TaskCost,
    /// Contention-model slope.
    pub mem_intensity: f64,
    /// The amortizing factor chosen offline.
    pub amortize: u32,
}

impl KernelProfile {
    /// Builds the profile of a benchmark on an input class, using its
    /// Table 1 amortizing factor.
    #[must_use]
    pub fn of(bench: &Benchmark, class: InputClass) -> Self {
        let p = bench.profile(class);
        KernelProfile {
            name: format!("{}_{:?}", bench.id.name(), class),
            resources: bench.resources,
            total_tasks: p.tasks,
            task_cost: bench.task_cost(class),
            mem_intensity: bench.mem_intensity,
            amortize: bench.table1_amortize,
        }
    }

    /// The FLEP persistent launch descriptor for (a remainder of) this
    /// kernel.
    #[must_use]
    pub fn persistent_desc(&self, tag: u64, seed: u64, first_task: u64, tasks: u64) -> LaunchDesc {
        LaunchDesc::new(
            self.name.clone(),
            GridShape::Persistent {
                total_tasks: tasks,
                amortize: self.amortize,
            },
            self.task_cost,
        )
        .with_tag(tag)
        .with_seed(seed)
        .with_resources(self.resources)
        .with_mem_intensity(self.mem_intensity)
        .with_first_task(first_task)
    }

    /// The untransformed launch descriptor (baselines).
    #[must_use]
    pub fn original_desc(&self, tag: u64, seed: u64) -> LaunchDesc {
        LaunchDesc::new(
            self.name.clone(),
            GridShape::Original {
                ctas: self.total_tasks,
            },
            self.task_cost,
        )
        .with_tag(tag)
        .with_seed(seed)
        .with_resources(self.resources)
        .with_mem_intensity(self.mem_intensity)
    }

    /// A wave-model estimate of the standalone duration (used as `T_e`
    /// when the caller provides no model prediction).
    #[must_use]
    pub fn estimate_duration(&self, config: &GpuConfig) -> SimTime {
        let capacity = config.device_capacity(&self.resources).max(1);
        self.task_cost.base * self.total_tasks.div_ceil(capacity)
    }

    /// An a-priori estimate of the cost of preempting this kernel: the
    /// batch drain (`L × task`), flag visibility, and the relaunch overhead
    /// paid on resume. Replaced by profiled averages once preemptions have
    /// been observed (§4.2).
    #[must_use]
    pub fn estimate_preempt_overhead(&self, config: &GpuConfig) -> SimTime {
        self.task_cost.base * u64::from(self.amortize)
            + config.flag_visibility_latency
            + config.launch_overhead
    }

    /// SMs needed to host all of this kernel's remaining CTAs (bounded by
    /// the device size) — the spatial-preemption target (§3).
    #[must_use]
    pub fn sms_needed(&self, config: &GpuConfig, tasks: u64) -> u32 {
        let ctas = tasks.min(config.device_capacity(&self.resources).max(1));
        config.sms_needed(&self.resources, ctas)
    }
}

/// Does the job run once or loop forever (the FFS experiments run each
/// benchmark "in an infinite loop", §6.3.3)?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepeatMode {
    /// One invocation.
    Once,
    /// Re-invoke immediately after every completion until the experiment
    /// horizon.
    Loop,
}

/// One kernel invocation submitted to the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The kernel.
    pub profile: KernelProfile,
    /// When the host process invokes it.
    pub arrival: SimTime,
    /// Priority (higher wins; equal priorities share a queue).
    pub priority: u32,
    /// The performance model's predicted duration (`T_e`). `None` falls
    /// back to the wave-model estimate.
    pub predicted: Option<SimTime>,
    /// Noise seed for this invocation.
    pub seed: u64,
    /// Once or looping.
    pub repeat: RepeatMode,
    /// Device-memory working set of the kernel, in bytes. With a swap
    /// manager configured on the co-run, launches whose working set is not
    /// resident pay the swap-in time as extra launch latency (the GPUSwap
    /// integration the paper plans in §8).
    pub working_set_bytes: u64,
    /// Tasks already completed by an earlier incarnation of this job on
    /// another device — the cluster migration resume point. The runtime
    /// starts the job's task counter here, so its first launch pulls from
    /// `resume_from` exactly as a post-kill relaunch would (FLEP's
    /// task-counter checkpoint is what makes cross-device migration safe).
    pub resume_from: u64,
    /// Owning tenant, for the cluster's placement constraints (tenant
    /// anti-affinity, spread-across-failure-domain). `None` — and any
    /// value while those constraints are off — changes nothing.
    pub tenant: Option<u32>,
}

impl JobSpec {
    /// A one-shot job with default priority 1.
    #[must_use]
    pub fn new(profile: KernelProfile, arrival: SimTime) -> Self {
        JobSpec {
            profile,
            arrival,
            priority: 1,
            predicted: None,
            seed: 0,
            repeat: RepeatMode::Once,
            working_set_bytes: 0,
            resume_from: 0,
            tenant: None,
        }
    }

    /// Resumes the job from a saved task counter (builder style): used by
    /// the cluster layer when relaunching a migrated job on a survivor.
    #[must_use]
    pub fn resuming_from(mut self, tasks_done: u64) -> Self {
        self.resume_from = tasks_done;
        self
    }

    /// Sets the priority (builder style).
    #[must_use]
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the model prediction (builder style).
    #[must_use]
    pub fn with_predicted(mut self, predicted: SimTime) -> Self {
        self.predicted = Some(predicted);
        self
    }

    /// Sets the noise seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Makes the job loop (builder style).
    #[must_use]
    pub fn looping(mut self) -> Self {
        self.repeat = RepeatMode::Loop;
        self
    }

    /// Declares the kernel's device-memory working set (builder style).
    #[must_use]
    pub fn with_working_set(mut self, bytes: u64) -> Self {
        self.working_set_bytes = bytes;
        self
    }

    /// Tags the job with its owning tenant (builder style) — consumed by
    /// the cluster's placement constraints.
    #[must_use]
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = Some(tenant);
        self
    }
}

/// The observable outcome of one job.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobRecord {
    /// Kernel name.
    pub name: String,
    /// Priority it ran at.
    pub priority: u32,
    /// Arrival time.
    pub arrival: SimTime,
    /// First time the runtime granted it the GPU.
    pub first_granted: Option<SimTime>,
    /// First time one of its CTAs was actually dispatched onto an SM
    /// (later than the grant by the launch overhead and any drain wait).
    pub first_dispatched: Option<SimTime>,
    /// Completion time of the (first) invocation.
    pub completed: Option<SimTime>,
    /// Number of times it was preempted.
    pub preemptions: u32,
    /// Total time spent waiting (active but not granted), `T_w`.
    pub waiting: SimTime,
    /// Completed invocations (1 for `Once` jobs; the loop count for `Loop`
    /// jobs).
    pub completions: u64,
    /// Observed preemption drain latencies (signal → all CTAs exited).
    pub drain_samples: Vec<SimTime>,
    /// Cumulative tasks completed across all invocations (loops included),
    /// for useful-work throughput accounting (Fig. 14).
    pub tasks_completed: u64,
}

impl JobRecord {
    /// Turnaround of the first invocation: arrival → completion.
    #[must_use]
    pub fn turnaround(&self) -> Option<SimTime> {
        self.completed.map(|c| c.saturating_sub(self.arrival))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flep_workloads::BenchmarkId;

    #[test]
    fn profile_of_benchmark_matches_table1_estimate() {
        let cfg = GpuConfig::k40();
        let b = Benchmark::get(BenchmarkId::Nn);
        let p = KernelProfile::of(&b, InputClass::Large);
        let est = p.estimate_duration(&cfg);
        assert!((est.as_us() - 15_775.0).abs() / 15_775.0 < 0.005);
        assert_eq!(p.amortize, 100);
    }

    #[test]
    fn sms_needed_for_trivial_input() {
        let cfg = GpuConfig::k40();
        let b = Benchmark::get(BenchmarkId::Va);
        let p = KernelProfile::of(&b, InputClass::Trivial);
        // 40 CTAs at 8/SM -> 5 SMs (the paper's example).
        assert_eq!(p.sms_needed(&cfg, p.total_tasks), 5);
        let large = KernelProfile::of(&b, InputClass::Large);
        assert_eq!(large.sms_needed(&cfg, large.total_tasks), 15);
    }

    #[test]
    fn preempt_overhead_scales_with_amortize() {
        let cfg = GpuConfig::k40();
        let va = KernelProfile::of(&Benchmark::get(BenchmarkId::Va), InputClass::Large);
        let cfd = KernelProfile::of(&Benchmark::get(BenchmarkId::Cfd), InputClass::Large);
        // VA: L=200 small tasks; CFD: L=1 huge tasks.
        let o_va = va.estimate_preempt_overhead(&cfg);
        let o_cfd = cfd.estimate_preempt_overhead(&cfg);
        assert!(o_va > o_cfd);
    }

    #[test]
    fn job_spec_builders() {
        let b = Benchmark::get(BenchmarkId::Mm);
        let p = KernelProfile::of(&b, InputClass::Small);
        let j = JobSpec::new(p, SimTime::from_us(3))
            .with_priority(5)
            .with_seed(9)
            .with_predicted(SimTime::from_us(1500))
            .looping();
        assert_eq!(j.priority, 5);
        assert_eq!(j.repeat, RepeatMode::Loop);
        assert_eq!(j.predicted, Some(SimTime::from_us(1500)));
    }

    #[test]
    fn record_turnaround() {
        let mut r = JobRecord {
            arrival: SimTime::from_us(10),
            ..JobRecord::default()
        };
        assert_eq!(r.turnaround(), None);
        r.completed = Some(SimTime::from_us(110));
        assert_eq!(r.turnaround(), Some(SimTime::from_us(100)));
    }
}
