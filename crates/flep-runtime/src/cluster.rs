//! The GPU cluster: N simulated devices behind one scheduler, with
//! per-device failure domains and kill-migrate-restart recovery.
//!
//! Each device is a full [`SystemWorld`] shard (its own FIFO, watchdog
//! ladder, and fault plan); the cluster adds the layers a fleet needs on
//! top:
//!
//! * **Placement** — every submitted job goes to the least-loaded healthy
//!   device, measured in resident threads with a deterministic
//!   `(load, active jobs, device id)` tie-break — the same discipline the
//!   intra-device [`PlacementIndex`](flep_gpu_sim::PlacementIndex) uses
//!   for SMs, lifted one level up.
//! * **Failure domains** — device-scoped faults (hang, transient loss,
//!   permanent death) fire per device from a private RNG stream
//!   ([`DeviceFaultPlan`]); a fault on one device cannot perturb another
//!   device's event stream or fault draws.
//! * **Migration** — FLEP's task-counter checkpoint makes a killed grid
//!   resumable *anywhere*: when a device is lost, every unfinished job is
//!   folded back to its completed-task counter and relaunched on a
//!   survivor ([`RecoveryAction::Migrated`]), bounded by a migration
//!   budget ([`RuntimeError::MigrationFailed`] past it).
//! * **Drain-and-deregister** — a device can be taken out of rotation
//!   gracefully: no new placements, resident jobs run to completion, then
//!   the device deregisters.
//! * **Correlated failure domains** — an optional `zone → rack → device`
//!   topology ([`FailureTopology`]) with fleet-level outage events
//!   (zone-wide transient loss, rack power-cycles with staggered
//!   per-device rejoin latencies) drawn on their own RNG stream
//!   ([`CorrelatedFaultPlan`]), so real burst-failure regimes replay
//!   exactly from a seed.
//! * **Health scoring and circuit breaking** — with
//!   [`ClusterConfig::health`] set, every fault decays into a per-device
//!   EWMA score; past the threshold the breaker opens and quarantines
//!   the device out of rotation even while it looks healthy, and only a
//!   completed deterministic probe grid re-admits it
//!   (closed → open → half-open, DESIGN.md §14).
//! * **Placement constraints** — tenant anti-affinity and
//!   spread-across-failure-domain ([`PlacementConfig`]) layer extra key
//!   components onto the least-loaded index, keeping the same
//!   deterministic tie-breaking.
//!
//! # Determinism
//!
//! With one device and no device faults, a cluster run is byte-identical
//! to driving the underlying [`SystemWorld`] directly: the cluster wraps
//! each shard event one-to-one and preserves buffer drain order, so the
//! engine assigns identical `(time, seq)` keys. Device faults draw from
//! per-device streams seeded independently of every workload stream, so
//! enabling them never reshuffles grid-level fault draws, and all cluster
//! decisions (placement, migration targets) are pure functions of
//! deterministic state — `FLEP_THREADS` cannot change any byte of output.

use std::collections::VecDeque;

use flep_gpu_sim::{
    CorrelatedFaultConfig, CorrelatedFaultKind, CorrelatedFaultPlan, DeviceFaultConfig,
    DeviceFaultKind, DeviceFaultPlan, FailureTopology, FaultConfig, FaultPlan, GpuConfig,
    GpuDevice, ResourceUsage, TaskCost,
};
use flep_metrics::RecoverySummary;
use flep_sim_core::{
    EventQueue, PartitionedSimulation, RunOutcome, Scheduler, SimTime, Simulation, World,
};

use crate::driver::DEFAULT_EVENT_BUDGET;
use crate::health::{BreakerState, DeviceHealth, HealthConfig};
use crate::job::{JobRecord, JobSpec, KernelProfile};
use crate::world::{
    Policy, RecoveryAction, RecoveryEvent, RuntimeError, SystemEvent, SystemWorld, WatchdogConfig,
};

/// Shard-job sentinel marking a breaker probe grid: probes live in the
/// shard's job table but have no cluster job, so every `map` lookup must
/// treat this value specially.
const PROBE: usize = usize::MAX;

/// Cluster-wide configuration: the per-device template plus the failure
/// and migration policy.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of devices (at least 1).
    pub devices: u32,
    /// Per-device hardware configuration (all devices identical).
    pub gpu: GpuConfig,
    /// Scheduling policy, applied per shard.
    pub policy: Policy,
    /// Watchdog configuration, applied per shard. `None` keeps the
    /// watchdog off (so fault-free runs replay [`CoRun`](crate::CoRun)'s
    /// exact event stream) — unless any fault injection is configured,
    /// which implies a default watchdog exactly as `CoRun` does.
    pub watchdog: Option<WatchdogConfig>,
    /// Grid-level fault injection. Each device derives its own plan from
    /// this seed (device 0 uses it verbatim, so a one-device cluster
    /// replays single-device runs bit-for-bit).
    pub grid_faults: Option<FaultConfig>,
    /// Device-level fault injection (hang / transient loss / death).
    pub device_faults: Option<DeviceFaultConfig>,
    /// Scripted device faults `(time, device, kind)` — injected in
    /// addition to (and independent of) the seeded plan; the reproducible
    /// way to stage "device 3 dies mid-run" scenarios.
    pub scripted_faults: Vec<(SimTime, u32, DeviceFaultKind)>,
    /// Migration budget per job: one more eviction than this fails the
    /// job with [`RuntimeError::MigrationFailed`].
    pub max_migrations: u32,
    /// The `zone → rack → device` failure-domain tree. `None` treats the
    /// fleet as one flat rack in one zone (for correlated-fault targeting
    /// and the spread placement constraint alike).
    pub topology: Option<FailureTopology>,
    /// Seeded correlated outage injection (zone outages, rack
    /// power-cycles). `None` draws nothing.
    pub correlated_faults: Option<CorrelatedFaultConfig>,
    /// Scripted correlated outages — the reproducible way to stage "zone
    /// 0 drops at t" scenarios, independent of the seeded plan.
    pub scripted_correlated: Vec<(SimTime, CorrelatedFaultKind)>,
    /// Health scoring + circuit breaker. `None` (the default) keeps the
    /// control plane purely reactive — byte-identical to builds without
    /// the health layer.
    pub health: Option<HealthConfig>,
    /// Placement constraints layered onto the least-loaded index.
    pub placement: PlacementConfig,
}

/// Optional placement constraints. Both default off, which degrades the
/// placement key exactly to the original
/// `(resident threads, active jobs, device id)` tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementConfig {
    /// Prefer devices hosting fewer jobs of the submitting tenant
    /// (spreads one tenant's jobs across devices before load decides).
    pub anti_affinity: bool,
    /// Prefer failure domains (racks) hosting fewer jobs of the
    /// submitting tenant, so one rack outage cannot take out all of a
    /// tenant's work. Ranked after anti-affinity, before load.
    pub spread: bool,
}

impl ClusterConfig {
    /// A cluster of `devices` identical GPUs with default watchdog and
    /// migration settings and no fault injection.
    #[must_use]
    pub fn new(devices: u32, gpu: GpuConfig, policy: Policy) -> Self {
        ClusterConfig {
            devices: devices.max(1),
            gpu,
            policy,
            watchdog: None,
            grid_faults: None,
            device_faults: None,
            scripted_faults: Vec::new(),
            max_migrations: 8,
            topology: None,
            correlated_faults: None,
            scripted_correlated: Vec::new(),
            health: None,
            placement: PlacementConfig::default(),
        }
    }
}

/// Lifecycle of one device in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// In rotation, accepting placements.
    Healthy,
    /// Hung: resident work executes but doorbells are lost; still accepts
    /// placements (the host cannot tell a hang from a slow drain until
    /// the watchdog escalates).
    Hung,
    /// Transiently lost; rejoins after the reset latency.
    Resetting,
    /// Being drained for deregistration: no new placements, resident jobs
    /// run to completion.
    Draining,
    /// Permanently out (death, or drain completed).
    Dead,
}

/// What happened to a device, for the cluster's device-event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceEventKind {
    /// A device fault fired (seeded or scripted).
    Fault(DeviceFaultKind),
    /// The device was caught in a correlated outage (its zone dropped or
    /// its rack power-cycled); applied as a transient loss with the
    /// outage's own rejoin latency.
    CorrelatedFault(CorrelatedFaultKind),
    /// The device rejoined rotation (hang cleared or reset finished).
    Restored,
    /// A graceful drain was requested.
    DrainStarted,
    /// The drain finished; the device deregistered.
    Deregistered,
    /// The circuit breaker opened: quarantined out of rotation.
    Quarantined,
    /// A breaker probe grid was launched (breaker half-open).
    ProbeLaunched,
    /// A probe completed; the breaker closed and the device rejoined the
    /// rotation.
    Readmitted,
}

/// One entry of the device lifecycle log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Which device.
    pub device: u32,
    /// What happened.
    pub kind: DeviceEventKind,
}

/// Events circulating in a cluster simulation.
#[derive(Debug)]
pub enum ClusterEvent {
    /// A shard-internal event, routed to device `device`'s world.
    Shard {
        /// Owning device.
        device: u32,
        /// The wrapped runtime event.
        ev: SystemEvent,
    },
    /// Pre-registered job `idx` arrives and is placed.
    Arrival(usize),
    /// A device fault fires on `device`.
    DeviceFault {
        /// The failing device.
        device: u32,
        /// The fault class.
        kind: DeviceFaultKind,
    },
    /// Device `device` rejoins rotation, if its generation still matches
    /// (a later fault invalidates earlier restores).
    DeviceRestore {
        /// The recovering device.
        device: u32,
        /// Generation stamp taken when the restore was scheduled.
        gen: u64,
    },
    /// A correlated outage (zone/rack) fires across its failure domain.
    CorrelatedFault {
        /// The outage class and target domain.
        kind: CorrelatedFaultKind,
    },
    /// The breaker's re-admission attempt for `device` comes due: launch
    /// a probe if the device looks healthy, otherwise back off.
    BreakerProbe {
        /// The quarantined device.
        device: u32,
    },
}

/// Where a cluster job currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CJobState {
    /// Registered, waiting for its arrival event.
    Future,
    /// Placed on a device (shard job index inside).
    Placed { device: u32, shard_job: usize },
    /// Evicted (or arrived) with no eligible device; waiting for one.
    Parked,
    /// Finished all tasks.
    Done,
    /// Abandoned (launch failure or migration budget exhausted).
    Failed,
}

/// Cluster-level per-job state.
#[derive(Debug)]
struct ClusterJob {
    spec: JobSpec,
    state: CJobState,
    /// Absolute tasks completed across all incarnations.
    done: u64,
    /// Evictions survived so far.
    migrations: u32,
    /// Device of the last incarnation (for migration provenance).
    last_device: Option<u32>,
    /// Records of dead incarnations, folded in migration order.
    record: Option<JobRecord>,
}

/// One device shard: a full runtime world plus its failure-domain state.
struct Shard {
    sys: SystemWorld,
    state: DeviceState,
    /// Bumped on every state transition; stale restore events (scheduled
    /// before a newer fault) carry an older generation and are dropped.
    gen: u64,
    plan: Option<DeviceFaultPlan>,
    /// Shard job index → cluster job index ([`PROBE`] for probe grids).
    map: Vec<usize>,
    /// Health score + breaker position (untouched when health is off).
    health: DeviceHealth,
}

/// The cluster: shards plus placement, migration, and accounting.
pub struct GpuCluster {
    shards: Vec<Shard>,
    fault_cfg: DeviceFaultConfig,
    max_migrations: u32,
    /// Failure-domain tree (flat single-rack when not configured).
    topo: FailureTopology,
    /// Correlated outage magnitudes (durations/staggers), also used for
    /// scripted correlated events.
    corr_cfg: CorrelatedFaultConfig,
    /// Seeded correlated outage schedule.
    corr_plan: Option<CorrelatedFaultPlan>,
    health_cfg: Option<HealthConfig>,
    placement: PlacementConfig,
    jobs: Vec<ClusterJob>,
    /// Jobs waiting for any eligible device, FIFO.
    parked: VecDeque<usize>,
    /// Cluster-level errors (device loss, migration failures).
    errors: Vec<RuntimeError>,
    /// Cluster-level recoveries (migrations).
    recoveries: Vec<RecoveryEvent>,
    device_events: Vec<DeviceEvent>,
    completed_log: Vec<(SimTime, usize)>,
    failed_log: Vec<(SimTime, usize)>,
    /// `(time, job)` per completed migration, for frontend accounting.
    migrated_log: Vec<(SimTime, usize)>,
    /// `(time, job, device)` per placement — the evidence trail the
    /// quarantine invariant checks. Only recorded when health is on, so
    /// serving-scale runs without a breaker pay nothing.
    placements: Vec<(SimTime, usize, u32)>,
    pending: Vec<(SimTime, ClusterEvent)>,
    scratch: Vec<(SimTime, usize)>,
    /// Scratch for placement-constraint tallies (one slot per device).
    tenant_scratch: Vec<u32>,
}

impl std::fmt::Debug for GpuCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuCluster")
            .field("devices", &self.shards.len())
            .field("jobs", &self.jobs.len())
            .field("parked", &self.parked.len())
            .finish()
    }
}

/// Salts the grid-fault seed per device so sibling devices draw
/// independent fault sequences. Device 0 keeps the seed verbatim: a
/// one-device cluster replays existing single-device goldens bit-for-bit.
fn salt_seed(seed: u64, device: u32) -> u64 {
    seed ^ u64::from(device).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl GpuCluster {
    /// Builds the cluster and the initial events the driver must
    /// schedule: one watchdog tick per device, each device's first seeded
    /// fault, then the scripted faults in config order.
    #[must_use]
    pub fn new(cfg: &ClusterConfig) -> (GpuCluster, Vec<(SimTime, ClusterEvent)>) {
        let n = cfg.devices.max(1);
        // Faults without recovery machinery would livelock, so any fault
        // injection implies a default watchdog — the `CoRun` rule.
        let has_faults = cfg.grid_faults.is_some()
            || cfg.device_faults.is_some()
            || !cfg.scripted_faults.is_empty()
            || cfg.correlated_faults.is_some()
            || !cfg.scripted_correlated.is_empty();
        let watchdog = cfg
            .watchdog
            .or_else(|| has_faults.then(WatchdogConfig::default));
        let mut initial = Vec::new();
        let mut shards = Vec::with_capacity(n as usize);
        for d in 0..n {
            let mut device = GpuDevice::new(cfg.gpu.clone());
            device.set_span_collection(false);
            if let Some(gf) = cfg.grid_faults {
                let salted = FaultConfig {
                    seed: salt_seed(gf.seed, d),
                    ..gf
                };
                device.set_fault_plan(Some(FaultPlan::new(salted)));
            }
            let mut sys = SystemWorld::new(device, cfg.policy, Vec::new(), None);
            if let Some(wd) = watchdog {
                sys.set_watchdog(wd);
                initial.push((
                    wd.poll_interval,
                    ClusterEvent::Shard {
                        device: d,
                        ev: SystemEvent::Watchdog,
                    },
                ));
            }
            let plan = cfg.device_faults.map(|fc| DeviceFaultPlan::new(fc, d));
            shards.push(Shard {
                sys,
                state: DeviceState::Healthy,
                gen: 0,
                plan,
                map: Vec::new(),
                health: DeviceHealth::default(),
            });
        }
        // Draw each device's first seeded fault (device order).
        for (d, shard) in shards.iter_mut().enumerate() {
            if let Some(plan) = shard.plan.as_mut() {
                if let Some((at, kind)) = plan.next_fault() {
                    initial.push((
                        at,
                        ClusterEvent::DeviceFault {
                            device: d as u32,
                            kind,
                        },
                    ));
                }
            }
        }
        for &(at, device, kind) in &cfg.scripted_faults {
            if device < n {
                initial.push((at, ClusterEvent::DeviceFault { device, kind }));
            }
        }
        // The failure-domain tree: configured, or the whole fleet as one
        // flat rack. Correlated targeting and spread placement both use it.
        let topo = cfg.topology.unwrap_or_else(|| FailureTopology::flat(n));
        // An all-quiet config (both rates zero) draws nothing and must
        // not count as a live fault source either — otherwise the
        // settled-early-stop below would cut the run at a different point
        // than the identical config-free run.
        let mut corr_plan = cfg
            .correlated_faults
            .filter(|cc| cc.total_rate() > 0.0)
            .map(|cc| CorrelatedFaultPlan::new(cc, topo));
        if let Some(plan) = corr_plan.as_mut() {
            if let Some((at, kind)) = plan.next_event() {
                initial.push((at, ClusterEvent::CorrelatedFault { kind }));
            }
        }
        for &(at, kind) in &cfg.scripted_correlated {
            initial.push((at, ClusterEvent::CorrelatedFault { kind }));
        }
        let cluster = GpuCluster {
            shards,
            fault_cfg: cfg
                .device_faults
                .unwrap_or_else(|| DeviceFaultConfig::quiet(0)),
            max_migrations: cfg.max_migrations,
            topo,
            corr_cfg: cfg
                .correlated_faults
                .unwrap_or_else(|| CorrelatedFaultConfig::quiet(0)),
            corr_plan,
            health_cfg: cfg.health,
            placement: cfg.placement,
            jobs: Vec::new(),
            parked: VecDeque::new(),
            errors: Vec::new(),
            recoveries: Vec::new(),
            device_events: Vec::new(),
            completed_log: Vec::new(),
            failed_log: Vec::new(),
            migrated_log: Vec::new(),
            placements: Vec::new(),
            pending: Vec::new(),
            scratch: Vec::new(),
            tenant_scratch: Vec::new(),
        };
        (cluster, initial)
    }

    /// Number of devices (in any state).
    #[must_use]
    pub fn devices(&self) -> u32 {
        self.shards.len() as u32
    }

    /// A device's current lifecycle state.
    #[must_use]
    pub fn device_state(&self, device: u32) -> DeviceState {
        self.shards[device as usize].state
    }

    /// The device lifecycle log.
    #[must_use]
    pub fn device_events(&self) -> &[DeviceEvent] {
        &self.device_events
    }

    /// Completed migrations so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrated_log.len() as u64
    }

    /// Pre-registers a job without placing it; an
    /// [`ClusterEvent::Arrival`] with the returned index places it at its
    /// arrival time. Used by the [`ClusterRun`] driver so cluster job
    /// indices match spec order regardless of arrival times.
    pub fn register(&mut self, spec: JobSpec) -> usize {
        let idx = self.jobs.len();
        self.jobs.push(ClusterJob {
            spec,
            state: CJobState::Future,
            done: 0,
            migrations: 0,
            last_device: None,
            record: None,
        });
        idx
    }

    /// Submits a job dynamically at `now` (the serving frontend's hook):
    /// registers and immediately places it on the least-loaded eligible
    /// device. Returns the cluster job index.
    pub fn submit(&mut self, now: SimTime, spec: JobSpec) -> usize {
        let idx = self.register(spec);
        self.place(now, idx);
        idx
    }

    /// Whether a device can take new placements: in-rotation lifecycle
    /// state *and* a closed breaker.
    fn eligible(&self, d: usize) -> bool {
        let s = &self.shards[d];
        matches!(s.state, DeviceState::Healthy | DeviceState::Hung)
            && s.health.breaker == BreakerState::Closed
    }

    /// Devices currently accepting placements — the serving frontend's
    /// surviving-capacity signal for brownout tiers.
    #[must_use]
    pub fn placement_eligible(&self) -> u32 {
        (0..self.shards.len()).filter(|&d| self.eligible(d)).count() as u32
    }

    /// A device's breaker position.
    #[must_use]
    pub fn breaker_state(&self, device: u32) -> BreakerState {
        self.shards[device as usize].health.breaker
    }

    /// The placement log `(time, job, device)` — recorded only when
    /// health is configured (the chaos suite's quarantine evidence).
    #[must_use]
    pub fn placements(&self) -> &[(SimTime, usize, u32)] {
        &self.placements
    }

    /// The least-loaded eligible device: fewest resident threads, then
    /// fewest active jobs (so same-instant submissions spread before any
    /// CTA dispatches), then lowest device id. Placement constraints
    /// prepend tenant tallies to that key — anti-affinity (same-tenant
    /// jobs on the device), then domain spread (same-tenant jobs in the
    /// device's rack) — and are identically zero when disabled, so the
    /// constrained key degrades to the original tuple byte-for-byte.
    fn pick_device(&mut self, tenant: Option<u32>) -> Option<u32> {
        let constrained =
            (self.placement.anti_affinity || self.placement.spread) && tenant.is_some();
        let mut tenant_scratch = std::mem::take(&mut self.tenant_scratch);
        if constrained {
            // Same-tenant active-job tally per device, one O(jobs) pass.
            tenant_scratch.clear();
            tenant_scratch.resize(self.shards.len(), 0);
            for job in &self.jobs {
                if let CJobState::Placed { device, .. } = job.state {
                    if job.spec.tenant == tenant {
                        tenant_scratch[device as usize] += 1;
                    }
                }
            }
        }
        let rack_count = |d: usize| -> u32 {
            self.topo
                .rack_devices(self.topo.rack_of(d as u32))
                .map(|rd| tenant_scratch.get(rd as usize).copied().unwrap_or(0))
                .sum()
        };
        let picked = self
            .shards
            .iter()
            .enumerate()
            .filter(|&(d, _)| self.eligible(d))
            .min_by_key(|&(d, s)| {
                let anti = if constrained && self.placement.anti_affinity {
                    tenant_scratch[d]
                } else {
                    0
                };
                let spread = if constrained && self.placement.spread {
                    rack_count(d)
                } else {
                    0
                };
                (
                    anti,
                    spread,
                    s.sys.device().resident_threads(),
                    s.sys.active_count(),
                    d,
                )
            })
            .map(|(d, _)| d as u32);
        self.tenant_scratch = tenant_scratch;
        picked
    }

    /// Places (or parks) cluster job `idx`, resuming from its saved task
    /// counter. Emits the [`RecoveryAction::Migrated`] record when this
    /// placement completes a migration.
    fn place(&mut self, now: SimTime, idx: usize) {
        debug_assert!(matches!(
            self.jobs[idx].state,
            CJobState::Future | CJobState::Parked
        ));
        let Some(device) = self.pick_device(self.jobs[idx].spec.tenant) else {
            self.jobs[idx].state = CJobState::Parked;
            if !self.parked.contains(&idx) {
                self.parked.push_back(idx);
            }
            return;
        };
        if self.health_cfg.is_some() {
            self.placements.push((now, idx, device));
        }
        let job = &mut self.jobs[idx];
        let spec = job.spec.clone().resuming_from(job.done);
        let from = job.last_device;
        job.last_device = Some(device);
        let shard = &mut self.shards[device as usize];
        let shard_job = shard.sys.submit(now, spec);
        debug_assert_eq!(shard_job, shard.map.len());
        shard.map.push(idx);
        self.jobs[idx].state = CJobState::Placed { device, shard_job };
        if let Some(from) = from {
            self.recoveries.push(RecoveryEvent {
                at: now,
                job: idx,
                action: RecoveryAction::Migrated { from, to: device },
            });
            self.migrated_log.push((now, idx));
        }
        self.absorb_shard(now, device);
    }

    /// Pulls a shard's completion/failure logs and buffered follow-up
    /// events into the cluster after any interaction with it.
    fn absorb_shard(&mut self, now: SimTime, device: u32) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let shard = &mut self.shards[device as usize];
        let mut probe_done = false;
        let mut probe_failed = false;

        scratch.clear();
        shard.sys.drain_completions_into(&mut scratch);
        for &(t, sidx) in &scratch {
            let cidx = shard.map[sidx];
            if cidx == PROBE {
                probe_done = true;
                continue;
            }
            let job = &mut self.jobs[cidx];
            job.done = job.spec.profile.total_tasks;
            job.state = CJobState::Done;
            self.completed_log.push((t, cidx));
        }

        scratch.clear();
        let shard = &mut self.shards[device as usize];
        shard.sys.drain_failures_into(&mut scratch);
        for &(t, sidx) in &scratch {
            let cidx = shard.map[sidx];
            if cidx == PROBE {
                probe_failed = true;
                continue;
            }
            self.jobs[cidx].state = CJobState::Failed;
            self.failed_log.push((t, cidx));
        }

        scratch.clear();
        self.scratch = scratch;
        if probe_done {
            self.on_probe_done(now, device);
        }
        if probe_failed {
            self.on_probe_failed(now, device);
        }

        let mut pending = std::mem::take(&mut self.pending);
        self.shards[device as usize]
            .sys
            .for_each_pending(|at, ev| pending.push((at, ClusterEvent::Shard { device, ev })));
        self.pending = pending;

        // A draining device deregisters the moment its last job retires.
        let shard = &mut self.shards[device as usize];
        if shard.state == DeviceState::Draining && shard.sys.active_count() == 0 {
            shard.state = DeviceState::Dead;
            shard.gen += 1;
            self.device_events.push(DeviceEvent {
                at: now,
                device,
                kind: DeviceEventKind::Deregistered,
            });
        }
    }

    /// Starts a graceful drain: the device leaves the placement rotation
    /// immediately, resident jobs run to completion, then it deregisters.
    pub fn drain_device(&mut self, now: SimTime, device: u32) {
        let shard = &mut self.shards[device as usize];
        if !matches!(shard.state, DeviceState::Healthy | DeviceState::Hung) {
            return;
        }
        self.device_events.push(DeviceEvent {
            at: now,
            device,
            kind: DeviceEventKind::DrainStarted,
        });
        shard.state = DeviceState::Draining;
        shard.gen += 1;
        if shard.sys.active_count() == 0 {
            shard.state = DeviceState::Dead;
            self.device_events.push(DeviceEvent {
                at: now,
                device,
                kind: DeviceEventKind::Deregistered,
            });
        }
    }

    /// Applies one device fault (seeded or scripted), then draws the
    /// shard's next seeded fault so the per-device schedule stays chained.
    fn on_device_fault(&mut self, now: SimTime, device: u32, kind: DeviceFaultKind) {
        let d = device as usize;
        if self.shards[d].state == DeviceState::Dead {
            return; // Dead devices neither fault further nor re-chain.
        }
        self.device_events.push(DeviceEvent {
            at: now,
            device,
            kind: DeviceEventKind::Fault(kind),
        });
        match kind {
            DeviceFaultKind::Hang => {
                // Only a healthy (or draining) device can hang; a device
                // already hung or resetting keeps its current trajectory.
                if matches!(
                    self.shards[d].state,
                    DeviceState::Healthy | DeviceState::Draining
                ) {
                    let was_draining = self.shards[d].state == DeviceState::Draining;
                    self.shards[d].sys.device_mut().set_doorbells_lost(true);
                    if !was_draining {
                        self.shards[d].state = DeviceState::Hung;
                    }
                    self.shards[d].gen += 1;
                    let gen = self.shards[d].gen;
                    self.pending.push((
                        now + self.fault_cfg.hang_duration,
                        ClusterEvent::DeviceRestore { device, gen },
                    ));
                }
                self.note_fault(now, device, |hc| hc.hang_weight);
            }
            DeviceFaultKind::TransientLoss => {
                self.transient_loss(now, device, self.fault_cfg.reset_latency);
                self.note_fault(now, device, |hc| hc.loss_weight);
            }
            DeviceFaultKind::Death => {
                self.errors.push(RuntimeError::DeviceLost {
                    device,
                    permanent: true,
                });
                self.shards[d].state = DeviceState::Dead;
                self.shards[d].gen += 1;
                self.evacuate(now, device);
                self.device_events.push(DeviceEvent {
                    at: now,
                    device,
                    kind: DeviceEventKind::Deregistered,
                });
            }
        }
        // Chain the next seeded fault (dead devices stop drawing).
        if self.shards[d].state != DeviceState::Dead {
            if let Some(plan) = self.shards[d].plan.as_mut() {
                if let Some((at, next)) = plan.next_fault() {
                    debug_assert!(at > now);
                    self.pending
                        .push((at, ClusterEvent::DeviceFault { device, kind: next }));
                }
            }
        }
    }

    /// Transient device loss with an explicit rejoin latency: the shared
    /// core of the seeded `TransientLoss` class and every correlated
    /// outage. No-op if the device is already resetting or dead.
    fn transient_loss(&mut self, now: SimTime, device: u32, rejoin_after: SimTime) {
        let d = device as usize;
        if matches!(
            self.shards[d].state,
            DeviceState::Resetting | DeviceState::Dead
        ) {
            return;
        }
        self.errors.push(RuntimeError::DeviceLost {
            device,
            permanent: false,
        });
        // Leave rotation *before* evacuating, or the evicted jobs would
        // be placed right back on this device.
        self.shards[d].state = DeviceState::Resetting;
        self.shards[d].gen += 1;
        let gen = self.shards[d].gen;
        self.evacuate(now, device);
        self.pending.push((
            now + rejoin_after,
            ClusterEvent::DeviceRestore { device, gen },
        ));
    }

    /// Expands one correlated outage over its failure domain: every
    /// affected device (ascending id) takes a transient loss with the
    /// outage's own rejoin latency — shared for a zone outage, staggered
    /// per rack position for a power-cycle — then the next seeded
    /// correlated event is chained.
    fn on_correlated_fault(&mut self, now: SimTime, kind: CorrelatedFaultKind) {
        let n = self.shards.len() as u32;
        let targets: Vec<(u32, SimTime)> = match kind {
            CorrelatedFaultKind::ZoneOutage { zone } => self
                .topo
                .zone_devices(zone)
                .filter(|&d| d < n)
                .map(|d| (d, self.corr_cfg.zone_outage_duration))
                .collect(),
            CorrelatedFaultKind::RackPowerCycle { rack } => self
                .topo
                .rack_devices(rack)
                .filter(|&d| d < n)
                .enumerate()
                .map(|(i, d)| {
                    (
                        d,
                        self.corr_cfg.rack_reset_base + self.corr_cfg.rack_reset_stagger * i as u64,
                    )
                })
                .collect(),
        };
        for (device, rejoin_after) in targets {
            if self.shards[device as usize].state == DeviceState::Dead {
                continue;
            }
            self.device_events.push(DeviceEvent {
                at: now,
                device,
                kind: DeviceEventKind::CorrelatedFault(kind),
            });
            self.transient_loss(now, device, rejoin_after);
            self.note_fault(now, device, |hc| hc.loss_weight);
        }
        if let Some(plan) = self.corr_plan.as_mut() {
            if let Some((at, next)) = plan.next_event() {
                debug_assert!(at > now);
                self.pending
                    .push((at, ClusterEvent::CorrelatedFault { kind: next }));
            }
        }
    }

    /// Feeds one fault observation into a device's health score and runs
    /// the breaker state machine: past the threshold the breaker opens
    /// (quarantine), a fault during probation re-opens it, and any open
    /// breaker keeps exactly one probe scheduled. No-op without a health
    /// config, and never for dead devices (nothing to re-admit).
    fn note_fault(&mut self, now: SimTime, device: u32, weight: impl Fn(&HealthConfig) -> f64) {
        let Some(hc) = self.health_cfg else { return };
        let d = device as usize;
        if self.shards[d].state == DeviceState::Dead {
            return;
        }
        let health = &mut self.shards[d].health;
        let score = health.observe(now, weight(&hc), hc.ewma_tau);
        match health.breaker {
            BreakerState::Closed if score >= hc.open_threshold => {
                health.breaker = BreakerState::Open;
                self.device_events.push(DeviceEvent {
                    at: now,
                    device,
                    kind: DeviceEventKind::Quarantined,
                });
                self.schedule_probe(now, device);
            }
            BreakerState::HalfOpen => {
                // The device faulted while its probe was in flight: the
                // probation failed, back off harder.
                health.breaker = BreakerState::Open;
                health.probe_failures = health.probe_failures.saturating_add(1);
                self.schedule_probe(now, device);
            }
            BreakerState::Open => self.schedule_probe(now, device),
            BreakerState::Closed => {}
        }
    }

    /// Arms the (single) re-admission probe for an open breaker, with the
    /// exponential-backoff cooldown.
    fn schedule_probe(&mut self, now: SimTime, device: u32) {
        let Some(hc) = self.health_cfg else { return };
        let health = &mut self.shards[device as usize].health;
        if health.probe_pending {
            return;
        }
        health.probe_pending = true;
        self.pending.push((
            now + hc.probe_delay(health.probe_failures),
            ClusterEvent::BreakerProbe { device },
        ));
    }

    /// The probe timer fired: if the device looks healthy, enter
    /// half-open and launch the probe grid; if it is mid-fault, count a
    /// failed attempt and back off; if it died, stay open forever.
    fn on_breaker_probe(&mut self, now: SimTime, device: u32) {
        let Some(hc) = self.health_cfg else { return };
        let d = device as usize;
        self.shards[d].health.probe_pending = false;
        if self.shards[d].health.breaker != BreakerState::Open {
            return;
        }
        match self.shards[d].state {
            DeviceState::Dead => {} // Permanent: never re-admitted.
            DeviceState::Healthy => {
                self.shards[d].health.breaker = BreakerState::HalfOpen;
                self.device_events.push(DeviceEvent {
                    at: now,
                    device,
                    kind: DeviceEventKind::ProbeLaunched,
                });
                let spec = probe_spec(now, &hc);
                let shard = &mut self.shards[d];
                let shard_job = shard.sys.submit(now, spec);
                debug_assert_eq!(shard_job, shard.map.len());
                shard.map.push(PROBE);
                self.absorb_shard(now, device);
            }
            // Hung / resetting / draining: not probe-worthy yet.
            _ => {
                let health = &mut self.shards[d].health;
                health.probe_failures = health.probe_failures.saturating_add(1);
                self.schedule_probe(now, device);
            }
        }
    }

    /// A probe grid completed: if the breaker is still half-open the
    /// device has earned its way back — close the breaker, reset the
    /// backoff, and land parked jobs. A completion arriving after a
    /// fresh fault already re-opened the breaker proves nothing.
    fn on_probe_done(&mut self, now: SimTime, device: u32) {
        if self.health_cfg.is_none()
            || self.shards[device as usize].health.breaker != BreakerState::HalfOpen
        {
            return;
        }
        let health = &mut self.shards[device as usize].health;
        health.breaker = BreakerState::Closed;
        health.probe_failures = 0;
        // A clean probation wipes the score: re-admission is a fresh
        // start, not a countdown to re-tripping on stale history.
        health.score = 0.0;
        self.device_events.push(DeviceEvent {
            at: now,
            device,
            kind: DeviceEventKind::Readmitted,
        });
        self.land_parked(now);
    }

    /// A probe grid failed terminally (e.g. launch retries exhausted):
    /// the probation failed without a device fault — back off and retry.
    fn on_probe_failed(&mut self, now: SimTime, device: u32) {
        if self.health_cfg.is_none() {
            return;
        }
        let health = &mut self.shards[device as usize].health;
        if health.breaker == BreakerState::HalfOpen {
            health.breaker = BreakerState::Open;
            health.probe_failures = health.probe_failures.saturating_add(1);
            self.schedule_probe(now, device);
        }
    }

    /// Lands parked jobs FIFO while capacity lasts.
    fn land_parked(&mut self, now: SimTime) {
        while let Some(idx) = self.parked.pop_front() {
            if self.jobs[idx].state == CJobState::Parked {
                self.place(now, idx);
                if self.jobs[idx].state == CJobState::Parked {
                    break; // Re-parked: still no capacity; stop trying.
                }
            }
        }
    }

    /// Kill-migrate-restart: decommissions a lost device's world, folds
    /// every evicted job back to its completed-task counter, and
    /// relaunches each on a survivor (or parks it when none is eligible).
    fn evacuate(&mut self, now: SimTime, device: u32) {
        // Settle completions that already landed before taking the world
        // apart, so a finished job is never "migrated".
        self.absorb_shard(now, device);
        let evicted = self.shards[device as usize].sys.decommission(now);
        for e in evicted {
            let cidx = self.shards[device as usize].map[e.idx];
            if cidx == PROBE {
                // The probe grid died with its device: a failed probation.
                self.on_probe_failed(now, device);
                continue;
            }
            // Each job actually forced off this device (not merely
            // finished with a lost notification) is one more strike —
            // flapping devices accumulate migration weight.
            if e.tasks_done < self.jobs[cidx].spec.profile.total_tasks {
                self.note_fault(now, device, |hc| hc.migration_weight);
            }
            let job = &mut self.jobs[cidx];
            debug_assert!(matches!(job.state, CJobState::Placed { .. }));
            job.done = e.tasks_done;
            fold_record(&mut job.record, e.record);
            let total = job.spec.profile.total_tasks;
            if job.done >= total {
                // The grid had in fact finished; only its notification was
                // lost with the device. Count the completion here.
                job.state = CJobState::Done;
                self.completed_log.push((now, cidx));
                continue;
            }
            job.migrations += 1;
            if job.migrations > self.max_migrations {
                let attempts = job.migrations - 1;
                job.state = CJobState::Failed;
                self.errors.push(RuntimeError::MigrationFailed {
                    job: cidx,
                    attempts,
                });
                self.failed_log.push((now, cidx));
                continue;
            }
            job.state = CJobState::Parked;
            self.place(now, cidx);
        }
    }

    /// Handles a device rejoining rotation after a hang or reset.
    fn on_device_restore(&mut self, now: SimTime, device: u32, gen: u64) {
        let d = device as usize;
        if self.shards[d].gen != gen {
            return; // A newer fault superseded this restore.
        }
        match self.shards[d].state {
            DeviceState::Hung => {
                self.shards[d].sys.device_mut().set_doorbells_lost(false);
                self.shards[d].state = DeviceState::Healthy;
            }
            DeviceState::Resetting => {
                self.shards[d].state = DeviceState::Healthy;
            }
            DeviceState::Draining => {
                // A hang during a drain clears without rejoining rotation.
                self.shards[d].sys.device_mut().set_doorbells_lost(false);
                return;
            }
            _ => return,
        }
        self.device_events.push(DeviceEvent {
            at: now,
            device,
            kind: DeviceEventKind::Restored,
        });
        // Capacity is back: land every parked job (FIFO order). With the
        // breaker open the device is restored but still quarantined, so
        // landing only helps if *other* capacity exists — which is
        // exactly what `place` checks.
        self.land_parked(now);
    }

    /// Routes one cluster event.
    pub fn dispatch(&mut self, now: SimTime, ev: ClusterEvent) {
        match ev {
            ClusterEvent::Shard { device, ev } => {
                self.shards[device as usize].sys.dispatch(now, ev);
                self.absorb_shard(now, device);
            }
            ClusterEvent::Arrival(idx) => {
                if self.jobs[idx].state == CJobState::Future {
                    self.place(now, idx);
                }
            }
            ClusterEvent::DeviceFault { device, kind } => {
                self.on_device_fault(now, device, kind);
            }
            ClusterEvent::DeviceRestore { device, gen } => {
                self.on_device_restore(now, device, gen);
            }
            ClusterEvent::CorrelatedFault { kind } => {
                self.on_correlated_fault(now, kind);
            }
            ClusterEvent::BreakerProbe { device } => {
                self.on_breaker_probe(now, device);
            }
        }
    }

    /// Drains the buffered follow-up events in push order (see
    /// [`SystemWorld::for_each_pending`]; the same discipline one level
    /// up).
    pub fn for_each_pending(&mut self, mut f: impl FnMut(SimTime, ClusterEvent)) {
        for (at, ev) in self.pending.drain(..) {
            f(at, ev);
        }
    }

    /// Appends and clears the cluster completion log (`(time, job)`).
    pub fn drain_completions_into(&mut self, out: &mut Vec<(SimTime, usize)>) {
        out.append(&mut self.completed_log);
    }

    /// Appends and clears the cluster failure log (`(time, job)`).
    pub fn drain_failures_into(&mut self, out: &mut Vec<(SimTime, usize)>) {
        out.append(&mut self.failed_log);
    }

    /// Appends and clears the migration log (`(time, job)`).
    pub fn drain_migrations_into(&mut self, out: &mut Vec<(SimTime, usize)>) {
        out.append(&mut self.migrated_log);
    }

    /// Extracts the merged per-job records and cluster telemetry.
    #[must_use]
    pub fn into_result(self, end_time: SimTime) -> ClusterResult {
        let mut jobs: Vec<ClusterJob> = self.jobs;
        let mut errors = Vec::new();
        let mut recoveries = Vec::new();
        let mut escalations = [0u64; 3];
        let mut faults_fired = 0u64;
        // Shard telemetry first (device order, matching a single-device
        // run's layout), then the cluster's own entries.
        for shard in self.shards {
            let map = shard.map;
            let (records, _, _, report) = shard.sys.into_records();
            for (sidx, record) in records.into_iter().enumerate() {
                if map[sidx] != PROBE {
                    fold_record(&mut jobs[map[sidx]].record, record);
                }
            }
            for mut e in report.errors {
                if remap_error(&mut e, &map) {
                    errors.push(e);
                }
            }
            for mut r in report.recoveries {
                r.job = map[r.job];
                if r.job != PROBE {
                    recoveries.push(r);
                }
            }
            for (i, n) in report.escalations.iter().enumerate() {
                escalations[i] += n;
            }
            faults_fired += report.faults.len() as u64;
        }
        errors.extend(self.errors);
        recoveries.extend(self.recoveries);
        let mut summary = summarize_recoveries(&recoveries);
        for ev in &self.device_events {
            match ev.kind {
                DeviceEventKind::Quarantined => summary.quarantines += 1,
                DeviceEventKind::ProbeLaunched => summary.probes += 1,
                DeviceEventKind::Readmitted => summary.readmissions += 1,
                _ => {}
            }
        }
        let migrations = summary.migrations;
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut stranded = 0u64;
        let records = jobs
            .iter_mut()
            .map(|j| {
                match j.state {
                    CJobState::Done => completed += 1,
                    CJobState::Failed => failed += 1,
                    _ => stranded += 1,
                }
                j.record.take().unwrap_or_else(|| JobRecord {
                    name: j.spec.profile.name.clone(),
                    priority: j.spec.priority,
                    arrival: j.spec.arrival,
                    ..JobRecord::default()
                })
            })
            .collect();
        ClusterResult {
            jobs: records,
            end_time,
            errors,
            recoveries,
            escalations,
            faults_fired,
            device_events: self.device_events,
            migrations,
            completed,
            failed,
            stranded,
            summary,
            placements: self.placements,
        }
    }
}

/// Folds a recovery-event list into the shared [`RecoverySummary`]
/// counters (quarantines/probes/readmissions/shed are counted by their
/// own producers).
pub(crate) fn summarize_recoveries(recoveries: &[RecoveryEvent]) -> RecoverySummary {
    let mut s = RecoverySummary::default();
    for r in recoveries {
        match r.action {
            RecoveryAction::ForcedDrain => s.forced_drains += 1,
            RecoveryAction::Killed => s.kills += 1,
            RecoveryAction::LostNotification => s.lost_notifications += 1,
            RecoveryAction::LaunchRetry(_) => s.launch_retries += 1,
            RecoveryAction::Migrated { .. } => s.migrations += 1,
        }
    }
    s
}

/// Folds one incarnation's record into the job's accumulator: counters
/// add, first-observation timestamps keep the earliest incarnation's
/// value, and the completion stamp comes from whichever incarnation
/// finished. With a single incarnation this is the identity.
fn fold_record(acc: &mut Option<JobRecord>, mut inc: JobRecord) {
    match acc {
        None => *acc = Some(inc),
        Some(base) => {
            base.first_granted = base.first_granted.or(inc.first_granted);
            base.first_dispatched = base.first_dispatched.or(inc.first_dispatched);
            base.completed = base.completed.or(inc.completed);
            base.preemptions += inc.preemptions;
            base.waiting += inc.waiting;
            base.completions += inc.completions;
            base.tasks_completed += inc.tasks_completed;
            base.drain_samples.append(&mut inc.drain_samples);
        }
    }
}

/// Rewrites a shard-local job index inside an error to the cluster index.
/// Returns `false` for errors belonging to probe grids (which have no
/// cluster job to charge; the breaker already accounted the failure).
fn remap_error(e: &mut RuntimeError, map: &[usize]) -> bool {
    match e {
        RuntimeError::LaunchFailed { job, .. }
        | RuntimeError::LaunchRetriesExhausted { job, .. }
        | RuntimeError::SwapUnsatisfiable { job }
        | RuntimeError::MigrationFailed { job, .. } => {
            *job = map[*job];
            *job != PROBE
        }
        RuntimeError::EventBudgetExhausted { .. } | RuntimeError::DeviceLost { .. } => true,
    }
}

/// The deterministic re-admission probe: a tiny low-priority persistent
/// grid that exercises launch, dispatch, and completion doorbells without
/// meaningfully competing with real work.
fn probe_spec(now: SimTime, hc: &HealthConfig) -> JobSpec {
    JobSpec::new(
        KernelProfile {
            name: "breaker_probe".to_string(),
            resources: ResourceUsage::typical_256(),
            total_tasks: hc.probe_tasks.max(1),
            task_cost: TaskCost::fixed(SimTime::from_us(5)),
            mem_intensity: 0.0,
            amortize: 1,
        },
        now,
    )
    .with_priority(0)
}

impl World for GpuCluster {
    type Event = ClusterEvent;

    fn handle(
        &mut self,
        now: SimTime,
        event: ClusterEvent,
        sched: &mut Scheduler<'_, ClusterEvent>,
    ) {
        self.dispatch(now, event);
        for (at, ev) in self.pending.drain(..) {
            sched.schedule_at(at, ev);
        }
        // A seeded device-fault plan re-arms itself after every draw, so
        // it outlives the workload: left alone, the run would only end
        // when every device has died. Once all jobs have settled there is
        // nothing left for faults to hit — stop instead of simulating the
        // cluster's slow death by injection. (Faults-off runs never take
        // this path, preserving exact CoRun equivalence.)
        if !self.jobs.is_empty()
            && (self.corr_plan.is_some() || self.shards.iter().any(|s| s.plan.is_some()))
            && self
                .jobs
                .iter()
                .all(|j| matches!(j.state, CJobState::Done | CJobState::Failed))
        {
            sched.stop();
        }
    }
}

/// Routes a cluster event to its [`PartitionedQueue`] partition: shard
/// events to `device + 1`, everything cluster-level (arrivals, device
/// faults/restores) to the control partition 0.
///
/// [`PartitionedQueue`]: flep_sim_core::PartitionedQueue
fn route_cluster_event(ev: &ClusterEvent) -> u32 {
    match ev {
        ClusterEvent::Shard { device, .. } => device + 1,
        _ => 0,
    }
}

/// How [`ClusterRun`] steps the cluster (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Choose automatically: [`StepMode::Epoch`] when the run has no
    /// device-level faults (seeded or scripted), [`StepMode::Merged`]
    /// otherwise. The `FLEP_CLUSTER_MODE` environment variable
    /// (`epoch` / `merged` / `flat`) overrides the automatic choice.
    #[default]
    Auto,
    /// Per-device event streams stepped independently (in parallel across
    /// `FLEP_THREADS` workers) up to the next cluster-level interaction
    /// timestamp, with a barrier there. Byte-identical to `Flat` for
    /// eligible runs; falls back to `Merged` when device faults make the
    /// streams interact between barriers.
    Epoch,
    /// Per-device queues merged through the sim-core cursor into the
    /// exact flat `(time, seq)` total order — byte-identical to `Flat`
    /// for *every* run, faults included.
    Merged,
    /// The pre-partitioning single global queue; kept as the reference
    /// implementation the equivalence tests compare against.
    Flat,
}

/// `FLEP_THREADS` as the epoch driver's worker count. Unlike the bench
/// runner (which defaults to all cores), stepping inside one run defaults
/// to 1: the bench harness already parallelizes across cells, and nesting
/// both would oversubscribe. Output is byte-identical either way.
fn epoch_threads() -> usize {
    std::env::var("FLEP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Parses a `FLEP_CLUSTER_MODE` value: the step mode for valid input, or
/// the exact warning line [`env_step_mode`] prints for invalid input.
///
/// The message is deliberately stable — it names the knob, the accepted
/// values, and the fallback rule — so tests can pin it (the same
/// discipline as `flep-core`'s `parse_threads`).
pub fn parse_cluster_mode(raw: &str) -> Result<StepMode, String> {
    match raw.trim() {
        "epoch" => Ok(StepMode::Epoch),
        "merged" => Ok(StepMode::Merged),
        "flat" => Ok(StepMode::Flat),
        _ => Err(format!(
            "FLEP_CLUSTER_MODE: invalid value {raw:?} (want epoch, merged, or flat); using automatic selection"
        )),
    }
}

/// `FLEP_CLUSTER_MODE` as a [`StepMode`] override, if set and valid;
/// invalid values warn once on stderr instead of silently defaulting.
fn env_step_mode() -> Option<StepMode> {
    match std::env::var("FLEP_CLUSTER_MODE") {
        Ok(v) => match parse_cluster_mode(&v) {
            Ok(mode) => Some(mode),
            Err(warning) => {
                eprintln!("{warning}");
                None
            }
        },
        Err(_) => None,
    }
}

/// Drains one device stream: every event strictly before `bound` (all of
/// them when `None`), capped at `cap` dispatches. Follow-ups the shard
/// emits go straight back into its own stream with device-local sequence
/// numbers — the same relative order the flat queue would assign, since a
/// device's pushes arrive in the same order either way.
fn step_stream(
    shard: &mut Shard,
    stream: &mut EventQueue<SystemEvent>,
    bound: Option<SimTime>,
    cap: u64,
) -> (u64, Option<SimTime>) {
    let mut count = 0u64;
    let mut last = None;
    while count < cap {
        let entry = match bound {
            Some(b) => stream.pop_before(b),
            None => stream.pop(),
        };
        let Some(entry) = entry else { break };
        shard.sys.dispatch(entry.time, entry.payload);
        shard.sys.for_each_pending(|at, ev| stream.push(at, ev));
        last = Some(entry.time);
        count += 1;
    }
    (count, last)
}

/// Combines two `(dispatch count, last timestamp)` accumulators.
fn merge_step(a: (u64, Option<SimTime>), b: (u64, Option<SimTime>)) -> (u64, Option<SimTime>) {
    let last = match (a.1, b.1) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, y) => x.or(y),
    };
    (a.0 + b.0, last)
}

/// Streams a shard chunk sequentially; the unit of work one epoch worker
/// executes.
fn step_chunk(
    shards: &mut [Shard],
    streams: &mut [EventQueue<SystemEvent>],
    bound: Option<SimTime>,
    cap: u64,
) -> (u64, Option<SimTime>) {
    shards
        .iter_mut()
        .zip(streams.iter_mut())
        .map(|(s, q)| step_stream(s, q, bound, cap))
        .fold((0, None), merge_step)
}

/// Steps every device stream up to `bound`, fanning chunks of devices out
/// across `threads` scoped workers. Device streams are independent
/// between cluster-level timestamps (see [`ClusterRun::run`]'s epoch-mode
/// docs), so the split changes wall-clock only — never a byte of output.
fn step_streams(
    shards: &mut [Shard],
    streams: &mut [EventQueue<SystemEvent>],
    bound: Option<SimTime>,
    cap: u64,
    threads: usize,
) -> (u64, Option<SimTime>) {
    // Spawning per epoch only pays off with enough devices per worker;
    // small clusters step inline.
    if threads <= 1 || shards.len() < threads.max(8) {
        return step_chunk(shards, streams, bound, cap);
    }
    let chunk = shards.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .chunks_mut(chunk)
            .zip(streams.chunks_mut(chunk))
            .map(|(sc, qc)| scope.spawn(move || step_chunk(sc, qc, bound, cap)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("epoch worker panicked"))
            .fold((0, None), merge_step)
    })
}

/// A complete cluster run description — the [`CoRun`](crate::CoRun)
/// analog, one level up.
#[derive(Debug)]
pub struct ClusterRun {
    cfg: ClusterConfig,
    jobs: Vec<JobSpec>,
    budget: u64,
    mode: StepMode,
}

impl ClusterRun {
    /// Starts an empty cluster run.
    #[must_use]
    pub fn new(cfg: ClusterConfig) -> Self {
        ClusterRun {
            cfg,
            jobs: Vec::new(),
            budget: DEFAULT_EVENT_BUDGET,
            mode: StepMode::Auto,
        }
    }

    /// Adds a job (builder style). Cluster job indices follow the order
    /// jobs are added, independent of arrival times.
    #[must_use]
    pub fn job(mut self, spec: JobSpec) -> Self {
        self.jobs.push(spec);
        self
    }

    /// Overrides the event budget (builder style).
    #[must_use]
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Pins the stepping mode (builder style), overriding both the
    /// automatic choice and `FLEP_CLUSTER_MODE`. The equivalence tests
    /// use this to drive the same run through every mode.
    #[must_use]
    pub fn with_step_mode(mut self, mode: StepMode) -> Self {
        self.mode = mode;
        self
    }

    /// Whether epoch stepping reproduces the flat event order for this
    /// configuration: true exactly when no device-level faults (seeded or
    /// scripted) can create cross-device interactions between arrival
    /// timestamps. Grid-level fault injection stays eligible — those
    /// draws, retries, and watchdog escalations are all shard-local.
    /// Correlated outages are device-level faults with extra blast
    /// radius, so they disqualify epoch stepping the same way.
    fn epoch_eligible(&self) -> bool {
        self.cfg.device_faults.is_none()
            && self.cfg.scripted_faults.is_empty()
            && self.cfg.correlated_faults.is_none()
            && self.cfg.scripted_correlated.is_empty()
    }

    /// Executes the run to completion (or budget exhaustion).
    ///
    /// # Stepping modes
    ///
    /// The default ([`StepMode::Auto`]) picks partitioned *epoch*
    /// stepping for runs without device-level faults and the merged
    /// partitioned driver otherwise; both produce byte-identical results
    /// to the flat reference driver (DESIGN.md §13 gives the ordering
    /// argument, and the `partition` test suite enforces it).
    #[must_use]
    pub fn run(self) -> ClusterResult {
        let mode = match self.mode {
            StepMode::Auto => env_step_mode().unwrap_or(StepMode::Auto),
            pinned => pinned,
        };
        match mode {
            StepMode::Flat => self.run_flat(),
            StepMode::Merged => self.run_merged(),
            StepMode::Epoch | StepMode::Auto => {
                if self.epoch_eligible() {
                    self.run_epoch()
                } else {
                    self.run_merged()
                }
            }
        }
    }

    /// Builds the cluster, registers the jobs, and returns it together
    /// with the job arrival times (registration order).
    fn build(&mut self) -> (GpuCluster, Vec<(SimTime, ClusterEvent)>, Vec<SimTime>) {
        let (mut cluster, initial) = GpuCluster::new(&self.cfg);
        let arrivals: Vec<SimTime> = self.jobs.iter().map(|j| j.arrival).collect();
        for spec in self.jobs.drain(..) {
            cluster.register(spec);
        }
        (cluster, initial, arrivals)
    }

    /// The reference driver: one flat global queue.
    fn run_flat(mut self) -> ClusterResult {
        let (cluster, initial, arrivals) = self.build();
        let mut sim = Simulation::new(cluster);
        // Arrivals first, then the cluster's own initial events — the
        // same seq-order discipline as `CoRun::run`.
        for (idx, at) in arrivals.into_iter().enumerate() {
            sim.schedule_at(at, ClusterEvent::Arrival(idx));
        }
        for (at, ev) in initial {
            sim.schedule_at(at, ev);
        }
        let mut budget_error = None;
        let end_time = match sim.run_with_budget(self.budget) {
            RunOutcome::Completed(t) => t,
            RunOutcome::BudgetExhausted {
                now,
                dispatched,
                pending,
            } => {
                budget_error = Some(RuntimeError::EventBudgetExhausted {
                    at: now,
                    dispatched,
                    pending,
                });
                now
            }
        };
        let mut result = sim.into_world().into_result(end_time);
        if let Some(e) = budget_error {
            result.errors.push(e);
        }
        result
    }

    /// Per-device queues merged through the sim-core cursor: the same
    /// push order receives the same global sequence numbers, so the pop
    /// order — and therefore every byte of the result — matches the flat
    /// driver exactly, while each device's events churn a small
    /// cache-resident queue instead of one cluster-wide heap.
    fn run_merged(mut self) -> ClusterResult {
        let partitions = self.cfg.devices.max(1) as usize + 1;
        let (cluster, initial, arrivals) = self.build();
        let mut sim = PartitionedSimulation::new(cluster, partitions, route_cluster_event);
        for (idx, at) in arrivals.into_iter().enumerate() {
            sim.schedule_at(at, ClusterEvent::Arrival(idx));
        }
        for (at, ev) in initial {
            sim.schedule_at(at, ev);
        }
        let mut budget_error = None;
        let end_time = match sim.run_with_budget(self.budget) {
            RunOutcome::Completed(t) => t,
            RunOutcome::BudgetExhausted {
                now,
                dispatched,
                pending,
            } => {
                budget_error = Some(RuntimeError::EventBudgetExhausted {
                    at: now,
                    dispatched,
                    pending,
                });
                now
            }
        };
        let mut result = sim.into_world().into_result(end_time);
        if let Some(e) = budget_error {
            result.errors.push(e);
        }
        result
    }

    /// Epoch stepping: device streams run independently — and in parallel
    /// — up to the next cluster-level timestamp, with a barrier there.
    ///
    /// # Why this reproduces the flat order
    ///
    /// For eligible runs (no device faults) the only cluster-level events
    /// are the pre-scheduled job arrivals, which carry the globally
    /// lowest sequence numbers; every run-time event is shard-local and
    /// all its follow-ups target the same shard. At a shared timestamp
    /// the flat driver therefore dispatches arrivals before any shard
    /// event (lower seq), and orders each device's own events by that
    /// device's push order — exactly what "drain streams strictly below
    /// the bound, then dispatch the bound's arrivals, device-local FIFO
    /// within a stream" produces. Events of *different* devices at equal
    /// timestamps commute: a shard event touches only its shard, and the
    /// completion/failure bookkeeping both orders produce is absorbed
    /// per-device in device order at the barrier, which no result field
    /// observes differently.
    fn run_epoch(mut self) -> ClusterResult {
        let (mut cluster, initial, arrivals) = self.build();
        let n = cluster.shards.len();
        let threads = epoch_threads();
        // The control stream holds cluster-level events; one per-device
        // stream holds each shard's (device-local FIFO ordering).
        let mut control: EventQueue<ClusterEvent> = EventQueue::new();
        let mut streams: Vec<EventQueue<SystemEvent>> = (0..n).map(|_| EventQueue::new()).collect();
        fn route(
            control: &mut EventQueue<ClusterEvent>,
            streams: &mut [EventQueue<SystemEvent>],
            at: SimTime,
            ev: ClusterEvent,
        ) {
            match ev {
                ClusterEvent::Shard { device, ev } => streams[device as usize].push(at, ev),
                other => control.push(at, other),
            }
        }
        for (idx, at) in arrivals.into_iter().enumerate() {
            control.push(at, ClusterEvent::Arrival(idx));
        }
        for (at, ev) in initial {
            route(&mut control, &mut streams, at, ev);
        }
        let mut spent: u64 = 0;
        let mut end = SimTime::ZERO;
        let mut budget_error = None;
        loop {
            // Epoch: drain every stream strictly below the next
            // cluster-level timestamp (fully, when none is left). Each
            // stream is capped at the remaining budget, so the abort
            // point is deterministic at any `FLEP_THREADS`.
            let bound = control.peek_time();
            let cap = self.budget.saturating_sub(spent);
            let (count, last) =
                step_streams(&mut cluster.shards, &mut streams, bound, cap, threads);
            spent += count;
            if let Some(t) = last {
                end = end.max(t);
            }
            // Barrier: fold shard outputs (completions, failures) into
            // the cluster's job table, in device order.
            for d in 0..n as u32 {
                cluster.absorb_shard(end, d);
            }
            debug_assert!(cluster.pending.is_empty(), "epoch workers route directly");
            let pending = control.len() + streams.iter().map(EventQueue::len).sum::<usize>();
            if spent >= self.budget && pending > 0 {
                budget_error = Some(RuntimeError::EventBudgetExhausted {
                    at: end,
                    dispatched: spent,
                    pending,
                });
                break;
            }
            // Cluster-level interaction point: dispatch everything at the
            // bound timestamp, routing follow-ups to their streams.
            let Some(t) = bound else { break };
            end = end.max(t);
            while control.peek_time() == Some(t) {
                let entry = control.pop().expect("peeked control event");
                spent += 1;
                cluster.dispatch(t, entry.payload);
                let mut pending = std::mem::take(&mut cluster.pending);
                for (at, ev) in pending.drain(..) {
                    route(&mut control, &mut streams, at, ev);
                }
                cluster.pending = pending;
            }
        }
        let mut result = cluster.into_result(end);
        if let Some(e) = budget_error {
            result.errors.push(e);
        }
        result
    }
}

/// Results of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Per-job records in registration order, merged across incarnations
    /// (a migrated job's counters accumulate over every device it ran
    /// on).
    pub jobs: Vec<JobRecord>,
    /// When the last event fired.
    pub end_time: SimTime,
    /// Structured failures: per-shard errors (job indices remapped to
    /// cluster indices) then cluster-level ones.
    pub errors: Vec<RuntimeError>,
    /// Recovery actions: per-shard ladders then cluster migrations.
    pub recoveries: Vec<RecoveryEvent>,
    /// Preemption-drain outcomes summed across shards.
    pub escalations: [u64; 3],
    /// Grid-level faults fired across all shards.
    pub faults_fired: u64,
    /// The device lifecycle log.
    pub device_events: Vec<DeviceEvent>,
    /// Completed migrations.
    pub migrations: u64,
    /// Jobs that finished all tasks.
    pub completed: u64,
    /// Jobs abandoned (launch failure or migration budget).
    pub failed: u64,
    /// Jobs neither finished nor failed at the end (parked with no
    /// capacity, or stranded by a budget abort).
    pub stranded: u64,
    /// Structured recovery tally across every layer: watchdog ladder,
    /// migrations, breaker quarantines/probes/re-admissions.
    pub summary: RecoverySummary,
    /// The placement log `(time, job, device)`; recorded only when
    /// health is configured (empty otherwise).
    pub placements: Vec<(SimTime, usize, u32)>,
}

impl ClusterResult {
    /// True when every registered job is accounted exactly once:
    /// completed, failed, or stranded.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.completed + self.failed + self.stranded == self.jobs.len() as u64
    }

    /// True when no structured errors were recorded.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.errors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_mode_parses_valid_values() {
        assert_eq!(parse_cluster_mode("epoch"), Ok(StepMode::Epoch));
        assert_eq!(parse_cluster_mode("merged"), Ok(StepMode::Merged));
        assert_eq!(parse_cluster_mode(" flat "), Ok(StepMode::Flat));
    }

    #[test]
    fn cluster_mode_warning_text_is_pinned() {
        assert_eq!(
            parse_cluster_mode("turbo"),
            Err(
                "FLEP_CLUSTER_MODE: invalid value \"turbo\" (want epoch, merged, or flat); \
                 using automatic selection"
                    .to_string()
            )
        );
        assert!(parse_cluster_mode("").is_err());
        assert!(parse_cluster_mode("EPOCH").is_err());
    }
}
