//! The experiment driver: describe a co-run, execute it, read results.

use flep_gpu_sim::{
    FaultConfig, FaultEvent, FaultPlan, GpuConfig, GpuDevice, SwapManager, SwapStats,
};
use flep_sim_core::{RunOutcome, SimTime, Simulation, Span};

/// Default event budget for a co-run: far above any legitimate experiment
/// (the heaviest FFS horizon runs dispatch a few million events), so the
/// only way to hit it is a genuine event feedback loop — which then aborts
/// with diagnostics instead of hanging the harness.
pub const DEFAULT_EVENT_BUDGET: u64 = 1_000_000_000;

use crate::job::{JobRecord, JobSpec};
use crate::world::{Policy, RecoveryEvent, RuntimeError, SystemEvent, SystemWorld, WatchdogConfig};

/// A complete co-run description.
///
/// # Example
///
/// ```
/// use flep_gpu_sim::GpuConfig;
/// use flep_runtime::{CoRun, JobSpec, KernelProfile, Policy};
/// use flep_sim_core::SimTime;
/// use flep_workloads::{Benchmark, BenchmarkId, InputClass};
///
/// let lo = KernelProfile::of(&Benchmark::get(BenchmarkId::Nn), InputClass::Large);
/// let hi = KernelProfile::of(&Benchmark::get(BenchmarkId::Spmv), InputClass::Small);
/// let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
///     .job(JobSpec::new(lo, SimTime::ZERO).with_priority(1))
///     .job(JobSpec::new(hi, SimTime::from_us(10)).with_priority(2))
///     .run();
/// // The high-priority kernel preempts the long-running one and finishes
/// // long before it.
/// let hi_done = result.jobs[1].completed.unwrap();
/// let lo_done = result.jobs[0].completed.unwrap();
/// assert!(hi_done < lo_done);
/// ```
#[derive(Debug)]
pub struct CoRun {
    config: GpuConfig,
    policy: Policy,
    jobs: Vec<JobSpec>,
    horizon: Option<SimTime>,
    swap: Option<SwapManager>,
    span_trace: bool,
    faults: Option<FaultConfig>,
    watchdog: Option<WatchdogConfig>,
    budget: u64,
}

impl CoRun {
    /// Starts an empty co-run under a policy.
    #[must_use]
    pub fn new(config: GpuConfig, policy: Policy) -> Self {
        CoRun {
            config,
            policy,
            jobs: Vec::new(),
            horizon: None,
            swap: None,
            span_trace: false,
            faults: None,
            watchdog: None,
            budget: DEFAULT_EVENT_BUDGET,
        }
    }

    /// Injects a seeded fault plan into the device: lost/delayed preempt
    /// doorbells, victims that stop polling the flag, dropped or delayed
    /// host notifications, transiently rejected launches. Implies the
    /// watchdog (with [`WatchdogConfig::default`]) unless one was set
    /// explicitly — faults without recovery machinery would livelock.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables the preemption watchdog: preempt requests carry a deadline
    /// and escalate flag → forced drain → kill + relaunch on expiry. Off
    /// by default so fault-free runs replay an identical event stream.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Overrides the event budget (default [`DEFAULT_EVENT_BUDGET`]);
    /// exhaustion surfaces as [`RuntimeError::EventBudgetExhausted`] in
    /// the result rather than a panic.
    #[must_use]
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Records every CTA-residency interval as a [`Span`] in the result.
    /// Off by default so long runs (FFS horizons) don't grow an unbounded
    /// span list; required for [`CoRunResult::gpu_share`] and timeline
    /// rendering. Per-owner busy totals are collected either way.
    #[must_use]
    pub fn with_span_trace(mut self) -> Self {
        self.span_trace = true;
        self
    }

    /// Adds a job (builder style).
    #[must_use]
    pub fn job(mut self, spec: JobSpec) -> Self {
        self.jobs.push(spec);
        self
    }

    /// Sets an experiment horizon: looping jobs stop re-arriving at this
    /// time and the simulation ends once in-flight work drains.
    #[must_use]
    pub fn horizon(mut self, at: SimTime) -> Self {
        self.horizon = Some(at);
        self
    }

    /// Enables GPUSwap-style device-memory oversubscription: jobs with a
    /// declared working set pay swap-in time when their data is not
    /// resident (§8's planned integration).
    #[must_use]
    pub fn with_swap(mut self, swap: SwapManager) -> Self {
        self.swap = Some(swap);
        self
    }

    /// Executes the co-run to completion.
    ///
    /// Failures that used to panic — device-rejected launches, working
    /// sets that cannot fit, an exhausted event budget — are reported as
    /// [`CoRunResult::errors`]; watchdog interventions as
    /// [`CoRunResult::recoveries`].
    #[must_use]
    pub fn run(self) -> CoRunResult {
        let arrivals: Vec<SimTime> = self.jobs.iter().map(|j| j.arrival).collect();
        let mut device = GpuDevice::new(self.config);
        device.set_span_collection(self.span_trace);
        device.set_fault_plan(self.faults.map(FaultPlan::new));
        // Fault injection without recovery machinery would livelock on the
        // first stuck victim, so faults imply a default-configured
        // watchdog. Fault-free runs keep it off unless explicitly enabled:
        // its poll events would otherwise perturb `end_time`.
        let watchdog = self
            .watchdog
            .or_else(|| self.faults.map(|_| WatchdogConfig::default()));
        let mut world = SystemWorld::new(device, self.policy, self.jobs, self.horizon);
        if let Some(swap) = self.swap {
            world.set_swap(swap);
        }
        if let Some(wd) = watchdog {
            world.set_watchdog(wd);
        }
        let mut sim = Simulation::new(world);
        for (idx, at) in arrivals.into_iter().enumerate() {
            sim.schedule_at(at, SystemEvent::Arrival(idx));
        }
        if let Some(wd) = watchdog {
            sim.schedule_at(wd.poll_interval, SystemEvent::Watchdog);
        }
        let mut budget_error = None;
        let end_time = match sim.run_with_budget(self.budget) {
            RunOutcome::Completed(t) => t,
            RunOutcome::BudgetExhausted {
                now,
                dispatched,
                pending,
            } => {
                budget_error = Some(RuntimeError::EventBudgetExhausted {
                    at: now,
                    dispatched,
                    pending,
                });
                now
            }
        };
        let swap_stats = sim.world().swap_stats();
        let (jobs, busy_spans, busy_totals, mut report) = sim.into_world().into_records();
        if let Some(e) = budget_error {
            report.errors.push(e);
        }
        CoRunResult {
            jobs,
            busy_spans,
            busy_totals,
            end_time,
            swap_stats,
            errors: report.errors,
            recoveries: report.recoveries,
            faults: report.faults,
            escalations: report.escalations,
        }
    }
}

/// Results of a co-run.
#[derive(Debug, Clone)]
pub struct CoRunResult {
    /// Per-job records, in submission order.
    pub jobs: Vec<JobRecord>,
    /// CTA-residency spans (owner = job index) for GPU-share accounting.
    /// Empty unless the co-run opted in via [`CoRun::with_span_trace`].
    pub busy_spans: Vec<Span>,
    /// Total busy GPU time per job index, collected on every run.
    pub busy_totals: Vec<(u64, SimTime)>,
    /// When the last event fired.
    pub end_time: SimTime,
    /// Swap statistics, when oversubscription was enabled.
    pub swap_stats: Option<SwapStats>,
    /// Structured runtime failures (formerly panics), in occurrence order.
    pub errors: Vec<RuntimeError>,
    /// Watchdog recovery actions, in occurrence order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Faults the device's injection plan fired (empty without
    /// [`CoRun::with_faults`]).
    pub faults: Vec<FaultEvent>,
    /// Preemption-drain outcomes by the escalation level they needed:
    /// `[flag, forced drain, kill]`.
    pub escalations: [u64; 3],
}

impl CoRunResult {
    /// Job `idx`'s share of all busy GPU time within `[from, to)`.
    /// Requires [`CoRun::with_span_trace`]; returns 0 otherwise.
    #[must_use]
    pub fn gpu_share(&self, idx: usize, from: SimTime, to: SimTime) -> f64 {
        let total: SimTime = self.busy_spans.iter().map(|s| s.clipped(from, to)).sum();
        let own: SimTime = self
            .busy_spans
            .iter()
            .filter(|s| s.owner == idx as u64)
            .map(|s| s.clipped(from, to))
            .sum();
        own.ratio(total)
    }

    /// The structured recovery tally of this run — the shared
    /// [`RecoverySummary`](flep_metrics::RecoverySummary) counters folded
    /// from [`CoRunResult::recoveries`], replacing per-test ad-hoc
    /// counting.
    #[must_use]
    pub fn recovery_summary(&self) -> flep_metrics::RecoverySummary {
        crate::cluster::summarize_recoveries(&self.recoveries)
    }

    /// True when the run finished without structured errors (individual
    /// jobs may still have been recovered by the watchdog — see
    /// [`CoRunResult::recoveries`]).
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.errors.is_empty()
    }

    /// Total busy GPU time attributed to job `idx` over the whole run.
    /// Backed by the always-on per-owner totals, so it works without span
    /// tracing.
    #[must_use]
    pub fn busy_time(&self, idx: usize) -> SimTime {
        self.busy_totals
            .iter()
            .find(|(owner, _)| *owner == idx as u64)
            .map_or(SimTime::ZERO, |&(_, total)| total)
    }
}
